"""The function a runner worker process executes for one job.

Module-level and driven purely by the picklable :class:`JobSpec`, so it
works identically inline (``workers=0``) and across a process boundary.
Everything that can go wrong is translated into the typed exception
hierarchy with (trace, prefetcher) context attached:

* unknown trace / corrupted records → :class:`TraceError`
* unknown prefetcher, bad knobs     → :class:`ConfigError`
* a crash inside the simulator      → :class:`SimulationError`
* inconsistent statistics           → :class:`SimulationError`

When the job carries heartbeat fields (set by the campaign supervisor),
the worker additionally writes a progress ping to ``heartbeat_path``
every ``heartbeat_every`` simulated accesses — pure observation; the
simulation itself is bit-identical with or without it.
"""

from __future__ import annotations

import time

from repro.errors import ConfigError, ReproError, SimulationError
from repro.prefetchers.registry import make_prefetcher
from repro.runner.faultinject import (
    CrashingPrefetcher,
    corrupt_trace,
    hierarchy_fault_hook,
)
from repro.runner.invariants import check_invariants
from repro.runner.jobs import JobSpec
from repro.runner.resources import Heartbeat
from repro.simulator.config import default_config
from repro.simulator.engine import simulate
from repro.simulator.stats import SimResult
from repro.workloads.catalog import resolve_trace


def run_job(spec: JobSpec, attempt: int = 1) -> SimResult:
    """Execute one job; returns its :class:`SimResult` or raises a
    classified :class:`~repro.errors.ReproError`."""
    fault = spec.fault

    hb = None
    if spec.heartbeat_path and spec.heartbeat_every > 0:
        hb = Heartbeat(spec.heartbeat_path, key=spec.key)
        hb.ping(0)  # registers our pid before any slow work starts

    if fault and fault.kind == "flaky" and attempt <= fault.fail_attempts:
        raise SimulationError(
            f"injected transient failure (attempt {attempt} of "
            f"{fault.fail_attempts} doomed)",
            trace=spec.trace, prefetcher=spec.l1d,
        )
    if fault and fault.kind == "hang":
        time.sleep(fault.hang_seconds)
    ballast = None
    if fault and fault.kind == "balloon":
        # Genuinely resident memory (bytearrays are touched pages), then
        # a sleep: the worker is alive but fat, and stays that way until
        # the supervisor's RSS guard preempts it.
        ballast = bytearray(fault.balloon_mb << 20)
        time.sleep(fault.hang_seconds)
        del ballast

    if spec.trace_path:
        # Zero-copy path: map the converted store read-only.  Pages are
        # shared with every other worker mapping the same file, and
        # MappedTrace.validate() is O(1) (records were validated at
        # conversion), so per-job trace cost no longer scales with the
        # trace length.
        from repro.memory.tracestore import load_trace_store

        trace = load_trace_store(spec.trace_path)
    else:
        trace = resolve_trace(spec.trace, spec.scale)
    if fault and fault.kind == "corrupt":
        trace = corrupt_trace(trace, period=fault.period)
    trace.validate()
    if hb is not None:
        hb.set_total(len(trace))
        hb.ping(0)  # trace built; the supervisor can now estimate ETA

    try:
        l1d = make_prefetcher(spec.l1d)
    except ValueError as exc:
        raise ConfigError(str(exc), trace=spec.trace,
                          prefetcher=spec.l1d, field="l1d") from exc
    try:
        l2 = make_prefetcher(spec.l2)
    except ValueError as exc:
        raise ConfigError(str(exc), trace=spec.trace,
                          prefetcher=spec.l2, field="l2") from exc

    if fault and fault.kind == "crash":
        l1d = CrashingPrefetcher(l1d, crash_on=max(1, fault.period))

    config = default_config()
    if spec.mtps:
        config = config.with_dram_mtps(spec.mtps)

    post_build = hierarchy_fault_hook(fault) if fault else None
    try:
        if spec.sanitize or spec.snapshot_every or spec.resume_from:
            from repro.sanitizer import SanitizerConfig, simulate_with_snapshots

            result = simulate_with_snapshots(
                trace,
                l1d_prefetcher=l1d,
                l2_prefetcher=l2,
                config=config,
                warmup_fraction=spec.warmup_fraction,
                post_build=post_build,
                snapshot_every=spec.snapshot_every,
                snapshot_dir=spec.snapshot_dir,
                resume_from=spec.resume_from,
                sanitize=(
                    SanitizerConfig(check_every=spec.sanitize_every)
                    if spec.sanitize else None
                ),
                engine=spec.engine,
                chunk_size=spec.chunk_size,
                native=spec.native,
            )
        else:
            result = simulate(
                trace,
                l1d_prefetcher=l1d,
                l2_prefetcher=l2,
                config=config,
                warmup_fraction=spec.warmup_fraction,
                post_build=post_build,
                progress=hb.ping if hb is not None else None,
                progress_every=spec.heartbeat_every,
                engine=spec.engine,
                chunk_size=spec.chunk_size,
                native=spec.native,
            )
    except ReproError:
        raise
    except Exception as exc:
        raise SimulationError(
            f"simulation crashed: {type(exc).__name__}: {exc}",
            trace=spec.trace, prefetcher=spec.l1d,
        ) from exc

    violations = check_invariants(result)
    if violations:
        raise SimulationError(
            "inconsistent statistics: " + "; ".join(violations),
            trace=spec.trace, prefetcher=spec.l1d,
        )
    # Record the job's record count so the campaign supervisor can report
    # aggregate records/sec in the manifest.  Added after the simulation
    # returns, so engine-level results (golden matrix, lockstep) are
    # untouched.
    result.extra["trace_records"] = float(len(trace))
    return result
