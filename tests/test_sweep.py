"""Tests for the parameter-sweep helper."""

import pytest

from dataclasses import replace

from repro.analysis.sweep import knob_sweep, sweep
from repro.core.berti import BertiPrefetcher
from repro.core.config import BertiConfig
from repro.prefetchers.registry import make_prefetcher
from repro.workloads.synthetic import make_trace, pattern_stream


@pytest.fixture(scope="module")
def traces():
    return [
        make_trace(
            f"t{k}",
            [pattern_stream(0x400 + 9 * k, 0x1000000 * (k + 1), [1, 2],
                            900, gap=18, dep=1, region_lines=4096)],
        )
        for k in range(2)
    ]


class TestSweep:
    def test_speedups_per_variant(self, traces):
        res = sweep(
            traces,
            baseline=lambda: make_prefetcher("ip_stride"),
            variants={
                "berti": lambda: BertiPrefetcher(),
                "none": lambda: None,
            },
        )
        assert set(res.speedups) == {"berti", "none"}
        assert res.speedups["berti"] > res.speedups["none"]

    def test_best(self, traces):
        res = sweep(
            traces,
            baseline=lambda: make_prefetcher("ip_stride"),
            variants={
                "berti": lambda: BertiPrefetcher(),
                "none": lambda: None,
            },
        )
        assert res.best() == "berti"

    def test_per_trace_results_recorded(self, traces):
        res = sweep(
            traces,
            baseline=lambda: None,
            variants={"berti": lambda: BertiPrefetcher()},
        )
        for t in traces:
            assert "baseline" in res.per_trace[t.name]
            assert "berti" in res.per_trace[t.name]

    def test_to_table(self, traces):
        res = sweep(
            traces,
            baseline=lambda: None,
            variants={"berti": lambda: BertiPrefetcher()},
        )
        out = res.to_table("T")
        assert "berti" in out and out.startswith("T")

    def test_l2_factories(self, traces):
        res = sweep(
            traces,
            baseline=lambda: make_prefetcher("ip_stride"),
            variants={"berti+spp": lambda: BertiPrefetcher()},
            l2_factories={"berti+spp": lambda: make_prefetcher("spp_ppf")},
        )
        run = res.per_trace[traces[0].name]["berti+spp"]
        assert run.prefetcher_l2 == "spp_ppf"


class TestKnobSweep:
    def test_watermark_knob(self, traces):
        res = knob_sweep(
            traces,
            baseline=lambda: make_prefetcher("ip_stride"),
            make_variant=lambda v: BertiPrefetcher(
                BertiConfig().with_watermarks(v, min(v, 0.35))
            ),
            values=[0.65, 0.95],
            label="high",
        )
        assert set(res.speedups) == {"high=0.65", "high=0.95"}

    def test_values_bound_late(self, traces):
        """Each variant factory must capture its own value (no late
        binding bug)."""
        seen = []
        knob_sweep(
            traces[:1],
            baseline=lambda: None,
            make_variant=lambda v: seen.append(v) or None,
            values=[1.0, 2.0],
        )
        assert seen == [1.0, 2.0]
