#!/usr/bin/env python
"""Simulation-core microbenchmark: records/sec on the tier-1 traces.

Writes ``BENCH_simcore.json`` (schema ``bench-simcore/v1``) and,
given ``--baseline``, fails with exit code 1 when any case regresses
more than ``--tolerance`` below the committed baseline — this is what
the CI ``perf-smoke`` job runs.  See ``docs/performance.md``.

Examples::

    # Full run at scale 1.0, write the trajectory artifact:
    PYTHONPATH=src python benchmarks/perf/bench_simcore.py \
        --out BENCH_simcore.json

    # CI smoke: small traces, gate against the committed baseline:
    PYTHONPATH=src python benchmarks/perf/bench_simcore.py --quick \
        --baseline benchmarks/perf/baseline.json --out BENCH_simcore.json

    # Refresh the committed baseline after an intentional perf change:
    PYTHONPATH=src python benchmarks/perf/bench_simcore.py --quick \
        --update-baseline benchmarks/perf/baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.perf.bench import (
    calibrate_host,
    check_regression,
    default_cases,
    load_report,
    run_suite,
    write_report,
)

#: --quick: trace scale + repeats used by the CI smoke job.  Small
#: enough to finish in well under a minute on a cold runner, large
#: enough that per-run fixed costs do not dominate.
QUICK_SCALE = 0.25
QUICK_REPEATS = 3


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=1.0,
                    help="trace scale for every case (default 1.0)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repeats per case; best is reported")
    ap.add_argument("--quick", action="store_true",
                    help=f"CI smoke mode: scale {QUICK_SCALE}, "
                         f"{QUICK_REPEATS} repeats")
    ap.add_argument("--out", default="BENCH_simcore.json",
                    help="report path (default BENCH_simcore.json)")
    ap.add_argument("--baseline", default=None,
                    help="baseline report to gate against")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop vs baseline "
                         "(default 0.30)")
    ap.add_argument("--update-baseline", metavar="PATH", default=None,
                    help="write this run as the new baseline and exit")
    ap.add_argument("--compare-json", metavar="PATH", default=None,
                    help="embed a speedup comparison against a prior "
                         "report (e.g. one recorded from the seed "
                         "engine) into the output")
    args = ap.parse_args(argv)

    scale = QUICK_SCALE if args.quick else args.scale
    repeats = QUICK_REPEATS if args.quick else args.repeats

    calibration = calibrate_host()
    print(f"host calibration: {calibration:.2f} Mops", file=sys.stderr)

    cases = default_cases(scale=scale)
    results = run_suite(
        cases,
        repeats=repeats,
        calibration_mops=calibration,
        progress=lambda line: print(line, file=sys.stderr),
    )

    extra = {}
    if args.compare_json:
        try:
            prior = load_report(args.compare_json)
        except OSError as exc:
            print(f"error: cannot read {args.compare_json}: {exc}",
                  file=sys.stderr)
            return 2
        prior_rps = {
            c["name"]: c["records_per_sec"] for c in prior.get("cases", [])
        }
        # Load-corrected comparison when the prior report also carries a
        # host calibration: throughput ratios are taken between
        # calibration-normalized figures, so background load during
        # either measurement window cancels out.
        prior_cal = prior.get("host", {}).get("calibration_mops")
        speedups = {}
        for res in results:
            old = prior_rps.get(res.case.name)
            if old:
                if prior_cal and res.normalized:
                    speedups[res.case.name] = round(
                        res.normalized / (old / prior_cal), 3
                    )
                else:
                    speedups[res.case.name] = round(
                        res.records_per_sec / old, 3
                    )
        comparison = {
            "against": prior.get("label") or args.compare_json,
            "baseline_records_per_sec": prior_rps,
            "baseline_calibration_mops": prior_cal,
            "normalized": bool(prior_cal),
            "speedup": speedups,
        }
        if speedups:
            product = 1.0
            for s in speedups.values():
                product *= s
            comparison["geomean_speedup"] = round(
                product ** (1.0 / len(speedups)), 3
            )
        extra["comparison"] = comparison

    report = write_report(args.out, results, calibration, extra=extra)
    print(f"wrote {args.out} ({len(results)} cases)", file=sys.stderr)
    if "comparison" in report:
        cmp_ = report["comparison"]
        print(f"speedup vs {cmp_['against']}: "
              f"geomean {cmp_.get('geomean_speedup')}", file=sys.stderr)

    if args.update_baseline:
        with open(args.update_baseline, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.update_baseline}", file=sys.stderr)
        return 0

    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except OSError as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        problems = check_regression(
            report, baseline, tolerance=args.tolerance
        )
        if problems:
            print("PERF REGRESSION:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        print(f"perf gate passed (tolerance {args.tolerance:.0%})",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
