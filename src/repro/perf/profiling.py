"""cProfile harness for simulation runs (the CLI ``--profile`` flag).

Wraps one callable in a profiler, optionally dumps the raw stats to a
file loadable with :mod:`pstats` / snakeviz, and renders the top-N hot
functions as a compact table.  Kept dependency-free: everything here is
standard library.
"""

from __future__ import annotations

import cProfile
import pstats
from typing import Any, Callable, Dict, List, Optional, Tuple


def profile_call(
    fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> Tuple[Any, cProfile.Profile]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, profile)``; the profile is already disabled and
    ready for :func:`top_functions` or ``dump_stats``.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return result, profiler


def top_functions(
    profiler: cProfile.Profile,
    n: int = 15,
    sort: str = "cumulative",
) -> List[Dict[str, Any]]:
    """The ``n`` hottest functions as structured rows.

    Each row has ``function`` ("file:line(name)"), ``ncalls``,
    ``tottime`` (self time) and ``cumtime`` — the pstats columns that
    matter when hunting hot paths.
    """
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    rows: List[Dict[str, Any]] = []
    for func in stats.fcn_list[:n]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": nc,
                "tottime": tt,
                "cumtime": ct,
            }
        )
    return rows


def format_top_functions(
    profiler: cProfile.Profile,
    n: int = 15,
    sort: str = "cumulative",
) -> str:
    """Human-readable top-N table for terminal output."""
    rows = top_functions(profiler, n=n, sort=sort)
    lines = [f"top {len(rows)} functions by {sort}:"]
    lines.append(f"{'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  function")
    for row in rows:
        fn = row["function"]
        # Trim long site paths down to the interesting tail.
        if len(fn) > 72:
            fn = "…" + fn[-71:]
        lines.append(
            f"{row['ncalls']:>10}  {row['tottime']:>8.3f}  "
            f"{row['cumtime']:>8.3f}  {fn}"
        )
    return "\n".join(lines)


def dump_stats(profiler: cProfile.Profile, path: str) -> None:
    """Write raw stats for later ``pstats``/snakeviz inspection."""
    profiler.dump_stats(path)


def profile_and_report(
    fn: Callable[..., Any],
    *args: Any,
    dump_path: Optional[str] = None,
    top: int = 15,
    sort: str = "cumulative",
    **kwargs: Any,
) -> Tuple[Any, str]:
    """One-stop helper for the CLI: profile, optionally dump, format."""
    result, profiler = profile_call(fn, *args, **kwargs)
    if dump_path:
        dump_stats(profiler, dump_path)
    return result, format_top_functions(profiler, n=top, sort=sort)
