"""Durable fleet event log: who joined, who died, what got requeued.

The campaign daemon appends one JSON record per fleet-level event to
``state_dir/fleet-manifest.json`` — agent registration, death, rejoin,
lease requeues attributed to a lost agent, refused (digest-mismatch)
jobs, and the degraded-mode windows during which zero live agents left
the daemon running on its local pool alone.  The chaos scenarios and
the CI ``fleet-smoke`` job read it back to prove that a kill or a
partition was *observed and survived*, not silently absorbed.

The file is a single JSON document (events list + current degradation
state), rewritten atomically on every append — fleet events are rare
(per agent, not per job), so the rewrite cost is irrelevant and readers
always see a complete, parseable document.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["FleetManifest"]


class FleetManifest:
    """Append-only fleet event log with atomic whole-file rewrites."""

    def __init__(self, path, clock=None) -> None:
        import time

        self.path = Path(path)
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._degraded_since: Optional[float] = None
        self._degraded_windows: List[Dict[str, float]] = []
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            return  # a torn manifest is cosmetic; start a fresh history
        self._events = list(doc.get("events", []))
        self._degraded_windows = list(doc.get("degraded_windows", []))
        # A daemon that died while degraded leaves an open window; close
        # it at zero duration on reload rather than carrying a stale
        # monotonic timestamp across process lifetimes.
        if doc.get("degraded_since") is not None:
            self._degraded_windows.append({"start": 0.0, "end": 0.0,
                                           "recovered": False})

    def _flush_locked(self) -> None:
        doc = {
            "events": self._events,
            "degraded_since": self._degraded_since,
            "degraded_windows": self._degraded_windows,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------

    def record(self, event: str, **detail: Any) -> None:
        """Append one fleet event (e.g. ``agent-dead``, ``agent-requeue``)."""
        with self._lock:
            self._events.append({"event": event, "at": self._clock(),
                                 **detail})
            self._flush_locked()

    def enter_degraded(self, reason: str) -> None:
        """Mark the start of a zero-live-agents window (idempotent)."""
        with self._lock:
            if self._degraded_since is not None:
                return
            self._degraded_since = self._clock()
            self._events.append({"event": "degraded-enter",
                                 "at": self._degraded_since,
                                 "reason": reason})
            self._flush_locked()

    def exit_degraded(self) -> Optional[float]:
        """Close the current degraded window; returns its duration."""
        with self._lock:
            if self._degraded_since is None:
                return None
            now = self._clock()
            duration = now - self._degraded_since
            self._degraded_windows.append({
                "start": self._degraded_since, "end": now,
                "recovered": True,
            })
            self._events.append({"event": "degraded-exit", "at": now,
                                 "duration": duration})
            self._degraded_since = None
            self._flush_locked()
            return duration

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded_since is not None

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            if kind is None:
                return list(self._events)
            return [e for e in self._events if e["event"] == kind]

    def degraded_windows(self) -> List[Dict[str, float]]:
        with self._lock:
            return list(self._degraded_windows)
