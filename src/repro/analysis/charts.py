"""ASCII charts for terminal-friendly result presentation.

The benchmark harness runs in environments without plotting libraries, so
the figures are rendered as text: horizontal bar charts for the speedup
figures, grouped bars for per-suite comparisons, and sparkline-style
series for the sensitivity sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    data: Mapping[str, float],
    title: str = "",
    width: int = 48,
    baseline: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart; an optional baseline is marked with ``|``.

    Bars are scaled to the data's maximum.  Values render with ``fmt``.
    """
    if not data:
        return title
    label_width = max(len(k) for k in data)
    max_value = max(data.values())
    if max_value <= 0:
        max_value = 1.0
    lines: List[str] = [title] if title else []
    baseline_col = (
        int(width * baseline / max_value) if baseline is not None else None
    )
    for name, value in data.items():
        filled = width * max(0.0, value) / max_value
        whole = int(filled)
        frac = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        bar = bar.ljust(width)
        if baseline_col is not None and baseline_col < width:
            marker = "|" if bar[baseline_col] == " " else bar[baseline_col]
            bar = bar[:baseline_col] + marker + bar[baseline_col + 1:]
        lines.append(f"{name.ljust(label_width)} {bar} {fmt.format(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
    fmt: str = "{:.3f}",
) -> str:
    """One bar block per group: {group: {series: value}}."""
    lines: List[str] = [title] if title else []
    for group, values in groups.items():
        lines.append(f"{group}:")
        chart = bar_chart(values, width=width, fmt=fmt)
        lines.extend("  " + ln for ln in chart.splitlines())
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line sparkline of a numeric series."""
    if not values:
        return ""
    if width and len(values) > width:
        # Downsample by striding.
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    ticks = "▁▂▃▄▅▆▇█"
    return "".join(
        ticks[min(len(ticks) - 1, int((v - lo) / span * (len(ticks) - 1)))]
        for v in values
    )


def series_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Render {name: [(x, y), ...]} as labelled sparklines with ranges."""
    lines: List[str] = [title] if title else []
    if not series:
        return "\n".join(lines)
    label_width = max(len(k) for k in series)
    for name, points in series.items():
        ys = [y for __, y in points]
        spark = sparkline(ys)
        lo = fmt.format(min(ys)) if ys else "-"
        hi = fmt.format(max(ys)) if ys else "-"
        lines.append(f"{name.ljust(label_width)} {spark}  [{lo}, {hi}]")
    return "\n".join(lines)
