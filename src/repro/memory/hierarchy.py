"""Three-level cache hierarchy with prefetching hooks.

This is the substrate every experiment runs on: L1D → L2 → LLC → DRAM,
with per-level MSHRs, a bounded FIFO prefetch queue (PQ), non-inclusive
fills, write-back traffic, and the two prefetcher attachment points the
paper evaluates (one at the L1D observing virtual addresses + IPs, one at
the L2 observing physical addresses).

Timing is forward-resolved: a demand access walks the levels immediately
and returns its total latency; fills install lines whose ``arrival_cycle``
records when the data really lands, so later demands can observe *late*
prefetches.  This mirrors how ChampSim's latencies compose while staying
fast enough for pure Python.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.delta_table import L1D_PREF
from repro.cpu.mmu import (
    MMU,
    _LINES_PER_PAGE_BITS as LINES_PER_PAGE_BITS,
    _PAGE_OFFSET_MASK as PAGE_OFFSET_MASK,
)
from repro.memory.address import same_page
from repro.memory.cache import Cache, CacheLine
from repro.memory.dram import DRAM
from repro.memory.mshr import MSHR
from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    FILL_LLC,
    AccessInfo,
    FillInfo,
    NoPrefetcher,
    Prefetcher,
    PrefetchRequest,
)

LATENCY_FIELD_BITS = 12  # Berti's per-L1D-line latency field width


@dataclass(slots=True)
class LinkTraffic:
    """Request counts on one link of the hierarchy (demand + prefetch +
    writeback), the quantity Figure 14 plots."""

    demand: int = 0
    prefetch: int = 0
    writeback: int = 0

    @property
    def total(self) -> int:
        return self.demand + self.prefetch + self.writeback

    def reset(self) -> None:
        self.demand = 0
        self.prefetch = 0
        self.writeback = 0


@dataclass(slots=True)
class PrefetcherStats:
    """Issue-side and outcome-side counters for one prefetcher."""

    suggested: int = 0          # requests emitted by the algorithm
    issued: int = 0             # survived translation/dedup/queue checks
    dropped_translation: int = 0
    dropped_duplicate: int = 0
    dropped_queue_full: int = 0
    dropped_mshr_full: int = 0
    fills: int = 0              # lines actually installed somewhere
    useful: int = 0             # prefetched lines later demanded
    late: int = 0               # ... demanded before the data arrived
    useless: int = 0            # evicted without a demand touch
    promoted: int = 0           # in-flight prefetches promoted by a demand

    def reset(self) -> None:
        self.suggested = 0
        self.issued = 0
        self.dropped_translation = 0
        self.dropped_duplicate = 0
        self.dropped_queue_full = 0
        self.dropped_mshr_full = 0
        self.fills = 0
        self.useful = 0
        self.late = 0
        self.useless = 0
        self.promoted = 0

    @property
    def timely(self) -> int:
        return self.useful - self.late

    @property
    def accuracy(self) -> float:
        """Artifact formula over *resolved* prefetches.

        The artifact computes (timely + late) / fills; over a 200 M
        instruction run the prefetches still in flight at the end are
        negligible, but over our much shorter traces they are not, so the
        denominator here is the resolved population (useful + useless).
        """
        resolved = self.useful + self.useless
        if resolved == 0:
            return 0.0
        return self.useful / resolved


class _FIFOQueue:
    """A bounded queue serviced at one entry per cycle (the PQ model).

    Returns the queueing delay a new entry observes, or ``None`` when the
    queue is full at ``now`` (the prefetch is then dropped).  This is what
    makes prefetch latency exceed demand latency under bursts — one of the
    variable-latency sources the paper calls out.
    """

    def __init__(self, size: int, rate: float = 1.0) -> None:
        self.size = size
        self.rate = rate  # entries serviced per cycle
        # Service times are appended in nondecreasing order (each new
        # entry starts no earlier than the youngest pending one), so a
        # deque expires from the front in O(expired) instead of
        # rebuilding a list per call.
        self._service_times: Deque[float] = deque()

    def _expire(self, now: float) -> None:
        st = self._service_times
        while st and st[0] <= now:
            st.popleft()

    def occupancy(self, now: float) -> int:
        self._expire(now)
        return len(self._service_times)

    def occupancy_fraction(self, now: float) -> float:
        return self.occupancy(now) / self.size if self.size else 0.0

    def push(self, now: float) -> Optional[int]:
        """Enqueue at ``now``; returns the queueing delay, or None if full.

        Robust to non-monotonic arrival times (an out-of-order core issues
        accesses out of program order): service times are expired lazily
        against each caller's clock.
        """
        st = self._service_times
        while st and st[0] <= now:
            st.popleft()
        if len(st) >= self.size:
            return None
        start = now
        if st and st[-1] > start:
            start = st[-1]
        service = start + 1.0 / self.rate
        st.append(service)
        return int(service - now)

    def reset(self) -> None:
        self._service_times.clear()


class Hierarchy:
    """One core's private L1D/L2 plus (possibly shared) LLC and DRAM."""

    def __init__(
        self,
        mmu: MMU,
        dram: DRAM,
        l1d: Cache,
        l2: Cache,
        llc: Cache,
        l1d_mshr_size: int = 16,
        l2_mshr_size: int = 32,
        llc_mshr_size: int = 64,
        pq_size: int = 16,
        l1d_prefetcher: Optional[Prefetcher] = None,
        l2_prefetcher: Optional[Prefetcher] = None,
    ) -> None:
        self.mmu = mmu
        self.dram = dram
        self.l1d = l1d
        self.l2 = l2
        self.llc = llc
        self.l1d_mshr = MSHR(l1d_mshr_size)
        self.l2_mshr = MSHR(l2_mshr_size)
        self.llc_mshr = MSHR(llc_mshr_size)
        # The L1D has two read ports (paper §III-C); the PQ drains
        # through them, so prefetch probes are serviced at 2/cycle.
        self.l1d_ports_per_cycle = 2.0
        self.pq = _FIFOQueue(pq_size, rate=self.l1d_ports_per_cycle)
        self.l1d_prefetcher = l1d_prefetcher or NoPrefetcher()
        self.l2_prefetcher = l2_prefetcher or NoPrefetcher()

        self.traffic_l1d_l2 = LinkTraffic()
        self.traffic_l2_llc = LinkTraffic()
        self.traffic_llc_dram = LinkTraffic()
        # Per-core LLC/DRAM demand counters: the LLC and DRAM objects may
        # be shared between cores (multi-core), so their own stats pool
        # all cores; these fields attribute demand events to *this* core.
        self.llc_demand_accesses = 0
        self.llc_demand_misses = 0
        self.dram_demand_reads = 0
        self.pf_stats: Dict[str, PrefetcherStats] = {
            "l1d": PrefetcherStats(),
            "l2": PrefetcherStats(),
        }
        # Hot-path alias: reset_stats() zeroes these objects in place, so
        # the reference stays valid for the lifetime of the hierarchy.
        self._pf_l1d_stats = self.pf_stats["l1d"]
        self._refresh_kernel_hooks()
        self._wire_eviction_hooks()

    def _refresh_kernel_hooks(self) -> None:
        """Cache the L1D prefetcher's kernel entry points, if it opts in.

        ``kernel_hooks`` must appear in the prefetcher's *own* class body
        (``type().__dict__``), so subclasses — fault injectors, the
        lockstep reference engine — fall back to the virtual hook
        protocol automatically.  Must be re-run whenever the prefetcher
        object or its class is swapped (snapshot restore, the sanitizer's
        ``to_reference``).
        """
        pf = self.l1d_prefetcher
        if type(pf).__dict__.get("kernel_hooks"):
            self._l1d_kernel = pf
            self._l1d_kern_watermark = pf.config.mshr_watermark
            self._l1d_kern_cross_page = pf.config.cross_page
        else:
            self._l1d_kernel = None
            self._l1d_kern_watermark = 0.0
            self._l1d_kern_cross_page = True

    def _wire_eviction_hooks(self) -> None:
        def account_useless(victim: CacheLine) -> None:
            if victim.prefetched and victim.pf_origin in self.pf_stats:
                self.pf_stats[victim.pf_origin].useless += 1
                if victim.pf_origin == "l2":
                    # Feedback for filtering prefetchers (PPF).
                    self.l2_prefetcher.on_evict(victim.tag, was_useful=False)
                elif victim.pf_origin == "l1d":
                    self.l1d_prefetcher.on_evict(victim.tag, was_useful=False)

        self.l1d.eviction_hook = account_useless
        self.l2.eviction_hook = account_useless
        self.llc.eviction_hook = account_useless

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        # Instrumentation (the sanitizer, the lockstep oracle) installs a
        # wrapper as an instance attribute shadowing the demand_access
        # method; it closes over unpicklable state and is re-attached by
        # whoever restores the snapshot.
        state.pop("demand_access", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Cache.__getstate__ drops the eviction-hook closures; restore
        # the useless-prefetch accounting against *this* hierarchy.
        self._wire_eviction_hooks()
        # Re-resolve kernel dispatch: the restorer may swap classes
        # (sanitizer reference engine) after unpickling.
        self._refresh_kernel_hooks()

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def demand_access(self, ip: int, vaddr: int, now: int, is_write: bool = False) -> int:
        """Perform one demand access; returns its total latency in cycles.

        Runs the L1D prefetcher hooks and issues any suggested prefetches
        at the access time (mirroring ChampSim's operate flow).  The
        dominant L1D-hit case is kept allocation-free: with no L1D
        prefetcher attached the hook plumbing (AccessInfo construction,
        MSHR/PQ occupancy sampling) is skipped entirely — the hooks are
        no-ops and emit no requests, so statistics are unchanged.
        """
        vline = vaddr >> 6
        pline, trans_latency = self.mmu.translate_demand(vline)
        t = now + trans_latency
        l1d = self.l1d
        l1d_latency = l1d.latency
        # NoPrefetcher exactly (a wrapped/faulty prefetcher has its own
        # class): safe to skip its no-op hooks.
        pf_active = type(self.l1d_prefetcher) is not NoPrefetcher

        # L1D probe with Cache.lookup inlined (identical bookkeeping;
        # one call per record adds up).  Exact type: a substituted cache
        # model keeps the virtual call.
        if type(l1d) is Cache:
            l1d_stats = l1d.stats
            l1d_stats.demand_accesses += 1
            way = l1d._where.get(pline)
            if way is None:
                l1d_stats.demand_misses += 1
                if l1d._drrip is not None:
                    l1d._drrip.record_miss(pline & l1d._set_mask)
                cl = None
            else:
                l1d_stats.demand_hits += 1
                sidx = pline & l1d._set_mask
                lru = l1d._lru
                if lru is not None:
                    clock = lru._clock[sidx] + 1
                    lru._clock[sidx] = clock
                    lru._age[sidx][way] = clock
                elif l1d._srrip_hit is not None:
                    l1d._srrip_hit[sidx][way] = 0
                else:
                    l1d.policy.on_hit(sidx, way)
                cl = l1d.sets[sidx][way]
        else:
            cl = l1d.lookup(pline, is_demand=True)
        if cl is not None:
            latency = trans_latency + l1d_latency
            was_pf, was_late, residual = l1d.demand_touch(cl, t + l1d_latency)
            latency += residual
            if was_pf:
                self._credit_useful("l1d" if cl.pf_origin != "l2" else "l2", was_late)
                pf_latency = cl.pf_latency
                cl.pf_latency = 0  # reset after consumption (paper §III-C)
                if pf_active:
                    self._notify_l1d_prefetch_hit(ip, vline, t, pf_latency)
            if is_write:
                cl.dirty = True
            if pf_active:
                self._run_l1d_prefetcher_on_access(
                    ip, vline, hit=True, prefetch_hit=was_pf, now=t,
                    is_write=is_write,
                )
            return latency

        # L1D miss: check for an in-flight fetch of the same line.
        l1d_mshr = self.l1d_mshr
        inflight = l1d_mshr.lookup(pline, t)
        if inflight is not None:
            wait = l1d_mshr.merge_demand(inflight, t)
            if inflight.is_prefetch:
                # Promote: a demand arrived before the prefetch landed.
                inflight.is_prefetch = False
                stats = self._pf_l1d_stats
                stats.useful += 1
                stats.late += 1
                stats.promoted += 1
                if pf_active:
                    self._notify_l1d_prefetch_hit(
                        ip, vline, t,
                        max(1, inflight.ready_cycle - inflight.alloc_cycle),
                    )
            if pf_active:
                self._run_l1d_prefetcher_on_access(
                    ip, vline, hit=False, prefetch_hit=False, now=t,
                    is_write=is_write,
                )
            return trans_latency + l1d_latency + wait

        # True miss: fetch from L2 (and below).  A full MSHR stalls the
        # demand until an entry frees (ChampSim replays the access); the
        # stall is part of the latency the core observes.
        detect_time = t + l1d_latency
        miss_time = detect_time
        if not l1d_mshr.can_allocate(miss_time):
            earliest = l1d_mshr.earliest_ready(miss_time)
            if earliest > miss_time:
                miss_time = earliest
        self.traffic_l1d_l2.demand += 1
        ready = self._access_l2(ip, pline, miss_time, is_prefetch=False)
        l1d_mshr.allocate(
            pline, miss_time, ready, is_prefetch=False, ip=ip, vline=vline
        )
        victim = l1d.fill(
            pline,
            now=miss_time,
            arrival_cycle=ready,
            is_prefetch=False,
            ip=ip,
            vline=vline,
        )
        if victim is not None:
            self._handle_writeback(l1d, victim, ready)
        if is_write:
            l1d.mark_dirty(pline)

        if pf_active:
            self._run_l1d_prefetcher_on_access(
                ip, vline, hit=False, prefetch_hit=False, now=t,
                is_write=is_write,
            )
            self._run_l1d_prefetcher_on_fill(
                vline, ready, ready - miss_time, was_prefetch=False, ip=ip
            )
        return trans_latency + l1d_latency + (ready - detect_time)

    # ------------------------------------------------------------------
    # Lower levels
    # ------------------------------------------------------------------

    def _access_l2(
        self, ip: int, pline: int, now: int, is_prefetch: bool
    ) -> int:
        """Fetch ``pline`` for the L1D; returns the cycle data reaches L1D."""
        l2 = self.l2
        # Cache.lookup inlined (identical bookkeeping), as in demand_access.
        if type(l2) is Cache:
            way = l2._where.get(pline)
            if way is None:
                if not is_prefetch:
                    stats2 = l2.stats
                    stats2.demand_accesses += 1
                    stats2.demand_misses += 1
                    if l2._drrip is not None:
                        l2._drrip.record_miss(pline & l2._set_mask)
                cl = None
            else:
                if not is_prefetch:
                    stats2 = l2.stats
                    stats2.demand_accesses += 1
                    stats2.demand_hits += 1
                sidx = pline & l2._set_mask
                lru = l2._lru
                if lru is not None:
                    clock = lru._clock[sidx] + 1
                    lru._clock[sidx] = clock
                    lru._age[sidx][way] = clock
                elif l2._srrip_hit is not None:
                    l2._srrip_hit[sidx][way] = 0
                else:
                    l2.policy.on_hit(sidx, way)
                cl = l2.sets[sidx][way]
        else:
            cl = l2.lookup(pline, is_demand=not is_prefetch)
        if cl is not None:
            ready = max(now + self.l2.latency, cl.arrival_cycle)
            if not is_prefetch:
                was_pf, was_late, _ = self.l2.demand_touch(cl, ready)
                if was_pf and cl.pf_origin in self.pf_stats:
                    self._credit_useful(cl.pf_origin, was_late)
                    if cl.pf_origin == "l2":
                        # Positive feedback for filtering prefetchers.
                        self.l2_prefetcher.on_prefetch_hit(
                            AccessInfo(
                                ip=ip, line=pline, hit=True,
                                prefetch_hit=True, now=now,
                            ),
                            cl.pf_latency,
                        )
                self._run_l2_prefetcher(ip, pline, hit=True, now=now)
            return ready

        inflight = self.l2_mshr.lookup(pline, now)
        if inflight is not None:
            wait = self.l2_mshr.merge_demand(inflight, now)
            if not is_prefetch and inflight.is_prefetch:
                inflight.is_prefetch = False
                origin = "l2"
                self.pf_stats[origin].useful += 1
                self.pf_stats[origin].late += 1
                self.pf_stats[origin].promoted += 1
            return now + self.l2.latency + wait

        miss_time = now + self.l2.latency
        self.traffic_l2_llc.demand += 1 if not is_prefetch else 0
        self.traffic_l2_llc.prefetch += 1 if is_prefetch else 0
        ready = self._access_llc(pline, miss_time, is_prefetch)
        if self.l2_mshr.can_allocate(miss_time):
            self.l2_mshr.allocate(pline, miss_time, ready, is_prefetch, ip=ip)
        # Copies installed on the way back up are not attributed to the
        # prefetcher's accuracy: only the fill at the *target* level is.
        victim = self.l2.fill(
            pline, now=miss_time, arrival_cycle=ready, is_prefetch=is_prefetch, ip=ip,
        )
        self._handle_writeback(self.l2, victim, ready)
        if not is_prefetch:
            self._run_l2_prefetcher(ip, pline, hit=False, now=now)
        return ready

    def _access_llc(self, pline: int, now: int, is_prefetch: bool) -> int:
        if not is_prefetch:
            self.llc_demand_accesses += 1
        llc = self.llc
        # Cache.lookup inlined (identical bookkeeping), as in demand_access.
        if type(llc) is Cache:
            way = llc._where.get(pline)
            if way is None:
                if not is_prefetch:
                    stats3 = llc.stats
                    stats3.demand_accesses += 1
                    stats3.demand_misses += 1
                    if llc._drrip is not None:
                        llc._drrip.record_miss(pline & llc._set_mask)
                cl = None
            else:
                if not is_prefetch:
                    stats3 = llc.stats
                    stats3.demand_accesses += 1
                    stats3.demand_hits += 1
                sidx = pline & llc._set_mask
                lru = llc._lru
                if lru is not None:
                    clock = lru._clock[sidx] + 1
                    lru._clock[sidx] = clock
                    lru._age[sidx][way] = clock
                elif llc._srrip_hit is not None:
                    llc._srrip_hit[sidx][way] = 0
                else:
                    llc.policy.on_hit(sidx, way)
                cl = llc.sets[sidx][way]
        else:
            cl = llc.lookup(pline, is_demand=not is_prefetch)
        if cl is not None:
            ready = max(now + self.llc.latency, cl.arrival_cycle)
            if not is_prefetch:
                was_pf, was_late, _ = self.llc.demand_touch(cl, ready)
                if was_pf and cl.pf_origin in self.pf_stats:
                    self._credit_useful(cl.pf_origin, was_late)
            return ready

        miss_time = now + self.llc.latency
        if not is_prefetch:
            self.llc_demand_misses += 1
            self.dram_demand_reads += 1
        self.traffic_llc_dram.demand += 1 if not is_prefetch else 0
        self.traffic_llc_dram.prefetch += 1 if is_prefetch else 0
        ready = self.dram.read(pline, miss_time)
        victim = self.llc.fill(
            pline, now=miss_time, arrival_cycle=ready, is_prefetch=is_prefetch,
        )
        self._handle_writeback(self.llc, victim, ready)
        return ready

    def _handle_writeback(
        self, cache: Cache, victim: Optional[CacheLine], now: int
    ) -> None:
        if victim is None or not victim.dirty:
            return
        if cache is self.l1d:
            self.traffic_l1d_l2.writeback += 1
            wv = self.l2.fill(victim.tag, now, now, is_prefetch=False)
            self.l2.mark_dirty(victim.tag)
            self._handle_writeback(self.l2, wv, now)
        elif cache is self.l2:
            self.traffic_l2_llc.writeback += 1
            wv = self.llc.fill(victim.tag, now, now, is_prefetch=False)
            self.llc.mark_dirty(victim.tag)
            self._handle_writeback(self.llc, wv, now)
        else:
            self.traffic_llc_dram.writeback += 1
            self.dram.write(victim.tag, now)

    # ------------------------------------------------------------------
    # Prefetch issue
    # ------------------------------------------------------------------

    def _run_l1d_prefetcher_on_access(
        self,
        ip: int,
        vline: int,
        hit: bool,
        prefetch_hit: bool,
        now: int,
        is_write: bool,
    ) -> None:
        # Occupancy sampling inlined (this hook runs on every access with
        # a prefetcher attached): expire lazily, then divide — the same
        # arithmetic occupancy_fraction performs.  Subclasses (the fault
        # injectors override occupancy) keep the virtual call.
        mshr = self.l1d_mshr
        if type(mshr) is MSHR:
            if now != mshr._last_expire:
                if mshr._entries and now >= mshr._min_ready:
                    mshr._expire(now)
                else:
                    mshr._last_expire = now
            mshr_occ = len(mshr._entries) / mshr.size if mshr.size else 0.0
        else:
            mshr_occ = mshr.occupancy_fraction(now)
        pq = self.pq
        if type(pq) is _FIFOQueue:
            st = pq._service_times
            while st and st[0] <= now:
                st.popleft()
            pq_occ = len(st) / pq.size if pq.size else 0.0
        else:
            pq_occ = pq.occupancy_fraction(now)
        # Kernel dispatch: a prefetcher that opted in (Berti) trains and
        # predicts without AccessInfo/PrefetchRequest objects; the
        # prediction policy (_predict) is applied inline over its
        # memoised (delta, status) list.  Counter order is identical to
        # the virtual path: deltas whose target underflows are skipped
        # uncounted (as _predict does), cross-page suppression precedes
        # the suggested count, and the translate → duplicate → issue
        # ladder below mirrors the prologue inlined for the virtual path.
        kern = self._l1d_kernel
        if kern is not None:
            selected = kern.on_access_kernel(ip, vline, hit, now)
            if not selected:
                return
            if (
                type(self.mmu) is MMU
                and type(mshr) is MSHR
                and type(pq) is _FIFOQueue
                and type(self.l1d) is Cache
                and type(self.l2) is Cache
                and type(self.l2_mshr) is MSHR
            ):
                # Every structure on the issue ladder is the stock
                # implementation: run the fully inlined loop.
                self._kernel_issue_selected(
                    kern, selected, ip, vline, now, mshr_occ
                )
                return
            # Generic kernel path (a wrapped or fault-injected structure
            # is present): identical counters through virtual calls.
            pf_stats = self._pf_l1d_stats
            translate = self.mmu.translate_prefetch
            l1d_where = self.l1d._where
            l2_where = self.l2._where
            mshr_below = mshr_occ < self._l1d_kern_watermark
            cross_ok = self._l1d_kern_cross_page
            issue = self._issue_l1d_prefetch_fast
            for delta, status in selected:
                target = vline + delta
                if target < 0:
                    continue
                if not cross_ok and not same_page(vline, target):
                    kern.cross_page_suppressed += 1
                    continue
                if status == L1D_PREF and mshr_below:
                    fill_level = FILL_L1
                    where = l1d_where
                else:
                    fill_level = FILL_L2
                    where = l2_where
                pf_stats.suggested += 1
                pline = translate(target)
                if pline is None:
                    pf_stats.dropped_translation += 1
                    continue
                if pline in where:
                    pf_stats.dropped_duplicate += 1
                    continue
                issue(target, pline, fill_level, ip, now)
            return
        info = AccessInfo(
            ip=ip,
            line=vline,
            hit=hit,
            prefetch_hit=prefetch_hit,
            now=now,
            is_write=is_write,
            mshr_occupancy=mshr_occ,
            pq_occupancy=pq_occ,
        )
        pf = self.l1d_prefetcher
        requests = pf.on_access(info)
        # Skip the cycle() call entirely for prefetchers that do not
        # override the base no-op (the common case, incl. Berti).  Duck-
        # typed wrappers without a class-level cycle still get called.
        if getattr(type(pf), "cycle", None) is not Prefetcher.cycle:
            requests.extend(pf.cycle(now))
        if not requests:
            return
        # Most suggestions die on the duplicate filter (the target line
        # is already cached), so the translate-and-filter prologue of
        # issue_l1d_prefetch is inlined here — identical counters in
        # identical order — and only survivors pay the full call, with
        # their translation passed along.
        issue = self.issue_l1d_prefetch
        pf_stats = self._pf_l1d_stats
        translate = self.mmu.translate_prefetch
        l1d_where = self.l1d._where
        l2_where = self.l2._where
        llc_where = self.llc._where
        for req in requests:
            pf_stats.suggested += 1
            req_vline = req.line
            if req_vline < 0:
                pf_stats.dropped_translation += 1
                continue
            pline = translate(req_vline)
            if pline is None:
                pf_stats.dropped_translation += 1
                continue
            fill_level = req.fill_level
            where = l1d_where if fill_level == FILL_L1 else (
                l2_where if fill_level == FILL_L2 else llc_where
            )
            if pline in where:
                pf_stats.dropped_duplicate += 1
                continue
            issue(req, ip, now, _pline=pline)

    def _kernel_issue_selected(
        self, kern, selected, ip: int, vline: int, now: int,
        mshr_occ: float,
    ) -> None:
        """Issue a kernel prefetcher's ``(delta, status)`` suggestions.

        This is ``_issue_l1d_prefetch_fast`` unrolled into the suggestion
        loop for the exact-type fast case (the caller has verified every
        structure on the ladder is the stock implementation): the
        translate → dedup → PQ → MSHR-reserve → fill sequence runs on
        hoisted locals with no per-suggestion calls beyond the real work
        (``_access_l2``/``_access_llc``, ``allocate``, ``fill``).  Side
        effects happen in the same order as the call-based path; pure
        counter increments are batched in locals and flushed once after
        the loop, which is unobservable — the lockstep digest and all
        stats readers only sample between accesses.  Two loop-level
        facts the call-based path cannot exploit:

        * a PQ push that failed at ``now`` fails for every later push at
          the same ``now`` (expiry cannot free a slot: surviving service
          times all exceed ``now``), so a sticky flag skips the deque
          work while still counting each drop;
        * the kernel prediction list only carries L1/L2 fill levels, so
          the FILL_LLC branch is dead here.
        """
        mmu = self.mmu
        stlb_stats = mmu.stlb.stats
        stlb_map = mmu.stlb._map
        translate_cold = mmu._translate_prefetch_cold
        l1d = self.l1d
        l2 = self.l2
        l1d_where = l1d._where
        l2_where = l2._where
        l1d_fill = l1d.fill
        l2_fill = l2.fill
        l2_latency = l2.latency
        mshr = self.l1d_mshr
        mshr_entries = mshr._entries
        mshr_allocate = mshr.allocate
        mshr_reserve = mshr.size - 2
        l2_mshr = self.l2_mshr
        l2_entries = l2_mshr._entries
        l2_size = l2_mshr.size
        pq = self.pq
        st = pq._service_times
        pq_size = pq.size
        period = 1.0 / pq.rate
        access_l2 = self._access_l2
        access_llc = self._access_llc
        mshr_below = mshr_occ < self._l1d_kern_watermark
        cross_ok = self._l1d_kern_cross_page
        latency_cap = 1 << LATENCY_FIELD_BITS

        suggested = 0
        dropped_translation = 0
        dropped_duplicate = 0
        dropped_queue_full = 0
        dropped_mshr_full = 0
        fills = 0
        issued = 0
        stlb_probes = 0
        stlb_hits = 0
        tr_l1d_l2 = 0
        tr_l2_llc = 0
        pq_full = False

        for delta, status in selected:
            target = vline + delta
            if target < 0:
                continue
            if not cross_ok and not same_page(vline, target):
                kern.cross_page_suppressed += 1
                continue
            fill_l1 = status == L1D_PREF and mshr_below
            suggested += 1
            # translate_prefetch, STLB-hit path inlined.
            vpage = target >> LINES_PER_PAGE_BITS
            stlb_probes += 1
            ppage = stlb_map.get(vpage)
            if ppage is None:
                pline = translate_cold(target, vpage)
                if pline is None:
                    dropped_translation += 1
                    continue
            else:
                stlb_hits += 1
                pline = (ppage << LINES_PER_PAGE_BITS) | (
                    target & PAGE_OFFSET_MASK
                )
            if fill_l1:
                if pline in l1d_where:
                    dropped_duplicate += 1
                    continue
                # MSHR.lookup inlined.  The expire scan is memoised per
                # cycle, and skipped entirely — bar the memo write _expire
                # itself would do — when nothing can have expired yet.
                if now != mshr._last_expire:
                    if mshr_entries and now >= mshr._min_ready:
                        mshr._expire(now)
                    else:
                        mshr._last_expire = now
                if pline in mshr_entries:
                    dropped_duplicate += 1
                    continue
                if pq_full:
                    dropped_queue_full += 1
                    continue
                # _FIFOQueue.push inlined.
                while st and st[0] <= now:
                    st.popleft()
                if len(st) >= pq_size:
                    pq_full = True
                    dropped_queue_full += 1
                    continue
                start = now
                if st and st[-1] > start:
                    start = st[-1]
                service = start + period
                st.append(service)
                issue_time = now + int(service - now)
                # Demand-reserve check (occupancy inlined at issue time).
                if issue_time != mshr._last_expire:
                    if mshr_entries and issue_time >= mshr._min_ready:
                        mshr._expire(issue_time)
                    else:
                        mshr._last_expire = issue_time
                if len(mshr_entries) >= mshr_reserve:
                    dropped_mshr_full += 1
                    continue
                ready = access_l2(ip, pline, issue_time, is_prefetch=True)
                latency = ready - now
                mshr_allocate(
                    pline, issue_time, ready, is_prefetch=True, ip=ip,
                    vline=target,
                )
                l1d_fill(
                    pline,
                    now=issue_time,
                    arrival_cycle=ready,
                    is_prefetch=True,
                    ip=ip,
                    vline=target,
                    pf_latency=(
                        latency if 0 < latency < latency_cap else 0
                    ),
                    pf_origin="l1d",
                )
                tr_l1d_l2 += 1
                fills += 1
                issued += 1
            else:
                if pline in l2_where:
                    dropped_duplicate += 1
                    continue
                if pq_full:
                    dropped_queue_full += 1
                    continue
                while st and st[0] <= now:
                    st.popleft()
                if len(st) >= pq_size:
                    pq_full = True
                    dropped_queue_full += 1
                    continue
                start = now
                if st and st[-1] > start:
                    start = st[-1]
                service = start + period
                st.append(service)
                issue_time = now + int(service - now)
                # The L2 dedup probe runs after the PQ slot is consumed
                # (hardware matches in-queue entries at the L2, not at
                # PQ insert) — same order as the call-based path.
                if now != l2_mshr._last_expire:
                    if l2_entries and now >= l2_mshr._min_ready:
                        l2_mshr._expire(now)
                    else:
                        l2_mshr._last_expire = now
                if pline in l2_where or pline in l2_entries:
                    dropped_duplicate += 1
                    continue
                if issue_time != l2_mshr._last_expire:
                    if l2_entries and issue_time >= l2_mshr._min_ready:
                        l2_mshr._expire(issue_time)
                    else:
                        l2_mshr._last_expire = issue_time
                if len(l2_entries) >= l2_size:
                    dropped_mshr_full += 1
                    continue
                ready = access_llc(pline, issue_time + l2_latency, True)
                l2_mshr.allocate(pline, issue_time, ready, True, ip=ip)
                latency = ready - now
                l2_fill(
                    pline,
                    now=issue_time,
                    arrival_cycle=ready,
                    is_prefetch=True,
                    ip=ip,
                    vline=target,
                    pf_latency=(
                        latency if 0 < latency < latency_cap else 0
                    ),
                    pf_origin="l1d",
                )
                tr_l1d_l2 += 1
                tr_l2_llc += 1
                fills += 1
                issued += 1

        pf_stats = self._pf_l1d_stats
        pf_stats.suggested += suggested
        pf_stats.dropped_translation += dropped_translation
        pf_stats.dropped_duplicate += dropped_duplicate
        pf_stats.dropped_queue_full += dropped_queue_full
        pf_stats.dropped_mshr_full += dropped_mshr_full
        pf_stats.fills += fills
        pf_stats.issued += issued
        stlb_stats.prefetch_probes += stlb_probes
        stlb_stats.prefetch_probe_hits += stlb_hits
        self.traffic_l1d_l2.prefetch += tr_l1d_l2
        self.traffic_l2_llc.prefetch += tr_l2_llc

    def _run_l1d_prefetcher_on_fill(
        self, vline: int, now: int, latency: int, was_prefetch: bool, ip: int
    ) -> None:
        kern = self._l1d_kernel
        if kern is not None:
            # One packed update, no FillInfo: Berti trains on demand-miss
            # fills only and never emits requests from this hook.
            if not was_prefetch:
                kern.on_fill_kernel(vline, now, latency, ip)
            return
        fill = FillInfo(
            line=vline, now=now, latency=latency, was_prefetch=was_prefetch, ip=ip
        )
        for req in self.l1d_prefetcher.on_fill(fill):
            self.issue_l1d_prefetch(req, ip, now)

    def _notify_l1d_prefetch_hit(
        self, ip: int, vline: int, now: int, pf_latency: int
    ) -> None:
        # The MSHR sampling (and its lazy-expiry side effect) runs on
        # both paths: the lockstep digest reads the raw entry map.
        mshr = self.l1d_mshr
        if type(mshr) is MSHR:
            if now != mshr._last_expire:
                if mshr._entries and now >= mshr._min_ready:
                    mshr._expire(now)
                else:
                    mshr._last_expire = now
            mshr_occ = len(mshr._entries) / mshr.size if mshr.size else 0.0
        else:
            mshr_occ = mshr.occupancy_fraction(now)
        kern = self._l1d_kernel
        if kern is not None:
            kern.on_prefetch_hit_kernel(ip, vline, now, pf_latency)
            return
        info = AccessInfo(
            ip=ip,
            line=vline,
            hit=True,
            prefetch_hit=True,
            now=now,
            mshr_occupancy=mshr_occ,
        )
        self.l1d_prefetcher.on_prefetch_hit(info, pf_latency)

    def issue_l1d_prefetch(
        self,
        req: PrefetchRequest,
        ip: int,
        now: int,
        _pline: Optional[int] = None,
    ) -> bool:
        """Translate, filter, and issue one L1D-prefetcher request.

        Returns True when the prefetch actually went out to the hierarchy.
        ``_pline`` is an internal fast path: the access hook pre-counts
        the suggestion, translates, and runs the duplicate filter inline
        before calling here (identical counters either way).
        """
        stats = self._pf_l1d_stats
        vline = req.line
        fill_level = req.fill_level
        if _pline is not None:
            pline = _pline
        else:
            stats.suggested += 1
            if vline < 0:
                stats.dropped_translation += 1
                return False
            pline = self.mmu.translate_prefetch(vline)
            if pline is None:
                stats.dropped_translation += 1
                return False

            # Duplicate suppression happens before a PQ slot is consumed:
            # hardware PQs match same-address entries at insert, so
            # repeated suggestions for already-covered lines are free and
            # cannot starve other streams of queue space.  Most
            # suggestions die here, so the presence index is probed
            # directly.
            target = self.l1d if fill_level == FILL_L1 else (
                self.l2 if fill_level == FILL_L2 else self.llc
            )
            if pline in target._where:
                stats.dropped_duplicate += 1
                return False
        return self._issue_l1d_prefetch_fast(vline, pline, fill_level, ip, now)

    def _issue_l1d_prefetch_fast(
        self, vline: int, pline: int, fill_level: int, ip: int, now: int
    ) -> bool:
        """The post-dedup issue tail shared by the kernel and virtual
        paths: PQ admission, MSHR reservation, and the fill walk.  The
        caller has already counted the suggestion, translated ``vline``
        to ``pline``, and run the presence-index duplicate filter.
        """
        stats = self._pf_l1d_stats
        l1d_mshr = self.l1d_mshr
        mshr_exact = type(l1d_mshr) is MSHR
        if fill_level == FILL_L1:
            # MSHR.lookup inlined (the expire scan is memoised per cycle,
            # so repeated calls cost one comparison); fault-injection
            # subclasses keep the virtual call.
            if mshr_exact:
                if now != l1d_mshr._last_expire:
                    l1d_mshr._expire(now)
                inflight = l1d_mshr._entries.get(pline)
            else:
                inflight = l1d_mshr.lookup(pline, now)
            if inflight is not None:
                stats.dropped_duplicate += 1
                return False

        # The bounded PQ (16 entries, Table I) drains through the two
        # L1D read ports; overflow drops the request.  push() is inlined
        # (identical arithmetic and drop behaviour) — it runs once per
        # suggestion that survives the duplicate filter.
        pq = self.pq
        if type(pq) is _FIFOQueue:
            st = pq._service_times
            while st and st[0] <= now:
                st.popleft()
            if len(st) >= pq.size:
                stats.dropped_queue_full += 1
                return False
            start = now
            if st and st[-1] > start:
                start = st[-1]
            service = start + 1.0 / pq.rate
            st.append(service)
            issue_time = now + int(service - now)
        else:
            pq_delay = pq.push(now)
            if pq_delay is None:
                stats.dropped_queue_full += 1
                return False
            issue_time = now + pq_delay

        if fill_level == FILL_L1:
            # Keep two MSHR entries in reserve for demand misses, so a
            # prefetch burst cannot stall the demand path outright.
            # (occupancy inlined, same expire memo as above.)
            if mshr_exact:
                if issue_time != l1d_mshr._last_expire:
                    l1d_mshr._expire(issue_time)
                occ = len(l1d_mshr._entries)
            else:
                occ = l1d_mshr.occupancy(issue_time)
            if occ >= l1d_mshr.size - 2:
                stats.dropped_mshr_full += 1
                return False
            ready = self._access_l2(ip, pline, issue_time, is_prefetch=True)
            latency = ready - now
            self.l1d_mshr.allocate(
                pline, issue_time, ready, is_prefetch=True, ip=ip, vline=vline
            )
            self.l1d.fill(
                pline,
                now=issue_time,
                arrival_cycle=ready,
                is_prefetch=True,
                ip=ip,
                vline=vline,
                pf_latency=self._clamp_latency(latency),
                pf_origin="l1d",
            )
            self.traffic_l1d_l2.prefetch += 1
            stats.fills += 1
        elif fill_level == FILL_L2:
            # Cache.probe is a pure presence test and MSHR.lookup /
            # can_allocate reduce to the memoised expire plus a dict
            # probe / length check, so all three are inlined here under
            # the same exact-type guards as elsewhere on this path.
            l2_mshr = self.l2_mshr
            if type(self.l2) is Cache and type(l2_mshr) is MSHR:
                if now != l2_mshr._last_expire:
                    l2_mshr._expire(now)
                if pline in self.l2._where or pline in l2_mshr._entries:
                    stats.dropped_duplicate += 1
                    return False
                if issue_time != l2_mshr._last_expire:
                    l2_mshr._expire(issue_time)
                if len(l2_mshr._entries) >= l2_mshr.size:
                    stats.dropped_mshr_full += 1
                    return False
            else:
                if self.l2.probe(pline) or l2_mshr.lookup(pline, now):
                    stats.dropped_duplicate += 1
                    return False
                if not l2_mshr.can_allocate(issue_time):
                    stats.dropped_mshr_full += 1
                    return False
            ready = self._access_llc(pline, issue_time + self.l2.latency, True)
            l2_mshr.allocate(pline, issue_time, ready, True, ip=ip)
            self.l2.fill(
                pline, now=issue_time, arrival_cycle=ready, is_prefetch=True,
                ip=ip, vline=vline,
                pf_latency=self._clamp_latency(ready - now), pf_origin="l1d",
            )
            self.traffic_l1d_l2.prefetch += 1
            self.traffic_l2_llc.prefetch += 1
            stats.fills += 1
        else:  # FILL_LLC
            if self.llc.probe(pline):
                stats.dropped_duplicate += 1
                return False
            if not self.llc_mshr.can_allocate(issue_time):
                stats.dropped_mshr_full += 1
                return False
            ready = self.dram.read(pline, issue_time + self.llc.latency)
            self.llc_mshr.allocate(pline, issue_time, ready, True, ip=ip)
            self.llc.fill(
                pline, now=issue_time, arrival_cycle=ready, is_prefetch=True,
                pf_origin="l1d",
            )
            self.traffic_llc_dram.prefetch += 1
            stats.fills += 1
        stats.issued += 1
        return True

    def _run_l2_prefetcher(self, ip: int, pline: int, hit: bool, now: int) -> None:
        if isinstance(self.l2_prefetcher, NoPrefetcher):
            return
        info = AccessInfo(
            ip=ip,
            line=pline,
            hit=hit,
            prefetch_hit=False,
            now=now,
            mshr_occupancy=self.l2_mshr.occupancy_fraction(now),
        )
        for req in self.l2_prefetcher.on_access(info):
            self.issue_l2_prefetch(req, ip, now)

    def issue_l2_prefetch(self, req: PrefetchRequest, ip: int, now: int) -> bool:
        """Issue one L2-prefetcher request (physical addressing)."""
        stats = self.pf_stats["l2"]
        stats.suggested += 1
        pline = req.line
        if pline < 0:
            stats.dropped_translation += 1
            return False
        target = self.llc if req.fill_level == FILL_LLC else self.l2
        if target.probe(pline) or (
            target is self.l2 and self.l2_mshr.lookup(pline, now)
        ):
            stats.dropped_duplicate += 1
            return False

        if req.fill_level == FILL_LLC:
            if self.llc.probe(pline):
                stats.dropped_duplicate += 1
                return False
            if not self.llc_mshr.can_allocate(now):
                stats.dropped_mshr_full += 1
                return False
            ready = self.dram.read(pline, now + self.llc.latency)
            self.llc_mshr.allocate(pline, now, ready, True, ip=ip)
            self.llc.fill(
                pline, now=now, arrival_cycle=ready, is_prefetch=True,
                pf_origin="l2",
            )
            self.traffic_llc_dram.prefetch += 1
        else:
            if not self.l2_mshr.can_allocate(now):
                stats.dropped_mshr_full += 1
                return False
            ready = self._access_llc(pline, now + self.l2.latency, True)
            self.l2_mshr.allocate(pline, now, ready, True, ip=ip)
            self.l2.fill(
                pline, now=now, arrival_cycle=ready, is_prefetch=True, ip=ip,
                pf_origin="l2",
            )
            self.traffic_l2_llc.prefetch += 1
        stats.fills += 1
        stats.issued += 1
        return True

    # ------------------------------------------------------------------

    def _credit_useful(self, origin: str, was_late: bool) -> None:
        if origin not in self.pf_stats:
            return
        self.pf_stats[origin].useful += 1
        if was_late:
            self.pf_stats[origin].late += 1

    @staticmethod
    def _clamp_latency(latency: int) -> int:
        """Model the 12-bit latency field: overflow stores zero."""
        if latency <= 0 or latency >= (1 << LATENCY_FIELD_BITS):
            return 0
        return latency

    def prefetched_line_counts(self) -> Dict[str, int]:
        """Resident or in-flight prefetched lines, by issuing prefetcher.

        Captured at the warmup→measurement boundary: these lines were
        issued before the stats reset but can still be demanded (and
        credited as useful) afterwards, so ``useful`` may legitimately
        exceed ``issued`` by up to this count.
        """
        counts = {"l1d": 0, "l2": 0}
        for cache in (self.l1d, self.l2, self.llc):
            for cset in cache.sets:
                for cl in cset:
                    if cl.valid and cl.prefetched and cl.pf_origin in counts:
                        counts[cl.pf_origin] += 1
        # In-flight prefetch misses promoted by a later demand are
        # credited to the MSHR's level ("l1d"/"l2" respectively).
        for origin, mshr in (("l1d", self.l1d_mshr), ("l2", self.l2_mshr)):
            counts[origin] += sum(
                1 for e in mshr._entries.values() if e.is_prefetch
            )
        return counts

    def reset_stats(self) -> None:
        """Clear all counters (but not cache contents) after warmup."""
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.llc.reset_stats()
        self.dram.reset_stats()
        self.traffic_l1d_l2.reset()
        self.traffic_l2_llc.reset()
        self.traffic_llc_dram.reset()
        self.llc_demand_accesses = 0
        self.llc_demand_misses = 0
        self.dram_demand_reads = 0
        for s in self.pf_stats.values():
            s.reset()
        self.mmu.reset_stats()
