"""Regression pin for PR 2's exact-type fast-path guards.

The engine and hierarchy inline cache lookups, replacement updates, and
MSHR/PQ occupancy sampling only when the component is the stock class
(``type(x) is Cache`` etc.).  The entire sanitizer subsystem — and any
user-substituted component model — relies on the complementary
guarantee: a *subclass* must be routed through the virtual methods.
These tests install counting subclasses via ``post_build`` and assert
their overridden methods actually run, so a future optimisation cannot
widen an exact-type check to ``isinstance`` (which would silently
bypass substituted components) without failing here.
"""

import pytest

from repro.memory.cache import Cache
from repro.memory.hierarchy import _FIFOQueue
from repro.memory.mshr import MSHR
from repro.memory.replacement import LRUPolicy
from repro.prefetchers.base import NoPrefetcher
from repro.prefetchers.registry import make_prefetcher
from repro.sanitizer.lockstep import quick_trace
from repro.simulator.engine import simulate


class CountingCache(Cache):
    lookup_calls = 0

    def lookup(self, line, is_demand=True):
        CountingCache.lookup_calls += 1
        return super().lookup(line, is_demand)


class CountingMSHR(MSHR):
    occupancy_calls = 0

    def occupancy_fraction(self, now):
        CountingMSHR.occupancy_calls += 1
        return super().occupancy_fraction(now)


class CountingPQ(_FIFOQueue):
    occupancy_calls = 0

    def occupancy_fraction(self, now):
        CountingPQ.occupancy_calls += 1
        return super().occupancy_fraction(now)


class CountingLRU(LRUPolicy):
    on_hit_calls = 0

    def on_hit(self, set_index, way):
        CountingLRU.on_hit_calls += 1
        return super().on_hit(set_index, way)


class CountingNoPrefetcher(NoPrefetcher):
    on_access_calls = 0

    def on_access(self, access):
        CountingNoPrefetcher.on_access_calls += 1
        return super().on_access(access)


@pytest.fixture
def trace():
    return quick_trace(600, "guard_trace")


@pytest.fixture
def reuse_trace():
    """A stream that wraps a 16-line region, so the L1D sees demand hits
    (``quick_trace`` never revisits a line and would leave on_hit cold)."""
    from repro.workloads.synthetic import strided_stream
    from repro.workloads.trace import Trace

    t = Trace("guard_reuse")
    t.extend(strided_stream(0x100, 0x10000, 1, 600, gap=6, region_lines=16))
    t.suite = "synthetic"
    return t


def _reset_counters():
    CountingCache.lookup_calls = 0
    CountingMSHR.occupancy_calls = 0
    CountingPQ.occupancy_calls = 0
    CountingLRU.on_hit_calls = 0
    CountingNoPrefetcher.on_access_calls = 0


class TestSubclassesTakeVirtualPath:
    def test_cache_subclass_gets_lookup_calls(self, trace):
        _reset_counters()

        def swap(h):
            h.l1d.__class__ = CountingCache

        simulate(trace, post_build=swap)
        # Every demand access must have gone through Cache.lookup — the
        # engine's inline L1D probe is only legal for the exact type.
        assert CountingCache.lookup_calls >= len(trace)

    def test_mshr_and_pq_subclasses_get_occupancy_calls(self, trace):
        _reset_counters()

        def swap(h):
            h.l1d_mshr.__class__ = CountingMSHR
            h.pq.__class__ = CountingPQ

        # The occupancy sampling under test runs in the prefetcher
        # access hook, so a real prefetcher must be attached.
        simulate(trace, l1d_prefetcher=make_prefetcher("berti"),
                 post_build=swap)
        assert CountingMSHR.occupancy_calls > 0
        assert CountingPQ.occupancy_calls > 0

    def test_policy_subclass_gets_on_hit_calls(self, reuse_trace):
        _reset_counters()

        def swap(h):
            h.l1d.policy.__class__ = CountingLRU
            # Null the cache's memoised exact-type fast path the same
            # way Cache.__init__ would have (type(policy) is LRUPolicy
            # fails for the subclass).
            h.l1d._lru = None

        simulate(reuse_trace, post_build=swap)
        assert CountingLRU.on_hit_calls > 0

    def test_noprefetcher_subclass_gets_hook_calls(self, trace):
        _reset_counters()

        def swap(h):
            h.l1d_prefetcher.__class__ = CountingNoPrefetcher

        simulate(trace, post_build=swap)
        # pf_active must be True for a NoPrefetcher *subclass*: wrapped
        # or faulty prefetchers rely on their hooks being invoked.
        assert CountingNoPrefetcher.on_access_calls >= len(trace)

    def test_subclassed_run_matches_stock_run(self, trace):
        """The virtual path must be semantically identical to the fast
        path — subclass substitution changes dispatch, not results."""
        _reset_counters()

        def swap(h):
            h.l1d.__class__ = CountingCache
            h.l1d_mshr.__class__ = CountingMSHR
            h.pq.__class__ = CountingPQ

        stock = simulate(trace, l1d_prefetcher=make_prefetcher("berti"))
        subbed = simulate(trace, l1d_prefetcher=make_prefetcher("berti"),
                          post_build=swap)
        assert stock.to_dict() == subbed.to_dict()
