"""Aggregate metrics used throughout the evaluation.

The paper reports speedups as IPC ratios against an IP-stride baseline,
averaged with the geometric mean (§IV-A); coverage as demand MPKI at each
level; and accuracy with the artifact's resolved-prefetch formula.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.simulator.stats import SimResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive values defensively."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedups(
    results: Mapping[str, SimResult], baseline: SimResult
) -> Dict[str, float]:
    """Per-configuration IPC speedup over a baseline run."""
    return {name: r.speedup_over(baseline) for name, r in results.items()}


def geomean_speedup(
    per_trace: Mapping[str, Mapping[str, SimResult]],
    baseline_name: str = "ip_stride",
) -> Dict[str, float]:
    """Geometric-mean speedup per prefetcher across traces.

    ``per_trace`` maps trace name → (prefetcher name → result).
    """
    ratios: Dict[str, List[float]] = {}
    for trace_results in per_trace.values():
        base = trace_results.get(baseline_name)
        if base is None or base.ipc == 0:
            continue
        for name, result in trace_results.items():
            ratios.setdefault(name, []).append(result.speedup_over(base))
    return {name: geomean(vals) for name, vals in ratios.items()}


def average_mpki(
    results: Sequence[SimResult], level: str = "l1d"
) -> float:
    """Arithmetic mean demand MPKI at a level across traces (Fig. 11/13)."""
    attr = {"l1d": "l1d_mpki", "l2": "l2_mpki", "llc": "llc_mpki"}[level]
    if not results:
        return 0.0
    return sum(getattr(r, attr) for r in results) / len(results)


def average_accuracy(results: Sequence[SimResult]) -> float:
    """Mean L1D prefetch accuracy across traces (Fig. 1a/10)."""
    if not results:
        return 0.0
    return sum(r.pf_l1d.accuracy for r in results) / len(results)


def traffic_normalised(result: SimResult, baseline: SimResult) -> Dict[str, float]:
    """Per-link traffic relative to a no-prefetch baseline (Fig. 14)."""
    def ratio(a: int, b: int) -> float:
        return a / b if b else 0.0

    return {
        "l1d_l2": ratio(result.traffic_l1d_l2, baseline.traffic_l1d_l2),
        "l2_llc": ratio(result.traffic_l2_llc, baseline.traffic_l2_llc),
        "llc_dram": ratio(result.traffic_llc_dram, baseline.traffic_llc_dram),
    }
