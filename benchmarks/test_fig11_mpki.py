"""Figure 11: prefetch coverage as average demand MPKI at L1D, L2 and LLC
with each L1D prefetcher.

Paper reference: Berti and IPCP reduce L1D misses similarly (~33 % on
SPEC) and Berti eliminates the most L2/LLC misses thanks to its
L1D-directed line preloading.
"""

from common import gap_traces, once, run_matrix, save_report, spec_traces

from repro.analysis.metrics import average_mpki
from repro.analysis.report import format_table

NAMES = ["none", "ip_stride", "mlop", "ipcp", "berti"]


def test_fig11_demand_mpki(benchmark):
    def compute():
        rows = []
        for suite, traces in (("SPEC17", spec_traces()), ("GAP", gap_traces())):
            matrix = run_matrix(traces, NAMES)
            for name in NAMES:
                rs = [matrix[t.name][name] for t in traces]
                rows.append([
                    suite, name,
                    average_mpki(rs, "l1d"),
                    average_mpki(rs, "l2"),
                    average_mpki(rs, "llc"),
                ])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig11_mpki",
        format_table(
            ["suite", "prefetcher", "L1D MPKI", "L2 MPKI", "LLC MPKI"],
            rows,
            title=(
                "Figure 11 — demand MPKI per level with L1D prefetchers\n"
                "(paper: Berti eliminates the most L2/LLC misses)"
            ),
        ),
    )

    by = {(s, n): (l1, l2, llc) for s, n, l1, l2, llc in rows}
    for suite in ("SPEC17", "GAP"):
        none = by[(suite, "none")]
        berti = by[(suite, "berti")]
        # Prefetching reduces misses below no-prefetching at every level.
        assert berti[0] <= none[0]
        assert berti[2] <= none[2] * 1.05
    # Berti's LLC coverage is at least competitive with IPCP/MLOP (SPEC).
    llcs = {n: by[("SPEC17", n)][2] for n in ("mlop", "ipcp", "berti")}
    assert llcs["berti"] <= min(llcs["mlop"], llcs["ipcp"]) * 1.2
