"""Simulation sanitizer: runtime invariants, differential oracle,
crash-durable snapshots.

Three independent robustness layers over the simulation core:

* :mod:`repro.sanitizer.invariants` — SimSan, opt-in runtime invariant
  checking of caches, replacement metadata, MSHRs, the PQ, and Berti's
  hardware tables (``--sanitize``);
* :mod:`repro.sanitizer.reference` + :mod:`repro.sanitizer.lockstep` —
  a pure virtual-dispatch reference engine run in lockstep with the
  optimised engine (``repro sancheck``), localising any fast-path
  divergence to the first differing access;
* :mod:`repro.sanitizer.snapshot` — versioned, checksummed mid-trace
  snapshots with bit-identical resume (``--snapshot-every`` /
  ``--resume-from``).

See ``docs/sanitizer.md`` for the invariant catalogue and workflows.
"""

from repro.sanitizer.config import CHECK_FAMILIES, SanitizerConfig
from repro.sanitizer.invariants import (
    Sanitizer,
    attach_sanitizer,
    check_hierarchy,
    sanitizer_post_build,
)
from repro.sanitizer.lockstep import (
    LockstepReport,
    lockstep_engines,
    lockstep_multicore,
    lockstep_run,
    quick_trace,
)
from repro.sanitizer.reference import is_reference, to_reference
from repro.sanitizer.snapshot import (
    SnapshotState,
    latest_snapshot,
    load_snapshot,
    save_snapshot,
    simulate_with_snapshots,
    snapshot_path,
    trace_digest,
)

__all__ = [
    "CHECK_FAMILIES",
    "SanitizerConfig",
    "Sanitizer",
    "attach_sanitizer",
    "check_hierarchy",
    "sanitizer_post_build",
    "LockstepReport",
    "lockstep_engines",
    "lockstep_multicore",
    "lockstep_run",
    "quick_trace",
    "is_reference",
    "to_reference",
    "SnapshotState",
    "latest_snapshot",
    "load_snapshot",
    "save_snapshot",
    "simulate_with_snapshots",
    "snapshot_path",
    "trace_digest",
]
