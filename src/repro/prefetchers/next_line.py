"""Next-line prefetcher.

The simplest spatial prefetcher: on every access to line *X*, prefetch
*X + 1* (optionally a few lines ahead).  IPCP falls back to it for IPs it
cannot classify, and it is a useful sanity baseline for tests.
"""

from __future__ import annotations

from typing import List

from repro.prefetchers.base import (
    FILL_L1,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential lines on every access."""

    name = "next_line"
    level = "l1d"

    def __init__(self, degree: int = 1) -> None:
        self.degree = degree

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        return [
            PrefetchRequest(line=access.line + k, fill_level=FILL_L1)
            for k in range(1, self.degree + 1)
        ]

    def storage_bits(self) -> int:
        return 0  # stateless
