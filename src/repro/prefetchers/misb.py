"""Managed Irregular Stream Buffer (MISB) — Wu et al., ISCA 2019.

MISB is a *temporal* prefetcher: it linearises irregular access streams
into a **structural address space** (Jain & Lin's ISB idea) and manages
the physical↔structural mapping metadata with an on-chip cache backed —
in real hardware — by off-chip storage plus a Bloom filter to avoid
useless metadata fetches.

Training: consecutive L2 demand misses from the same stream are assigned
consecutive structural addresses, so temporally-correlated lines become
structural neighbours.  Prediction: on an access to a line with a known
structural address, prefetch the lines mapped to the next ``degree``
structural addresses.

We model the metadata budget as a bounded mapping cache (entries beyond
it are evicted FIFO — standing in for the off-chip metadata round trip
the paper's 32 KB metadata cache and 17 KB Bloom filter mitigate).
MISB's storage (≈98 KB with its off-chip-management structures) dwarfs
the spatial prefetchers'; the paper (§IV-H) finds it only pays off on
CloudSuite-style workloads whose irregular streams *recur*.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetchers.base import (
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)


class MISBPrefetcher(Prefetcher):
    """Temporal stream prefetcher over a structural address space."""

    name = "misb"
    level = "l2"

    STREAM_GAP = 256  # structural distance between independent streams

    def __init__(
        self,
        metadata_entries: int = 16384,
        degree: int = 2,
    ) -> None:
        self.metadata_entries = metadata_entries
        self.degree = degree
        # physical line -> structural address, and the inverse.
        self._ps: Dict[int, int] = {}
        self._sp: Dict[int, int] = {}
        # per-trigger-PC allocation cursor (streams are PC-localised).
        self._cursor: Dict[int, int] = {}
        self._next_stream_base = 0

    # ------------------------------------------------------------------

    def _assign(self, pc: int, line: int) -> int:
        """Give ``line`` a structural address on the PC's stream."""
        cursor = self._cursor.get(pc)
        if cursor is None or cursor % self.STREAM_GAP == self.STREAM_GAP - 1:
            cursor = self._next_stream_base
            self._next_stream_base += self.STREAM_GAP
        else:
            cursor += 1
        self._cursor[pc] = cursor
        if len(self._cursor) > 1024:
            del self._cursor[next(iter(self._cursor))]

        old = self._ps.get(line)
        if old is not None:
            self._sp.pop(old, None)
        self._ps[line] = cursor
        self._sp[cursor] = line
        if len(self._ps) > self.metadata_entries:
            evict_line, evict_sa = next(iter(self._ps.items()))
            del self._ps[evict_line]
            self._sp.pop(evict_sa, None)
        return cursor

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        line = access.line
        sa = self._ps.get(line)
        requests: List[PrefetchRequest] = []
        if sa is not None:
            # Known line: replay the structural stream ahead of it.
            for k in range(1, self.degree + 1):
                nxt = self._sp.get(sa + k)
                if nxt is not None and nxt != line:
                    requests.append(
                        PrefetchRequest(line=nxt, fill_level=FILL_L2)
                    )
            # Keep the stream cursor hot so the stream continues here.
            self._cursor[access.ip] = sa
        if not access.hit:
            if sa is None:
                self._assign(access.ip, line)
        return requests

    def storage_bits(self) -> int:
        # The paper quotes ~98 KB for MISB including the 32 KB metadata
        # cache and 17 KB Bloom filter; we charge the metadata cache
        # (entries x (26-bit line + 22-bit structural)) plus management.
        return self.metadata_entries * (26 + 22) + 17 * 1024 * 8

    def reset(self) -> None:
        self._ps.clear()
        self._sp.clear()
        self._cursor.clear()
        self._next_stream_base = 0
