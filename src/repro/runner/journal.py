"""JSONL checkpoint journal: crash-safe progress for long campaigns.

One line per finished job (completed, given up on, *or* quarantined),
appended and flushed immediately, so an interrupted suite loses at most
the jobs that were still in flight.  On ``--resume`` the journal is
replayed: jobs with a stored ``ok`` record return their deserialised
result without re-running; failed and quarantined records are retried
(the supervisor turns quarantined groups into half-open probes).

Line format — schema version 3 (all lines are independent JSON
objects)::

    {"schema": 3, "key": "<job key>", "status": "ok", "attempt": 1,
     "elapsed_seconds": 1.2, "worker_pid": 4242,
     "lease_id": "L2-7", "lineage": [{"event": "grant", ...}, ...],
     "result": {<SimResult.to_dict()>}}
    {"schema": 3, "key": "<job key>", "status": "failed",
     "kind": "timeout", "error_type": "JobTimeout", "message": "...",
     "attempt": 2, "elapsed_seconds": 30.1, "worker_pid": 4243,
     "context": {"trace": "...", "prefetcher": "..."}}
    {"schema": 3, "key": "<job key>", "status": "quarantined",
     "group": "<trace>|<prefetcher>", "failures": 3, "message": "..."}

Version 3 is purely *additive* over version 2: ``lease_id`` and
``lineage`` record which campaign-service lease (:mod:`repro.service`)
produced the outcome and its grant/renew/expiry history; both are
omitted for direct runner executions, so v2-shaped lines keep being
written where no lease was involved and v2 journals replay byte-for-
byte unchanged.  Version-1 journals (no ``schema`` field;
``attempts`` / ``elapsed`` instead of ``attempt`` /
``elapsed_seconds``; no ``worker_pid``) are also still read: missing
fields default, so pre-supervisor campaigns resume unchanged.

The *last* record for a key wins, so re-runs simply append.  Truncated
or corrupt lines (a worker killed mid-write) are skipped, not fatal.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.errors import ResourceError
from repro.runner.jobs import CompletedRun, QuarantinedRun, RunOutcome
from repro.simulator.stats import SimResult

#: Bumped when the record shape changes; readers accept all versions.
SCHEMA_VERSION = 3


class Journal:
    """Append-only JSONL record of job outcomes.

    ``guard`` is an optional pre-write check (the supervisor installs a
    free-disk probe): it returns a human-readable reason to refuse the
    write, or ``None`` to proceed.  A refused append raises
    :class:`~repro.errors.ResourceError` *before* any bytes are written,
    so the journal is never half-updated by a full disk — the runner
    buffers the outcome and flushes it once the guard clears.
    """

    def __init__(
        self,
        path: Union[str, Path],
        guard: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        self.path = Path(path)
        self.guard = guard

    def load(self) -> Dict[str, dict]:
        """Parse the journal; returns the last record per job key."""
        records: Dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted run
                key = rec.get("key")
                if key:
                    records[key] = rec
        return records

    def append(self, outcome: RunOutcome) -> None:
        """Record one outcome, durable on disk before returning.

        Write-temp-then-rename: the journal's existing bytes plus the
        new line go to a temp file in the same directory, are fsynced,
        and replace the journal atomically.  A crash at any point leaves
        either the old journal or the new one — never a torn line in the
        middle of the file (a torn *tail* from pre-hardening journals is
        still tolerated by :meth:`load`).  Journals are one line per
        finished job, so the rewrite is a few kilobytes per append.
        """
        if self.guard is not None:
            reason = self.guard()
            if reason:
                raise ResourceError(
                    f"journal append refused: {reason}", field="journal"
                )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            existing = self.path.read_bytes()
        except FileNotFoundError:
            existing = b""
        if existing and not existing.endswith(b"\n"):
            existing += b"\n"  # heal a torn tail so the new record parses
        line = (json.dumps(self._encode(outcome)) + "\n").encode("utf-8")
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(existing + line)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        try:
            dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    @staticmethod
    def _encode(outcome: RunOutcome) -> dict:
        if isinstance(outcome, QuarantinedRun):
            return {
                "schema": SCHEMA_VERSION,
                "key": outcome.key,
                "status": "quarantined",
                "group": outcome.group,
                "failures": outcome.failures,
                "message": outcome.message,
            }
        if outcome.ok:
            result = outcome.result
            rec = {
                "schema": SCHEMA_VERSION,
                "key": outcome.key,
                "status": "ok",
                "attempt": outcome.attempts,
                "elapsed_seconds": round(outcome.elapsed, 4),
                "worker_pid": outcome.worker_pid,
                "result": result.to_dict()
                if isinstance(result, SimResult) else result,
            }
        else:
            rec = {
                "schema": SCHEMA_VERSION,
                "key": outcome.key,
                "status": "failed",
                "kind": outcome.kind,
                "error_type": outcome.error_type,
                "message": outcome.message,
                "attempt": outcome.attempts,
                "elapsed_seconds": round(outcome.elapsed, 4),
                "worker_pid": outcome.worker_pid,
                "context": outcome.context,
            }
        # v3 additive lease provenance: only written when a campaign-
        # service lease actually produced the outcome, so direct-runner
        # journals keep their v2 line shape.
        if getattr(outcome, "lease_id", None):
            rec["lease_id"] = outcome.lease_id
        if getattr(outcome, "lineage", None):
            rec["lineage"] = outcome.lineage
        return rec

    @staticmethod
    def _attempts(rec: dict) -> int:
        return rec.get("attempt", rec.get("attempts", 1))

    @staticmethod
    def _elapsed(rec: dict) -> float:
        return rec.get("elapsed_seconds", rec.get("elapsed", 0.0))

    @staticmethod
    def decode_completed(rec: dict) -> Optional[CompletedRun]:
        """Rebuild a :class:`CompletedRun` from an ``ok`` journal record.

        Handles every schema version: v1 records use ``attempts`` /
        ``elapsed`` and carry no ``worker_pid``; v2 records carry no
        lease provenance.  All missing fields default.
        """
        if rec.get("status") != "ok":
            return None
        result = rec.get("result")
        if isinstance(result, dict) and "trace_name" in result:
            result = SimResult.from_dict(result)
        return CompletedRun(
            key=rec["key"],
            result=result,
            attempts=Journal._attempts(rec),
            elapsed=Journal._elapsed(rec),
            from_journal=True,
            worker_pid=rec.get("worker_pid"),
            lease_id=rec.get("lease_id"),
            lineage=rec.get("lineage") or [],
        )

    @staticmethod
    def decode_quarantined(rec: dict) -> Optional[QuarantinedRun]:
        """Rebuild a :class:`QuarantinedRun` from a journal record."""
        if rec.get("status") != "quarantined":
            return None
        return QuarantinedRun(
            key=rec["key"],
            group=rec.get("group", rec["key"]),
            failures=rec.get("failures", 0),
            message=rec.get("message", ""),
            from_journal=True,
        )
