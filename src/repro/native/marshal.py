"""State marshalling between the Python simulator objects and the C kernel.

The native backend runs one *span* at a time: :class:`NativeState`
exports the full mutable simulation state into flat ``int64``/``double``
buffers, the C kernel executes the span over those buffers, and the
state is imported back into the very same Python objects before the
span runner returns.  Python therefore remains the source of truth at
every span boundary — snapshots, warmup resets, lockstep digests and
engine switches (demotion) all operate on ordinary hierarchy objects
and never need to know a C kernel ran the span.

Layout contract
---------------

``REGISTERS`` (int64 scalars), ``FREGS`` (double scalars) and ``BUFS``
(buffer pointers) are the *single* authoritative layout definition:
:mod:`repro.native.build` generates a C header mapping each name to its
index (``R_<NAME>``, ``FR_<NAME>``, ``B_<NAME>``), so Python and C can
never disagree on an offset — adding a field here re-keys the kernel
hash and forces a rebuild.

Three marshalling classes of state:

* **zero-copy** — the trace columns and the Berti history-table rings
  (``array('q')`` columns) are passed by pointer and mutated in place;
* **span-delta counters** — exactly the batched engine's flush list
  accumulates in registers zeroed at span start and added back on
  success only (a crashed span discards them, like the batched loop);
* **absolute counters and structures** — everything else round-trips
  by value: exported at span start, imported unconditionally at span
  end (even on error, matching the batched loop's in-place mutations).

Dict-shaped indexes (``Cache._where``, ``MSHR._entries``, TLB ``_map``,
history ``_chains``, delta-table ``_by_delta``/``_by_tag``) are rebuilt
from the flat columns at import time; their *insertion order* differs
from the classic engine's, which is why those classes canonicalise dict
order in ``__getstate__`` — snapshot bytes stay backend-independent.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Any, Dict, List, Tuple

from repro.cpu.core_model import CoreModel
from repro.memory.cache import Cache, CacheLine
from repro.memory.hierarchy import LATENCY_FIELD_BITS, Hierarchy
from repro.memory.mshr import MSHREntry
from repro.memory.replacement import DRRIPPolicy, LRUPolicy, SRRIPPolicy

try:  # numpy is a declared dependency, but the fallback keeps us honest
    import numpy as _np
except Exception:  # pragma: no cover - exercised via monkeypatching
    _np = None

__all__ = ["REGISTERS", "FREGS", "BUFS", "NativeState", "layout_digest"]

# Replacement-policy kinds understood by the kernel.
POL_LRU = 0
POL_SRRIP = 1
POL_DRRIP = 2

# CacheLine.pf_origin encoding.
ORIGINS = ("", "l1d", "l2")
_ORIGIN_CODE = {"": 0, "l1d": 1, "l2": 2}

_CACHE_PREFIXES = ("L1", "L2", "LL")
_MSHR_PREFIXES = ("M1", "M2")
_TLB_PREFIXES = ("DT", "ST")


def _cache_regs(p: str) -> Tuple[str, ...]:
    return (
        f"{p}_SETS", f"{p}_WAYS", f"{p}_LAT", f"{p}_POL", f"{p}_PSEL",
        f"{p}_PF_FILLS", f"{p}_DEM_FILLS", f"{p}_USELESS", f"{p}_WB",
    )


def _mshr_regs(p: str) -> Tuple[str, ...]:
    return (
        f"{p}_SIZE", f"{p}_COUNT", f"{p}_MINREADY", f"{p}_LASTEXP",
        f"{p}_ALLOCS", f"{p}_FULLREJ",
    )


def _tlb_regs(p: str) -> Tuple[str, ...]:
    return (f"{p}_NSETS", f"{p}_WAYS")


#: Span-delta counters: EXACTLY the batched engine's additive flush
#: list, in its order.  Zeroed at span start; added on success only.
DELTA_REGS = (
    "D_DT_ACC", "D_DT_HIT",
    "D_L1_ACC", "D_L1_HIT", "D_L1_MISS", "D_L1_USEFUL", "D_L1_LATE",
    "D_L2_ACC", "D_L2_HIT", "D_L2_MISS", "D_L2_USEFUL",
    "D_LLC_ACC", "D_LLC_HIT", "D_LLC_MISS", "D_LLC_USEFUL",
    "D_H_LLC_ACC", "D_H_LLC_MISS", "D_H_DRAM",
    "D_T12_DEM", "D_T12_PF", "D_T2L_DEM", "D_T2L_PF",
    "D_TLD_DEM", "D_TLD_PF",
    "D_PF_SUGG", "D_PF_ISSUED", "D_PF_FILLS",
    "D_PF_USEFUL", "D_PF_LATE", "D_PF_PROMOTED",
    "D_PF_DTRANS", "D_PF_DDUP", "D_PF_DQ", "D_PF_DM",
    "D_PF2_USEFUL", "D_PF2_LATE", "D_PF2_PROMOTED",
    "D_STLB_PROBES", "D_STLB_HITS",
    "D_M1_MERGES", "D_M2_MERGES",
    "D_CROSS",
)

REGISTERS: Tuple[str, ...] = (
    # Span arguments and error channel.
    "LO", "HI", "KERNEL",
    "ERR", "ERR_A", "ERR_B", "ERR_C", "ERR_D",
    # Caches.
    *(_cache_regs(p)[i] for p in _CACHE_PREFIXES
      for i in range(len(_cache_regs(p)))),
    # MSHRs.
    *(_mshr_regs(p)[i] for p in _MSHR_PREFIXES
      for i in range(len(_mshr_regs(p)))),
    # TLBs + translation.
    *(_tlb_regs(p)[i] for p in _TLB_PREFIXES
      for i in range(len(_tlb_regs(p)))),
    "DT_LAT", "MISS_TRANS_LAT", "WALK_LAT",
    "DT_PPROBES", "DT_PPROBE_HITS", "ST_ACC", "ST_HITS",
    # MMU.
    "MMU_NEXT_PPAGE", "MMU_WALKS", "MMU_DROPPED",
    "HASH_CAP", "WALKLOG_LEN",
    # DRAM.
    "DR_BANKS", "DR_LPR", "DR_TRP", "DR_TRCD", "DR_TCAS",
    "DR_WQ_SIZE", "DR_PENDW_LEN",
    "DR_READS", "DR_WRITES", "DR_ROWH", "DR_ROWM", "DR_ROWC",
    "DR_LAT_TOTAL",
    # Core model.
    "C_INSTR", "ROB_SIZE", "ISSUE_WIDTH", "RETIRE_WIDTH",
    "DEP_WINDOW", "WIN_LEN", "LOADS_LEN", "LOADS_POS", "WIN_CAP",
    # PQ.
    "PQ_SIZE", "PQ_LEN",
    # Dual-channel pf_stats["l2"] useful/late (see module docstring) and
    # the absolute counters bumped by fills/evictions/writebacks.
    "CREDIT2_USEFUL", "CREDIT2_LATE",
    "PF1_USELESS", "PF2_USELESS",
    "T12_WB", "T2L_WB", "TLD_WB",
    # Berti history table.
    "H_SETS", "H_WAYS", "H_INSERTS", "H_SEARCHES",
    "TS_MASK", "LINE_MASK", "HTAG_MASK",
    # Berti delta table + config.
    "E_COUNT", "E_PER", "COUNTER_MAX", "MAX_DSEARCH", "MAX_PF_DELTAS",
    "LAT_MASK", "COV_CAP", "DTAG_MASK", "WARM_MIN", "CROSS_OK",
    "DELTA_LO", "DELTA_HI",
    "HEAP_CAP", "DT_FIFO_CLOCK", "DT_FIFO_PTR",
    "DT_PHASES", "DT_DISCARDED",
    *DELTA_REGS,
)

FREGS: Tuple[str, ...] = (
    "F_FRONTEND", "F_RETIRE", "F_ROB_HEAD",
    "F_ISSUE_INCR", "F_RETIRE_INCR", "F_ISSUE_W", "F_RETIRE_W",
    "F_BUSFREE", "F_BURST", "F_WQ_THRESH",
    "F_PERIOD", "F_WATERMARK",
    "F_HIGH", "F_MEDIUM", "F_REPL", "F_WARM_WM",
)

_CACHE_BUF_FIELDS = (
    "TAG", "VALID", "DIRTY", "PREF", "ARR", "PFLAT", "IP", "VLINE",
    "ORG", "MAT", "POLC", "POLA", "MT",
)
_MSHR_BUF_FIELDS = ("LINE", "ALLOC", "READY", "ISPF", "IP", "VLINE", "MERGED")
_TLB_BUF_FIELDS = ("VP", "PP", "LEN")

BUFS: Tuple[str, ...] = (
    "T_IPS", "T_ADDRS", "T_WRITES", "T_GAPS", "T_DEPS",
    "T_VLINES", "T_VPAGES",
    *(f"{p}_{f}" for p in _CACHE_PREFIXES for f in _CACHE_BUF_FIELDS),
    *(f"{p}_{f}" for p in _MSHR_PREFIXES for f in _MSHR_BUF_FIELDS),
    *(f"{p}_{f}" for p in _TLB_PREFIXES for f in _TLB_BUF_FIELDS),
    "HASH_K", "HASH_V", "WALK_VP", "WALK_PP",
    "BANK_ROW", "BANK_BUSY", "PENDW",
    "WIN_K", "WIN_RET", "LOADS",
    "PQ_ST",
    "H_TAGS", "H_LINES", "H_TSS", "H_ORDERS", "H_CLOCK", "H_PTR",
    "E_VALID", "E_TAG", "E_CTR", "E_ORDER", "E_WARMED", "E_SCOUNT",
    "S_DELTA", "S_COV", "S_STATUS", "HEAP", "HEAP_LEN",
    "SCRATCH",
)

RIX: Dict[str, int] = {name: i for i, name in enumerate(REGISTERS)}
FIX: Dict[str, int] = {name: i for i, name in enumerate(FREGS)}
BIX: Dict[str, int] = {name: i for i, name in enumerate(BUFS)}


def layout_digest() -> str:
    """A short hash of the layout, folded into the kernel cache key."""
    import hashlib

    blob = "|".join(REGISTERS) + "#" + "|".join(FREGS) + "#" + "|".join(BUFS)
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:16]


def decoded_columns(trace) -> Tuple[Any, Any]:
    """addr→(vline, vpage) derived columns for the whole trace.

    Delegates to :meth:`repro.workloads.trace.Trace.decoded_columns`
    (numpy-vectorized, cached on the trace), so the batched fused loop
    and the native span kernel share one decode by pointer.
    """
    return trace.decoded_columns()


def _ptr_of(buf: Any) -> int:
    """Raw data pointer of an array('q'/'d') or numpy array (0 if empty)."""
    if buf is None:
        return 0
    if _np is not None and isinstance(buf, _np.ndarray):
        return buf.ctypes.data if buf.size else 0
    return buf.buffer_info()[0] if len(buf) else 0


class NativeState:
    """Owns the flat buffers for one (trace, hierarchy, core) binding."""

    def __init__(self, trace, hierarchy: Hierarchy, core: CoreModel) -> None:
        self.h = hierarchy
        self.core = core
        self.trace = trace
        self.R = array("q", bytes(8 * len(REGISTERS)))
        self.F = array("d", bytes(8 * len(FREGS)))
        # Buffer objects by name; pointers are refreshed per span (the
        # history arrays are rebound by HistoryTable.reset()).
        self.bufs: Dict[str, Any] = {name: None for name in BUFS}
        self._kern = None
        self._win_cap = 0
        # Cache-array sync protocol: Python-side cache objects and the
        # flat set arrays stay pointwise equal between spans, so export
        # only rewrites them after mark_stale() (first span, or a
        # demoted span mutated the Python objects behind our back), and
        # import only reads sets the kernel flagged touched (mat == 2).
        self._cache_stale = True

        ips, addrs, writes, gaps, deps = trace.columns()
        vlines, vpages = decoded_columns(trace)
        b = self.bufs
        b["T_IPS"], b["T_ADDRS"], b["T_WRITES"] = ips, addrs, writes
        b["T_GAPS"], b["T_DEPS"] = gaps, deps
        b["T_VLINES"], b["T_VPAGES"] = vlines, vpages

        assert LATENCY_FIELD_BITS == 12, "kernel hardcodes the latency field"

        self._alloc_static()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _alloc_static(self) -> None:
        h, b = self.h, self.bufs
        for p, cache in zip(_CACHE_PREFIXES, (h.l1d, h.l2, h.llc)):
            n = cache.num_sets * cache.ways
            for f in ("TAG", "VALID", "DIRTY", "PREF", "ARR", "PFLAT",
                      "IP", "VLINE", "ORG", "POLA"):
                b[f"{p}_{f}"] = array("q", bytes(8 * n))
            b[f"{p}_MAT"] = array("q", bytes(8 * cache.num_sets))
            b[f"{p}_POLC"] = array("q", bytes(8 * cache.num_sets))
            if type(cache.policy) is DRRIPPolicy:
                b[f"{p}_MT"] = array("q", bytes(8 * 625))
        for p, mshr in zip(_MSHR_PREFIXES, (h.l1d_mshr, h.l2_mshr)):
            for f in _MSHR_BUF_FIELDS:
                b[f"{p}_{f}"] = array("q", bytes(8 * max(1, mshr.size)))
        for p, tlb in zip(_TLB_PREFIXES, (h.mmu.dtlb, h.mmu.stlb)):
            row = tlb.ways + 1  # insert transiently exceeds ways
            n = tlb.num_sets * row
            b[f"{p}_VP"] = array("q", bytes(8 * n))
            b[f"{p}_PP"] = array("q", bytes(8 * n))
            b[f"{p}_LEN"] = array("q", bytes(8 * tlb.num_sets))
        cfg = h.dram.config
        b["BANK_ROW"] = array("q", bytes(8 * cfg.banks))
        b["BANK_BUSY"] = array("q", bytes(8 * cfg.banks))
        b["PENDW"] = array("q", bytes(8 * (cfg.write_queue + 2)))
        b["LOADS"] = array("d", bytes(8 * self.core.config.dependency_window))
        b["PQ_ST"] = array("d", bytes(8 * max(1, h.pq.size)))

        kern = h._l1d_kernel
        self._kern = kern
        if kern is not None:
            kcfg = kern.config
            e = kcfg.delta_table_entries
            per = kcfg.deltas_per_entry
            for f in ("E_VALID", "E_TAG", "E_CTR", "E_ORDER", "E_WARMED",
                      "E_SCOUNT", "HEAP_LEN"):
                b[f] = array("q", bytes(8 * e))
            for f in ("S_DELTA", "S_COV", "S_STATUS"):
                b[f] = array("q", bytes(8 * e * per))
            b["SCRATCH"] = array("q", bytes(8 * max(1, kcfg.max_deltas_per_search)))
            # Between phase closes an entry's heap gains at most
            # counter_max * max_deltas_per_search pairs on top of what a
            # close leaves (<= per_entry); sized per span in begin_span.
            self._heap_slack = (kcfg.counter_max * kcfg.max_deltas_per_search
                                + per + 8)

    # ------------------------------------------------------------------
    # Export (Python -> flat buffers)
    # ------------------------------------------------------------------

    def begin_span(self, lo: int, hi: int) -> None:
        R, F, b, h = self.R, self.F, self.bufs, self.h
        for name in DELTA_REGS:
            R[RIX[name]] = 0
        R[RIX["LO"]], R[RIX["HI"]] = lo, hi
        R[RIX["ERR"]] = 0
        R[RIX["KERNEL"]] = 0 if self._kern is None else 1

        self._export_caches()
        self._export_mshrs()
        self._export_tlbs()
        self._export_mmu(hi - lo)
        self._export_dram()
        self._export_core(hi - lo)
        self._export_pq()
        if self._kern is not None:
            self._export_berti()

        F[FIX["F_WATERMARK"]] = h._l1d_kern_watermark
        R[RIX["CROSS_OK"]] = 1 if h._l1d_kern_cross_page else 0
        pfs2 = h.pf_stats["l2"]
        R[RIX["CREDIT2_USEFUL"]] = pfs2.useful
        R[RIX["CREDIT2_LATE"]] = pfs2.late
        R[RIX["PF1_USELESS"]] = h._pf_l1d_stats.useless
        R[RIX["PF2_USELESS"]] = pfs2.useless
        R[RIX["T12_WB"]] = h.traffic_l1d_l2.writeback
        R[RIX["T2L_WB"]] = h.traffic_l2_llc.writeback
        R[RIX["TLD_WB"]] = h.traffic_llc_dram.writeback

    def mark_stale(self) -> None:
        """Python-side cache objects were mutated outside the kernel
        (a demoted span ran); the next span must re-export every set."""
        self._cache_stale = True

    def _export_caches(self) -> None:
        R, F, b = self.R, self.F, self.bufs
        h = self.h
        stale = self._cache_stale
        for p, cache in zip(_CACHE_PREFIXES, (h.l1d, h.l2, h.llc)):
            ways = cache.ways
            R[RIX[f"{p}_SETS"]] = cache.num_sets
            R[RIX[f"{p}_WAYS"]] = ways
            R[RIX[f"{p}_LAT"]] = cache.latency
            pol = cache.policy
            if type(pol) is LRUPolicy:
                R[RIX[f"{p}_POL"]] = POL_LRU
                pol_clock, pol_rows = pol._clock, pol._age
            else:
                R[RIX[f"{p}_POL"]] = (
                    POL_DRRIP if type(pol) is DRRIPPolicy else POL_SRRIP
                )
                pol_clock, pol_rows = None, pol._rrpv
            if type(pol) is DRRIPPolicy:
                R[RIX[f"{p}_PSEL"]] = pol._psel
                if stale:
                    mt = b[f"{p}_MT"]
                    state = pol._rng.getstate()[1]
                    for i in range(625):
                        mt[i] = state[i]
            st = cache.stats
            R[RIX[f"{p}_PF_FILLS"]] = st.prefetch_fills
            R[RIX[f"{p}_DEM_FILLS"]] = st.demand_fills
            R[RIX[f"{p}_USELESS"]] = st.useless_prefetches
            R[RIX[f"{p}_WB"]] = st.writebacks
            if not stale:
                # Set arrays are pointwise equal to the Python objects
                # (kept in sync by the touched-set import), skip them.
                continue
            tags = b[f"{p}_TAG"]
            valid = b[f"{p}_VALID"]
            dirty = b[f"{p}_DIRTY"]
            pref = b[f"{p}_PREF"]
            arr = b[f"{p}_ARR"]
            pflat = b[f"{p}_PFLAT"]
            ipc = b[f"{p}_IP"]
            vlc = b[f"{p}_VLINE"]
            org = b[f"{p}_ORG"]
            mat = b[f"{p}_MAT"]
            polc = b[f"{p}_POLC"]
            pola = b[f"{p}_POLA"]
            ocode = _ORIGIN_CODE
            for s, row in enumerate(cache.sets):
                if not row:
                    mat[s] = 0
                    continue
                mat[s] = 1
                base = s * ways
                for w, cl in enumerate(row):
                    i = base + w
                    tags[i] = cl.tag
                    valid[i] = 1 if cl.valid else 0
                    dirty[i] = 1 if cl.dirty else 0
                    pref[i] = 1 if cl.prefetched else 0
                    arr[i] = cl.arrival_cycle
                    pflat[i] = cl.pf_latency
                    ipc[i] = cl.ip
                    vlc[i] = cl.vline
                    org[i] = ocode[cl.pf_origin]
                prow = pol_rows[s]
                for w in range(ways):
                    pola[base + w] = prow[w]
                if pol_clock is not None:
                    polc[s] = pol_clock[s]
        if stale:
            self._cache_stale = False

    def _export_mshrs(self) -> None:
        R, b, h = self.R, self.bufs, self.h
        for p, m in zip(_MSHR_PREFIXES, (h.l1d_mshr, h.l2_mshr)):
            R[RIX[f"{p}_SIZE"]] = m.size
            R[RIX[f"{p}_COUNT"]] = len(m._entries)
            R[RIX[f"{p}_MINREADY"]] = m._min_ready
            R[RIX[f"{p}_LASTEXP"]] = m._last_expire
            R[RIX[f"{p}_ALLOCS"]] = m.allocations
            R[RIX[f"{p}_FULLREJ"]] = m.full_rejections
            line = b[f"{p}_LINE"]
            alloc = b[f"{p}_ALLOC"]
            ready = b[f"{p}_READY"]
            ispf = b[f"{p}_ISPF"]
            ipc = b[f"{p}_IP"]
            vlc = b[f"{p}_VLINE"]
            merged = b[f"{p}_MERGED"]
            for i, e in enumerate(m._entries.values()):
                line[i] = e.line
                alloc[i] = e.alloc_cycle
                ready[i] = e.ready_cycle
                ispf[i] = 1 if e.is_prefetch else 0
                ipc[i] = e.ip
                vlc[i] = e.vline
                merged[i] = e.merged_demands

    def _export_tlbs(self) -> None:
        R, b, h = self.R, self.bufs, self.h
        mmu = h.mmu
        for p, tlb in zip(_TLB_PREFIXES, (mmu.dtlb, mmu.stlb)):
            R[RIX[f"{p}_NSETS"]] = tlb.num_sets
            R[RIX[f"{p}_WAYS"]] = tlb.ways
            row = tlb.ways + 1
            vp, pp, ln = b[f"{p}_VP"], b[f"{p}_PP"], b[f"{p}_LEN"]
            for s, entries in enumerate(tlb._sets):
                ln[s] = len(entries)
                base = s * row
                for i, (v, ph) in enumerate(entries):
                    vp[base + i] = v
                    pp[base + i] = ph
        R[RIX["DT_LAT"]] = mmu.dtlb.latency
        R[RIX["MISS_TRANS_LAT"]] = mmu.dtlb.latency + mmu.stlb.latency
        R[RIX["WALK_LAT"]] = mmu.page_walk_latency
        R[RIX["DT_PPROBES"]] = mmu.dtlb.stats.prefetch_probes
        R[RIX["DT_PPROBE_HITS"]] = mmu.dtlb.stats.prefetch_probe_hits
        R[RIX["ST_ACC"]] = mmu.stlb.stats.accesses
        R[RIX["ST_HITS"]] = mmu.stlb.stats.hits

    def _export_mmu(self, span_len: int) -> None:
        R, b, h = self.R, self.bufs, self.h
        mmu = h.mmu
        table = mmu._page_table
        need = 2 * (len(table) + span_len + 16)
        cap = 64
        while cap < need:
            cap <<= 1
        hk = b.get("HASH_K")
        if hk is None or len(hk) < cap:
            b["HASH_K"] = hk = array("q", bytes(8 * cap))
            b["HASH_V"] = array("q", bytes(8 * cap))
        else:
            cap = len(hk)
        hv = b["HASH_V"]
        for i in range(cap):
            hk[i] = -1
        mask = cap - 1
        for vp, ppage in table.items():
            i = (vp * 0x9E3779B97F4A7C15 >> 32) & mask
            while hk[i] != -1:
                i = (i + 1) & mask
            hk[i] = vp
            hv[i] = ppage
        R[RIX["HASH_CAP"]] = cap
        wl = b.get("WALK_VP")
        if wl is None or len(wl) < span_len + 1:
            b["WALK_VP"] = array("q", bytes(8 * (span_len + 1)))
            b["WALK_PP"] = array("q", bytes(8 * (span_len + 1)))
        R[RIX["WALKLOG_LEN"]] = 0
        R[RIX["MMU_NEXT_PPAGE"]] = mmu._next_ppage
        R[RIX["MMU_WALKS"]] = mmu.stats.walks
        R[RIX["MMU_DROPPED"]] = mmu.stats.dropped_prefetch_translations

    def _export_dram(self) -> None:
        R, F, b, h = self.R, self.F, self.bufs, self.h
        dram = h.dram
        cfg = dram.config
        R[RIX["DR_BANKS"]] = cfg.banks
        R[RIX["DR_LPR"]] = dram._lines_per_row
        R[RIX["DR_TRP"]] = cfg.trp_cycles
        R[RIX["DR_TRCD"]] = cfg.trcd_cycles
        R[RIX["DR_TCAS"]] = cfg.tcas_cycles
        R[RIX["DR_WQ_SIZE"]] = cfg.write_queue
        F[FIX["F_WQ_THRESH"]] = cfg.write_queue * cfg.write_watermark
        F[FIX["F_BURST"]] = dram._burst
        F[FIX["F_BUSFREE"]] = dram._bus_free
        brow, bbusy = b["BANK_ROW"], b["BANK_BUSY"]
        for i, bank in enumerate(dram._banks):
            brow[i] = bank.open_row
            bbusy[i] = bank.busy_until
        pendw = b["PENDW"]
        for i, pl in enumerate(dram._pending_writes):
            pendw[i] = pl
        R[RIX["DR_PENDW_LEN"]] = len(dram._pending_writes)
        st = dram.stats
        R[RIX["DR_READS"]] = st.reads
        R[RIX["DR_WRITES"]] = st.writes
        R[RIX["DR_ROWH"]] = st.row_hits
        R[RIX["DR_ROWM"]] = st.row_misses
        R[RIX["DR_ROWC"]] = st.row_conflicts
        R[RIX["DR_LAT_TOTAL"]] = st.total_read_latency

    def _export_core(self, span_len: int) -> None:
        R, F, b = self.R, self.F, self.bufs
        core = self.core
        R[RIX["C_INSTR"]] = core._instr
        R[RIX["ROB_SIZE"]] = core._rob_size
        R[RIX["ISSUE_WIDTH"]] = core.config.issue_width
        R[RIX["RETIRE_WIDTH"]] = core.config.retire_width
        R[RIX["DEP_WINDOW"]] = core.config.dependency_window
        F[FIX["F_FRONTEND"]] = core._frontend
        F[FIX["F_RETIRE"]] = core._retire_frontier
        F[FIX["F_ROB_HEAD"]] = core._rob_head_retire
        F[FIX["F_ISSUE_INCR"]] = core._issue_incr
        F[FIX["F_RETIRE_INCR"]] = core._retire_incr
        F[FIX["F_ISSUE_W"]] = float(core.config.issue_width)
        F[FIX["F_RETIRE_W"]] = float(core.config.retire_width)
        win = core._window
        cap = len(win) + span_len + 1
        wk = b.get("WIN_K")
        if wk is None or len(wk) < cap:
            b["WIN_K"] = array("q", bytes(8 * cap))
            b["WIN_RET"] = array("d", bytes(8 * cap))
        wk, wr = b["WIN_K"], b["WIN_RET"]
        for i, (k, ret) in enumerate(win):
            wk[i] = k
            wr[i] = ret
        R[RIX["WIN_LEN"]] = len(win)
        R[RIX["WIN_CAP"]] = len(wk)
        loads = b["LOADS"]
        lc = self.core._load_completions
        for i, v in enumerate(lc):
            loads[i] = v
        R[RIX["LOADS_LEN"]] = len(lc)
        R[RIX["LOADS_POS"]] = 0

    def _export_pq(self) -> None:
        R, F, b, h = self.R, self.F, self.bufs, self.h
        pq = h.pq
        R[RIX["PQ_SIZE"]] = pq.size
        F[FIX["F_PERIOD"]] = 1.0 / pq.rate
        st = b["PQ_ST"]
        for i, v in enumerate(pq._service_times):
            st[i] = v
        R[RIX["PQ_LEN"]] = len(pq._service_times)

    def _export_berti(self) -> None:
        R, F, b = self.R, self.F, self.bufs
        kern = self._kern
        hist = kern.history
        cfg = kern.config
        # History rings: zero-copy — refresh pointers each span (reset()
        # rebinds new arrays).
        b["H_TAGS"] = hist._tags
        b["H_LINES"] = hist._lines
        b["H_TSS"] = hist._tss
        b["H_ORDERS"] = hist._orders
        b["H_CLOCK"] = hist._fifo_clock
        b["H_PTR"] = hist._fifo_ptr
        R[RIX["H_SETS"]] = cfg.history_sets
        R[RIX["H_WAYS"]] = cfg.history_ways
        R[RIX["H_INSERTS"]] = hist.inserts
        R[RIX["H_SEARCHES"]] = hist.searches
        R[RIX["TS_MASK"]] = hist._ts_mask
        R[RIX["LINE_MASK"]] = hist._line_mask
        R[RIX["HTAG_MASK"]] = hist._tag_mask

        dt = kern.deltas
        entries = cfg.delta_table_entries
        per = cfg.deltas_per_entry
        R[RIX["E_COUNT"]] = entries
        R[RIX["E_PER"]] = per
        R[RIX["COUNTER_MAX"]] = cfg.counter_max
        R[RIX["MAX_DSEARCH"]] = cfg.max_deltas_per_search
        R[RIX["MAX_PF_DELTAS"]] = cfg.max_prefetch_deltas
        R[RIX["LAT_MASK"]] = kern._latency_mask
        R[RIX["COV_CAP"]] = dt._coverage_cap
        R[RIX["DTAG_MASK"]] = dt._tag_mask
        R[RIX["WARM_MIN"]] = cfg.warmup_min_searches
        R[RIX["DELTA_LO"]] = -(1 << (cfg.delta_bits - 1))
        R[RIX["DELTA_HI"]] = (1 << (cfg.delta_bits - 1)) - 1
        R[RIX["DT_FIFO_CLOCK"]] = dt._fifo_clock
        R[RIX["DT_FIFO_PTR"]] = dt._fifo_ptr
        R[RIX["DT_PHASES"]] = dt.phase_completions
        R[RIX["DT_DISCARDED"]] = dt.discarded_deltas
        F[FIX["F_HIGH"]] = cfg.high_watermark * cfg.counter_max
        F[FIX["F_MEDIUM"]] = cfg.medium_watermark * cfg.counter_max
        F[FIX["F_REPL"]] = cfg.repl_watermark * cfg.counter_max
        F[FIX["F_WARM_WM"]] = cfg.warmup_watermark

        ev, et = b["E_VALID"], b["E_TAG"]
        ec, eo = b["E_CTR"], b["E_ORDER"]
        ew, es = b["E_WARMED"], b["E_SCOUNT"]
        sd, sc, ss = b["S_DELTA"], b["S_COV"], b["S_STATUS"]
        for e in range(entries):
            ev[e] = 1 if dt._valid[e] else 0
            et[e] = dt._tags[e]
            ec[e] = dt._counters[e]
            eo[e] = dt._orders[e]
            ew[e] = 1 if dt._warmed[e] else 0
            es[e] = dt._slot_count[e]
            base = e * per
            drow, crow, strow = (dt._slot_delta[e], dt._slot_cov[e],
                                 dt._slot_status[e])
            for i in range(per):
                sd[base + i] = drow[i]
                sc[base + i] = crow[i]
                ss[base + i] = strow[i]
        # Heaps: verbatim pair arrays (the kernel implements CPython's
        # heapq algorithms, so the final array layout round-trips).
        heap_cap = max(
            (max((len(hp) for hp in dt._evict_heap), default=0)
             + self._heap_slack),
            self._heap_slack,
        )
        hb = b.get("HEAP")
        if hb is None or len(hb) < entries * heap_cap * 2:
            b["HEAP"] = hb = array("q", bytes(8 * entries * heap_cap * 2))
        else:
            heap_cap = len(hb) // (entries * 2)
        R[RIX["HEAP_CAP"]] = heap_cap
        hl = b["HEAP_LEN"]
        for e in range(entries):
            heap = dt._evict_heap[e]
            hl[e] = len(heap)
            base = e * heap_cap * 2
            for i, (c, s) in enumerate(heap):
                hb[base + 2 * i] = c
                hb[base + 2 * i + 1] = s

    # ------------------------------------------------------------------
    # Import (flat buffers -> Python)
    # ------------------------------------------------------------------

    def end_span(self, ok: bool) -> None:
        """Import state back; ``ok=False`` skips the span-delta flush."""
        self._import_caches()
        self._import_mshrs()
        self._import_tlbs()
        self._import_mmu()
        self._import_dram()
        self._import_core()
        self._import_pq()
        if self._kern is not None:
            self._import_berti()
        R, h = self.R, self.h
        h._pf_l1d_stats.useless = R[RIX["PF1_USELESS"]]
        pfs2 = h.pf_stats["l2"]
        pfs2.useless = R[RIX["PF2_USELESS"]]
        h.traffic_l1d_l2.writeback = R[RIX["T12_WB"]]
        h.traffic_l2_llc.writeback = R[RIX["T2L_WB"]]
        h.traffic_llc_dram.writeback = R[RIX["TLD_WB"]]
        if ok:
            self._flush_deltas()
        else:
            # A crashed span keeps its in-place mutations (the batched
            # loop's immediate _credit_useful calls) but not the deltas.
            pfs2.useful = R[RIX["CREDIT2_USEFUL"]]
            pfs2.late = R[RIX["CREDIT2_LATE"]]

    def _import_caches(self) -> None:
        R, b, h = self.R, self.bufs, self.h
        for p, cache in zip(_CACHE_PREFIXES, (h.l1d, h.l2, h.llc)):
            ways = cache.ways
            tags = b[f"{p}_TAG"]
            valid = b[f"{p}_VALID"]
            dirty = b[f"{p}_DIRTY"]
            pref = b[f"{p}_PREF"]
            arr = b[f"{p}_ARR"]
            pflat = b[f"{p}_PFLAT"]
            ipc = b[f"{p}_IP"]
            vlc = b[f"{p}_VLINE"]
            org = b[f"{p}_ORG"]
            mat = b[f"{p}_MAT"]
            polc = b[f"{p}_POLC"]
            pola = b[f"{p}_POLA"]
            pol = cache.policy
            if type(pol) is LRUPolicy:
                pol_clock, pol_rows = pol._clock, pol._age
            else:
                pol_clock, pol_rows = None, pol._rrpv
            if type(pol) is DRRIPPolicy:
                pol._psel = R[RIX[f"{p}_PSEL"]]
                mt = b[f"{p}_MT"]
                pol._rng.setstate(
                    (3, tuple(mt[i] for i in range(625)), None)
                )
            where = cache._where
            vcount = cache._valid_count
            sets = cache.sets
            for s in range(cache.num_sets):
                if mat[s] != 2:  # untouched since export: already in sync
                    continue
                mat[s] = 1
                row = sets[s]
                if not row:
                    row += [CacheLine() for _ in range(ways)]
                else:
                    # Tags are full line numbers (they encode the set),
                    # so evicting this set's old keys cannot collide
                    # with entries belonging to other sets.
                    for cl in row:
                        if cl.valid:
                            where.pop(cl.tag, None)
                base = s * ways
                nvalid = 0
                for w in range(ways):
                    i = base + w
                    cl = row[w]
                    t = tags[i]
                    cl.tag = t
                    v = valid[i] != 0
                    cl.valid = v
                    cl.dirty = dirty[i] != 0
                    cl.prefetched = pref[i] != 0
                    cl.arrival_cycle = arr[i]
                    cl.pf_latency = pflat[i]
                    cl.ip = ipc[i]
                    cl.vline = vlc[i]
                    cl.pf_origin = ORIGINS[org[i]]
                    if v:
                        nvalid += 1
                        where[t] = w
                vcount[s] = nvalid
                prow = pol_rows[s]
                for w in range(ways):
                    prow[w] = pola[base + w]
                if pol_clock is not None:
                    pol_clock[s] = polc[s]
            st = cache.stats
            st.prefetch_fills = R[RIX[f"{p}_PF_FILLS"]]
            st.demand_fills = R[RIX[f"{p}_DEM_FILLS"]]
            st.useless_prefetches = R[RIX[f"{p}_USELESS"]]
            st.writebacks = R[RIX[f"{p}_WB"]]

    def _import_mshrs(self) -> None:
        R, b, h = self.R, self.bufs, self.h
        for p, m in zip(_MSHR_PREFIXES, (h.l1d_mshr, h.l2_mshr)):
            count = R[RIX[f"{p}_COUNT"]]
            line = b[f"{p}_LINE"]
            alloc = b[f"{p}_ALLOC"]
            ready = b[f"{p}_READY"]
            ispf = b[f"{p}_ISPF"]
            ipc = b[f"{p}_IP"]
            vlc = b[f"{p}_VLINE"]
            merged = b[f"{p}_MERGED"]
            entries: dict = {}
            for i in range(count):
                entries[line[i]] = MSHREntry(
                    line=line[i], alloc_cycle=alloc[i],
                    ready_cycle=ready[i], is_prefetch=ispf[i] != 0,
                    ip=ipc[i], vline=vlc[i], merged_demands=merged[i],
                )
            m._entries = entries
            m._min_ready = R[RIX[f"{p}_MINREADY"]]
            m._last_expire = R[RIX[f"{p}_LASTEXP"]]
            m.allocations = R[RIX[f"{p}_ALLOCS"]]
            m.full_rejections = R[RIX[f"{p}_FULLREJ"]]

    def _import_tlbs(self) -> None:
        R, b, h = self.R, self.bufs, self.h
        mmu = h.mmu
        for p, tlb in zip(_TLB_PREFIXES, (mmu.dtlb, mmu.stlb)):
            row = tlb.ways + 1
            vp, pp, ln = b[f"{p}_VP"], b[f"{p}_PP"], b[f"{p}_LEN"]
            tmap: dict = {}
            sets = tlb._sets
            for s in range(tlb.num_sets):
                base = s * row
                n = ln[s]
                entries = [(vp[base + i], pp[base + i]) for i in range(n)]
                sets[s] = entries
                for v, ph in entries:
                    tmap[v] = ph
            tlb._map = tmap
        mmu.dtlb.stats.prefetch_probes = R[RIX["DT_PPROBES"]]
        mmu.dtlb.stats.prefetch_probe_hits = R[RIX["DT_PPROBE_HITS"]]
        mmu.stlb.stats.accesses = R[RIX["ST_ACC"]]
        mmu.stlb.stats.hits = R[RIX["ST_HITS"]]

    def _import_mmu(self) -> None:
        R, b, h = self.R, self.bufs, self.h
        mmu = h.mmu
        n = R[RIX["WALKLOG_LEN"]]
        wvp, wpp = b["WALK_VP"], b["WALK_PP"]
        table = mmu._page_table
        for i in range(n):
            # Walk order == the classic engine's dict insertion order.
            table[wvp[i]] = wpp[i]
        mmu._next_ppage = R[RIX["MMU_NEXT_PPAGE"]]
        mmu.stats.walks = R[RIX["MMU_WALKS"]]
        mmu.stats.dropped_prefetch_translations = R[RIX["MMU_DROPPED"]]

    def _import_dram(self) -> None:
        R, F, b, h = self.R, self.F, self.bufs, self.h
        dram = h.dram
        brow, bbusy = b["BANK_ROW"], b["BANK_BUSY"]
        for i, bank in enumerate(dram._banks):
            bank.open_row = brow[i]
            bank.busy_until = bbusy[i]
        dram._bus_free = F[FIX["F_BUSFREE"]]
        pendw = b["PENDW"]
        dram._pending_writes = [
            pendw[i] for i in range(R[RIX["DR_PENDW_LEN"]])
        ]
        st = dram.stats
        st.reads = R[RIX["DR_READS"]]
        st.writes = R[RIX["DR_WRITES"]]
        st.row_hits = R[RIX["DR_ROWH"]]
        st.row_misses = R[RIX["DR_ROWM"]]
        st.row_conflicts = R[RIX["DR_ROWC"]]
        st.total_read_latency = R[RIX["DR_LAT_TOTAL"]]

    def _import_core(self) -> None:
        R, F, b = self.R, self.F, self.bufs
        core = self.core
        core._instr = R[RIX["C_INSTR"]]
        core._frontend = F[FIX["F_FRONTEND"]]
        core._retire_frontier = F[FIX["F_RETIRE"]]
        core._rob_head_retire = F[FIX["F_ROB_HEAD"]]
        wk, wr = b["WIN_K"], b["WIN_RET"]
        n = R[RIX["WIN_LEN"]]
        win = core._window
        win.clear()
        # The kernel compacts the window to offset 0 before returning.
        for i in range(n):
            win.append((wk[i], wr[i]))
        loads = core._load_completions
        loads.clear()
        lbuf = b["LOADS"]
        pos = R[RIX["LOADS_POS"]]
        cnt = R[RIX["LOADS_LEN"]]
        cap = core.config.dependency_window
        for i in range(cnt):
            loads.append(lbuf[(pos + i) % cap])

    def _import_pq(self) -> None:
        R, b, h = self.R, self.bufs, self.h
        st = h.pq._service_times
        st.clear()
        buf = b["PQ_ST"]
        for i in range(R[RIX["PQ_LEN"]]):
            st.append(buf[i])

    def _import_berti(self) -> None:
        R, b = self.R, self.bufs
        kern = self._kern
        hist = kern.history
        new_inserts = R[RIX["H_INSERTS"]]
        rebuild = new_inserts != hist.inserts
        hist.inserts = new_inserts
        hist.searches = R[RIX["H_SEARCHES"]]
        if rebuild:
            # Forward walk from the FIFO pointer visits oldest->youngest,
            # reproducing the incremental chain maintenance exactly.
            cfg = kern.config
            sets, ways = cfg.history_sets, cfg.history_ways
            tags, lines, tss = hist._tags, hist._lines, hist._tss
            ptrs = hist._fifo_ptr
            chains = hist._chains
            for s in range(sets):
                chain: dict = {}
                base = s * ways
                ptr = ptrs[s]
                for j in range(ways):
                    w = base + (ptr + j) % ways
                    t = tags[w]
                    if t < 0:
                        continue
                    dq = chain.get(t)
                    if dq is None:
                        chain[t] = dq = deque()
                    dq.append((lines[w], tss[w]))
                chains[s] = chain

        dt = kern.deltas
        entries = len(dt._valid)
        per = kern.config.deltas_per_entry
        ev, et = b["E_VALID"], b["E_TAG"]
        ec, eo = b["E_CTR"], b["E_ORDER"]
        ew, es = b["E_WARMED"], b["E_SCOUNT"]
        sd, sc, ss = b["S_DELTA"], b["S_COV"], b["S_STATUS"]
        by_tag: dict = {}
        for e in range(entries):
            v = ev[e] != 0
            dt._valid[e] = v
            dt._tags[e] = et[e]
            dt._counters[e] = ec[e]
            dt._orders[e] = eo[e]
            dt._warmed[e] = ew[e] != 0
            count = es[e]
            dt._slot_count[e] = count
            base = e * per
            drow, crow, strow = (dt._slot_delta[e], dt._slot_cov[e],
                                 dt._slot_status[e])
            for i in range(per):
                drow[i] = sd[base + i]
                crow[i] = sc[base + i]
                strow[i] = ss[base + i]
            dt._by_delta[e] = {drow[i]: i for i in range(count)}
            dt._pf_cache[e] = None
            dt._warm_cache[e] = None
            if v:
                by_tag[et[e]] = e
        dt._by_tag = by_tag
        heap_cap = R[RIX["HEAP_CAP"]]
        hb, hl = b["HEAP"], b["HEAP_LEN"]
        for e in range(entries):
            base = e * heap_cap * 2
            dt._evict_heap[e] = [
                (hb[base + 2 * i], hb[base + 2 * i + 1])
                for i in range(hl[e])
            ]
        dt._fifo_clock = R[RIX["DT_FIFO_CLOCK"]]
        dt._fifo_ptr = R[RIX["DT_FIFO_PTR"]]
        dt.phase_completions = R[RIX["DT_PHASES"]]
        dt.discarded_deltas = R[RIX["DT_DISCARDED"]]

    def _flush_deltas(self) -> None:
        R, h = self.R, self.h
        g = lambda name: R[RIX[name]]
        dtlb_stats = h.mmu.dtlb.stats
        dtlb_stats.accesses += g("D_DT_ACC")
        dtlb_stats.hits += g("D_DT_HIT")
        l1s, l2s, llcs = h.l1d.stats, h.l2.stats, h.llc.stats
        l1s.demand_accesses += g("D_L1_ACC")
        l1s.demand_hits += g("D_L1_HIT")
        l1s.demand_misses += g("D_L1_MISS")
        l1s.useful_prefetches += g("D_L1_USEFUL")
        l1s.late_prefetches += g("D_L1_LATE")
        l2s.demand_accesses += g("D_L2_ACC")
        l2s.demand_hits += g("D_L2_HIT")
        l2s.demand_misses += g("D_L2_MISS")
        l2s.useful_prefetches += g("D_L2_USEFUL")
        llcs.demand_accesses += g("D_LLC_ACC")
        llcs.demand_hits += g("D_LLC_HIT")
        llcs.demand_misses += g("D_LLC_MISS")
        llcs.useful_prefetches += g("D_LLC_USEFUL")
        h.llc_demand_accesses += g("D_H_LLC_ACC")
        h.llc_demand_misses += g("D_H_LLC_MISS")
        h.dram_demand_reads += g("D_H_DRAM")
        tr12 = h.traffic_l1d_l2
        tr12.demand += g("D_T12_DEM")
        tr12.prefetch += g("D_T12_PF")
        tr2l = h.traffic_l2_llc
        tr2l.demand += g("D_T2L_DEM")
        tr2l.prefetch += g("D_T2L_PF")
        trld = h.traffic_llc_dram
        trld.demand += g("D_TLD_DEM")
        trld.prefetch += g("D_TLD_PF")
        pfs1 = h._pf_l1d_stats
        pfs1.suggested += g("D_PF_SUGG")
        pfs1.issued += g("D_PF_ISSUED")
        pfs1.fills += g("D_PF_FILLS")
        pfs1.useful += g("D_PF_USEFUL")
        pfs1.late += g("D_PF_LATE")
        pfs1.promoted += g("D_PF_PROMOTED")
        pfs1.dropped_translation += g("D_PF_DTRANS")
        pfs1.dropped_duplicate += g("D_PF_DDUP")
        pfs1.dropped_queue_full += g("D_PF_DQ")
        pfs1.dropped_mshr_full += g("D_PF_DM")
        pfs2 = h.pf_stats["l2"]
        # Dual-channel fields: the "credit" channel (the batched loop's
        # immediate _credit_useful calls) lives in the absolute
        # registers; the delta channel mirrors the flush list.
        pfs2.useful = g("CREDIT2_USEFUL") + g("D_PF2_USEFUL")
        pfs2.late = g("CREDIT2_LATE") + g("D_PF2_LATE")
        pfs2.promoted += g("D_PF2_PROMOTED")
        stlb_stats = h.mmu.stlb.stats
        stlb_stats.prefetch_probes += g("D_STLB_PROBES")
        stlb_stats.prefetch_probe_hits += g("D_STLB_HITS")
        h.l1d_mshr.merges += g("D_M1_MERGES")
        h.l2_mshr.merges += g("D_M2_MERGES")
        kern = self._kern
        if kern is not None:
            kern.cross_page_suppressed += g("D_CROSS")

    # ------------------------------------------------------------------

    def pointers(self) -> List[int]:
        """Current raw buffer pointers in BUFS order."""
        return [_ptr_of(self.bufs[name]) for name in BUFS]
