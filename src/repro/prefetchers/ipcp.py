"""Instruction Pointer Classifier-based Prefetching (IPCP) —
Pakalapati & Panda, ISCA 2020; DPC-3 winner.

IPCP classifies each IP into one of three classes and drives a small
dedicated prefetcher per class:

* **CS (constant stride)** — 2-bit-confidence stride detection per IP;
  prefetches ``cs_degree`` strided lines ahead.
* **CPLX (complex stride)** — a signature of recent strides indexes a
  Complex Stride Prediction Table (CSPT); predicted strides are chained
  ("lookahead") while their confidence holds.
* **GS (global stream)** — region-density monitoring; when the program
  streams through a dense region, prefetch aggressively along the stream
  direction.  This component is the main source of IPCP's useless
  prefetches on irregular (GAP-like) workloads, which Figure 10 of the
  paper highlights.

Unclassified IPs fall back to next-line.  Per the paper (§II-B), IPCP
ignores prefetch *timeliness* — there is no latency feedback anywhere.

Configuration: 128-entry IP table (Table III), 128-entry CSPT.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)


class _IPEntry:
    __slots__ = (
        "valid", "tag", "last_line", "stride", "cs_conf", "signature", "lru",
    )

    def __init__(self) -> None:
        self.valid = False
        self.tag = 0
        self.last_line = 0
        self.stride = 0
        self.cs_conf = 0
        self.signature = 0
        self.lru = 0


class IPCPPrefetcher(Prefetcher):
    """Composite CS + CPLX + GS + next-line bouquet."""

    name = "ipcp"
    level = "l1d"

    SIG_BITS = 10
    CS_CONF_MAX = 3
    CS_THRESHOLD = 2
    CPLX_CONF_MAX = 3
    CPLX_THRESHOLD = 2

    def __init__(
        self,
        ip_entries: int = 128,
        cspt_entries: int = 128,
        cs_degree: int = 3,
        cplx_degree: int = 4,
        gs_degree: int = 4,
        region_lines: int = 32,
    ) -> None:
        self.ip_entries = ip_entries
        self.cspt_entries = cspt_entries
        self.cs_degree = cs_degree
        self.cplx_degree = cplx_degree
        self.gs_degree = gs_degree
        self.region_lines = region_lines

        self._ip_table = [_IPEntry() for _ in range(ip_entries)]
        # CSPT: signature -> (stride, confidence)
        self._cspt: List[List[int]] = [[0, 0] for _ in range(cspt_entries)]
        # GS region monitor: region -> (touch bitmap, last line, direction)
        self._regions: Dict[int, List[int]] = {}
        self._clock = 0

    # ------------------------------------------------------------------

    def _ip_entry(self, ip: int) -> _IPEntry:
        index = ip % self.ip_entries
        tag = (ip // self.ip_entries) & 0x3FF
        entry = self._ip_table[index]
        if not entry.valid or entry.tag != tag:
            entry.valid = True
            entry.tag = tag
            entry.last_line = 0
            entry.stride = 0
            entry.cs_conf = 0
            entry.signature = 0
        return entry

    def _update_signature(self, signature: int, stride: int) -> int:
        return ((signature << 1) ^ (stride & 0x3F)) & ((1 << self.SIG_BITS) - 1)

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        self._clock += 1
        line = access.line
        entry = self._ip_entry(access.ip)
        requests: List[PrefetchRequest] = []

        if entry.last_line != 0:
            stride = line - entry.last_line
            if stride != 0:
                # --- train CS
                if stride == entry.stride:
                    if entry.cs_conf < self.CS_CONF_MAX:
                        entry.cs_conf += 1
                else:
                    entry.cs_conf = max(0, entry.cs_conf - 1)
                    if entry.cs_conf == 0:
                        entry.stride = stride
                # --- train CPLX: old signature predicts this stride
                slot = self._cspt[entry.signature % self.cspt_entries]
                if slot[0] == stride:
                    if slot[1] < self.CPLX_CONF_MAX:
                        slot[1] += 1
                else:
                    slot[1] -= 1
                    if slot[1] <= 0:
                        slot[0] = stride
                        slot[1] = 0
                entry.signature = self._update_signature(entry.signature, stride)

        entry.last_line = line

        # --- classify and issue
        if entry.cs_conf >= self.CS_THRESHOLD and entry.stride != 0:
            for k in range(1, self.cs_degree + 1):
                requests.append(
                    PrefetchRequest(
                        line=line + entry.stride * k, fill_level=FILL_L1
                    )
                )
        else:
            cplx = self._cplx_chain(entry.signature, line)
            requests.extend(cplx)
            if not cplx:
                gs = self._gs(line)
                if gs:
                    requests.extend(gs)
                else:
                    # next-line fallback
                    requests.append(
                        PrefetchRequest(line=line + 1, fill_level=FILL_L1)
                    )
        return requests

    def _cplx_chain(self, signature: int, line: int) -> List[PrefetchRequest]:
        """CPLX lookahead: follow predicted strides while confident."""
        requests: List[PrefetchRequest] = []
        target = line
        sig = signature
        for depth in range(self.cplx_degree):
            stride, conf = self._cspt[sig % self.cspt_entries]
            if conf < self.CPLX_THRESHOLD or stride == 0:
                break
            target += stride
            fill = FILL_L1 if depth < 2 else FILL_L2
            requests.append(PrefetchRequest(line=target, fill_level=fill))
            sig = self._update_signature(sig, stride)
        return requests

    def _gs(self, line: int) -> List[PrefetchRequest]:
        """Global-stream detection over dense regions."""
        region = line // self.region_lines
        state = self._regions.get(region)
        if state is None:
            if len(self._regions) > 64:
                self._regions.clear()  # cheap epoch reset
            state = [0, line, 0]
            self._regions[region] = state
        bitmap, last, direction = state
        offset = line % self.region_lines
        state[0] = bitmap | (1 << offset)
        state[2] = 1 if line >= last else -1
        state[1] = line
        density = bin(state[0]).count("1")
        if density >= self.region_lines // 3:
            direction = state[2]
            return [
                PrefetchRequest(
                    line=line + direction * k,
                    fill_level=FILL_L1 if k <= 2 else FILL_L2,
                )
                for k in range(1, self.gs_degree + 1)
            ]
        return []

    def storage_bits(self) -> int:
        # IP table: 128 x (10 tag + 24 line + 13 stride + 2 conf + 10 sig);
        # CSPT: 128 x (13 stride + 2 conf); region monitors: 64 x
        # (20 tag + 32 bitmap + 2).
        return (
            self.ip_entries * (10 + 24 + 13 + 2 + 10)
            + self.cspt_entries * (13 + 2)
            + 64 * (20 + 32 + 2)
        )

    def reset(self) -> None:
        self._ip_table = [_IPEntry() for _ in range(self.ip_entries)]
        self._cspt = [[0, 0] for _ in range(self.cspt_entries)]
        self._regions.clear()
        self._clock = 0
