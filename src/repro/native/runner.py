"""Span runner for the native backend: guards, demotion, error mapping.

``make_native_runner`` wraps :func:`repro.simulator.batched.make_batched_runner`
so every span has a Python twin to demote to.  Guards are re-validated at
each span boundary (like ``batch_mode``): the native kernel must never
engage against fault-injection subclasses, wrapped hooks, non-stock
replacement policies or table geometries the C side did not size for.

Demotion is *sticky for reporting only*: the first reason is recorded in
``runner.demotion_code`` (see :data:`DEMOTION_REASONS`) so the engine can
surface one structured event, but each span still re-checks — a guard
that clears (e.g. a test un-wraps a hook) lets later spans run natively,
exactly like the batched engine's per-span ``batch_mode`` re-validation.

Error mapping: the kernel returns 0 on success, 1 for MSHR exhaustion
(registers ``ERR_A..ERR_D`` carry count/size/cycle/line) and any other
value for an internal invariant breach.  On every non-zero return the
state is imported with ``end_span(ok=False)`` — absolute counters land,
span deltas are discarded — matching the batched loop's behaviour when
``MSHR full`` propagates mid-record.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.berti import BertiPrefetcher
from repro.errors import SimulationError
from repro.memory.replacement import DRRIPPolicy, LRUPolicy, SRRIPPolicy
from repro.simulator.batched import batch_mode, make_batched_runner

from . import build as _build
from .marshal import RIX, NativeState

try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised via monkeypatching
    _np = None

__all__ = ["DEMOTION_REASONS", "native_mode", "make_native_runner", "NativeRunner"]

#: Structured demotion reasons (code -> slug); code 0 means "never demoted".
DEMOTION_REASONS = {
    1: "no-compiler",
    2: "non-stock-hierarchy",
    3: "unsupported-prefetcher",
    4: "unsupported-replacement",
    5: "forced",
}

# Exact replacement-policy types the kernel implements.  Subclasses are
# rejected: a policy override changes victim selection and the C side
# would silently diverge.
_STOCK_POLICIES = (LRUPolicy, SRRIPPolicy, DRRIPPolicy)


def native_mode(hierarchy, core) -> Tuple[bool, int, str]:
    """Classify whether the native kernel may run a span.

    Returns ``(ok, demotion_code, detail)``.  Strictly narrower than
    ``batch_mode``: everything the batched engine demotes on, plus the
    kernel's own limits (exact stock replacement policies, the stock
    ``BertiPrefetcher`` when a kernel prefetcher is attached, table
    geometries within the C fast-path bounds, single-ASID MMU).
    """
    mode = batch_mode(hierarchy, core)
    if not mode:
        return (False, 2, "batch_mode demoted (wrapped hooks or non-stock parts)")
    h = hierarchy
    for cache in (h.l1d, h.l2, h.llc):
        if type(cache.policy) not in _STOCK_POLICIES:
            return (
                False,
                4,
                f"{cache.name} replacement {type(cache.policy).__name__} "
                f"is not stock LRU/SRRIP/DRRIP",
            )
    if h.mmu._asid != 0:
        return (False, 2, f"MMU asid {h.mmu._asid} != 0")
    if core.config.dependency_window < 1:
        return (False, 2, "dependency_window < 1")
    if mode == "kernel":
        pf = h.l1d_prefetcher
        if type(pf) is not BertiPrefetcher:
            return (
                False,
                3,
                f"kernel prefetcher {type(pf).__name__} is not the stock "
                f"BertiPrefetcher",
            )
        cfg = pf.config
        if cfg.deltas_per_entry > 64 or cfg.max_prefetch_deltas > 64:
            return (
                False,
                3,
                f"delta geometry ({cfg.deltas_per_entry} slots, "
                f"{cfg.max_prefetch_deltas} pf) exceeds kernel bound 64",
            )
    return (True, 0, "")


def _addresses_nonnegative(trace) -> bool:
    """The kernel's open-addressing page table uses -1 as its empty
    marker, so negative virtual pages must stay on the Python path."""
    addrs = trace.columns()[1]
    if len(addrs) == 0:
        return True
    if _np is not None:
        return not bool((_np.frombuffer(addrs, dtype=_np.int64) < 0).any())
    return min(addrs) >= 0


class NativeRunner:
    """Callable span runner; ``runner(lo, hi)`` executes one span.

    Attributes read by the engine after the run:

    * ``native_spans`` / ``demoted_spans`` — span counts per path;
    * ``demotion_code`` — first demotion reason (``None`` if never
      demoted), indexes :data:`DEMOTION_REASONS`;
    * ``demotion_detail`` — human-readable reason for that first event.
    """

    def __init__(
        self,
        trace,
        hierarchy,
        core,
        chunk_size: int = 0,
        force_demote_at: Optional[int] = None,
    ) -> None:
        self.trace = trace
        self.hierarchy = hierarchy
        self.core = core
        self.force_demote_at = force_demote_at
        self.native_spans = 0
        self.demoted_spans = 0
        self.demotion_code: Optional[int] = None
        self.demotion_detail: str = ""
        self._fallback = make_batched_runner(trace, hierarchy, core, chunk_size)
        self._fn, self.compiler_diagnostic = _build.kernel_available()
        self._addrs_ok = _addresses_nonnegative(trace)
        self._state: Optional[NativeState] = None

    def _demote(self, code: int, detail: str, lo: int, hi: int) -> None:
        if self.demotion_code is None:
            self.demotion_code = code
            self.demotion_detail = detail
        self.demoted_spans += 1
        if self._state is not None:
            # The Python span mutates the cache objects behind the flat
            # buffers; a later native span must re-export everything.
            self._state.mark_stale()
        self._fallback(lo, hi)

    def __call__(self, lo: int, hi: int) -> None:
        if self.force_demote_at is not None and hi > self.force_demote_at:
            self._demote(5, f"forced demotion at record {self.force_demote_at}",
                         lo, hi)
            return
        if self._fn is None:
            self._demote(1, self.compiler_diagnostic or "no compiler", lo, hi)
            return
        if not self._addrs_ok:
            self._demote(2, "trace contains negative addresses", lo, hi)
            return
        ok, code, detail = native_mode(self.hierarchy, self.core)
        if not ok:
            self._demote(code, detail, lo, hi)
            return
        if self._state is None:
            self._state = NativeState(self.trace, self.hierarchy, self.core)
        state = self._state
        state.begin_span(lo, hi)
        rc = _build.call_span(self._fn, state)
        if rc == 0:
            state.end_span(True)
            self.native_spans += 1
            return
        R = state.R
        err_a = R[RIX["ERR_A"]]
        err_b = R[RIX["ERR_B"]]
        err_c = R[RIX["ERR_C"]]
        err_d = R[RIX["ERR_D"]]
        state.end_span(False)
        if rc == 1:
            # Byte-for-byte the message mshr.MSHR.allocate raises, so the
            # crash-triage fingerprints match across engines.
            raise SimulationError(
                f"MSHR full: {err_a}/{err_b} entries outstanding at cycle "
                f"{err_c} (line {err_d:#x})",
                field="mshr",
            )
        raise SimulationError(
            f"native kernel internal error {rc} in span [{lo}, {hi}) "
            f"(a={err_a} b={err_b} c={err_c} d={err_d})",
            trace=self.trace.name,
            prefetcher=self.hierarchy.l1d_prefetcher.name,
            field="engine",
        )


def make_native_runner(
    trace,
    hierarchy,
    core,
    chunk_size: int = 0,
    force_demote_at: Optional[int] = None,
) -> NativeRunner:
    """Build the native span runner (mirrors ``make_batched_runner``)."""
    return NativeRunner(trace, hierarchy, core, chunk_size, force_demote_at)
