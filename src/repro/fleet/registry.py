"""Daemon-side agent registry: lifecycle, liveness, failure domains.

Each remote agent is one failure domain.  The registry tracks every
agent the daemon has ever seen through a small state machine::

    registered --first lease--> active --drain--> draining --> drained
         |                      |   ^
         |                      |   | touch (rejoin)
         +------stale-----------+---+--> dead
                                |
                                +--breaker trips--> quarantined

* **stale → dead**: an agent that has not touched the daemon (lease,
  renew, result) within ``timeout`` seconds is declared dead; its live
  leases are force-expired so the normal requeue machinery reclaims the
  jobs exactly once.
* **dead → active**: a dead agent that calls back (the partition
  healed) rejoins; its old leases are gone, it simply starts leasing
  again.
* **quarantined**: a per-agent circuit breaker mirrors the supervisor's
  worker-quarantine logic — ``breaker_after`` consecutive failed or
  refused jobs trips it, and a quarantined agent is refused leases
  until an operator (or test) resets it.  One agent repeatedly
  poisoning results must not be allowed to drain the whole queue
  through its requeue budget.

The registry is a pure in-memory structure driven by the daemon's
clock; durable history lives in the WAL (lease attribution) and the
fleet manifest (events).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FleetError

__all__ = ["AgentRecord", "AgentRegistry"]

#: Lifecycle states an agent can occupy.
STATES = ("registered", "active", "draining", "drained", "dead",
          "quarantined")


@dataclass
class AgentRecord:
    """Everything the daemon knows about one remote agent."""

    agent_id: str
    name: str
    host: str
    pool: int
    state: str = "registered"
    registered_at: float = 0.0
    last_seen: float = 0.0
    leases_granted: int = 0
    results_ok: int = 0
    results_failed: int = 0
    results_refused: int = 0
    consecutive_failures: int = 0
    deaths: int = 0
    rejoins: int = 0

    LIVE_STATES = ("registered", "active", "draining")

    @property
    def live(self) -> bool:
        return self.state in self.LIVE_STATES

    @property
    def leasable(self) -> bool:
        """May this agent be granted new leases right now?"""
        return self.state in ("registered", "active")

    def describe(self) -> Dict[str, object]:
        return {
            "agent": self.agent_id,
            "name": self.name,
            "host": self.host,
            "pool": self.pool,
            "state": self.state,
            "leases_granted": self.leases_granted,
            "results": {"ok": self.results_ok,
                        "failed": self.results_failed,
                        "refused": self.results_refused},
            "deaths": self.deaths,
            "rejoins": self.rejoins,
        }


class AgentRegistry:
    """Thread-safe registry of remote agents and their lifecycle."""

    def __init__(self, timeout: float, breaker_after: int = 3,
                 clock=None) -> None:
        import time

        if timeout <= 0:
            raise ValueError("agent timeout must be positive")
        if breaker_after < 1:
            raise ValueError("breaker_after must be >= 1")
        self.timeout = timeout
        self.breaker_after = breaker_after
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._agents: Dict[str, AgentRecord] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------

    def register(self, name: str = "", host: str = "",
                 pool: int = 1) -> AgentRecord:
        with self._lock:
            now = self._clock()
            agent_id = f"A{next(self._ids)}"
            record = AgentRecord(agent_id=agent_id,
                                 name=name or agent_id, host=host,
                                 pool=max(1, int(pool)),
                                 registered_at=now, last_seen=now)
            self._agents[agent_id] = record
            return record

    def touch(self, agent_id: str) -> AgentRecord:
        """Record contact from an agent; dead agents rejoin here.

        Raises :class:`FleetError` (status 410) for an agent the daemon
        has never seen — the agent's cue to re-register, e.g. after a
        daemon restart wiped the in-memory registry.
        """
        with self._lock:
            record = self._agents.get(agent_id)
            if record is None:
                raise FleetError(
                    f"unknown agent {agent_id!r}: re-register",
                    status=410, agent=agent_id,
                )
            record.last_seen = self._clock()
            if record.state == "dead":
                record.state = "active"
                record.rejoins += 1
                record.consecutive_failures = 0
            return record

    def activate(self, agent_id: str) -> None:
        """First lease granted: registered → active."""
        with self._lock:
            record = self._agents[agent_id]
            if record.state == "registered":
                record.state = "active"

    def drain(self, agent_id: str) -> AgentRecord:
        with self._lock:
            record = self._agents.get(agent_id)
            if record is None:
                raise FleetError(
                    f"unknown agent {agent_id!r}: re-register",
                    status=410, agent=agent_id,
                )
            if record.state in ("registered", "active"):
                record.state = "draining"
            return record

    def mark_drained(self, agent_id: str) -> None:
        with self._lock:
            record = self._agents.get(agent_id)
            if record is not None and record.state == "draining":
                record.state = "drained"

    def reap_stale(self, now: Optional[float] = None) -> List[AgentRecord]:
        """Declare silent agents dead; returns the newly dead records."""
        with self._lock:
            if now is None:
                now = self._clock()
            dead = []
            for record in self._agents.values():
                if record.live and now - record.last_seen > self.timeout:
                    record.state = "dead"
                    record.deaths += 1
                    dead.append(record)
            return dead

    # ------------------------------------------------------------------
    # Per-agent circuit breaker
    # ------------------------------------------------------------------

    def record_result(self, agent_id: str, status: str) -> Optional[str]:
        """Track a job outcome (``ok``/``failed``/``refused``).

        Returns ``"quarantined"`` when this outcome trips the agent's
        breaker, else ``None``.
        """
        with self._lock:
            record = self._agents.get(agent_id)
            if record is None:
                return None
            if status == "ok":
                record.results_ok += 1
                record.consecutive_failures = 0
                return None
            if status == "failed":
                record.results_failed += 1
            else:
                record.results_refused += 1
            record.consecutive_failures += 1
            if (record.consecutive_failures >= self.breaker_after
                    and record.state in ("registered", "active")):
                record.state = "quarantined"
                return "quarantined"
            return None

    def reset_breaker(self, agent_id: str) -> None:
        with self._lock:
            record = self._agents.get(agent_id)
            if record is not None and record.state == "quarantined":
                record.state = "active"
                record.consecutive_failures = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, agent_id: str) -> Optional[AgentRecord]:
        with self._lock:
            return self._agents.get(agent_id)

    def live_agents(self) -> List[AgentRecord]:
        with self._lock:
            return [r for r in self._agents.values() if r.live]

    def describe(self) -> List[Dict[str, object]]:
        with self._lock:
            return [r.describe() for r in sorted(
                self._agents.values(), key=lambda r: r.agent_id)]
