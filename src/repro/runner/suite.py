"""Helpers for (trace × prefetcher) campaign matrices.

The CLI's ``suite``/``compare`` commands and ad-hoc scripts share the
same shape: cross a trace list with a prefetcher list, run everything
through the resilient executor, and reassemble the survivors into the
``per_trace`` mapping the analysis layer consumes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.runner.faultinject import FaultSpec
from repro.runner.jobs import JobSpec, SuiteResult
from repro.simulator.stats import SimResult


def build_matrix_jobs(
    traces: Sequence[str],
    prefetchers: Sequence[str],
    scale: float = 0.5,
    l2: str = "none",
    mtps: Optional[int] = None,
    warmup_fraction: float = 0.2,
    faults: Optional[Mapping[str, FaultSpec]] = None,
    engine: str = "classic",
    chunk_size: int = 0,
    native: str = "auto",
) -> List[JobSpec]:
    """One job per (trace, L1D prefetcher); ``faults`` maps trace names
    to the fault injected into every job of that trace.  ``engine``/
    ``chunk_size``/``native`` select the simulator inner loop for every
    job (a performance knob: results are bit-identical across
    engines)."""
    faults = faults or {}
    return [
        JobSpec(
            trace=trace, l1d=pf, l2=l2, scale=scale, mtps=mtps,
            warmup_fraction=warmup_fraction, fault=faults.get(trace),
            engine=engine, chunk_size=chunk_size, native=native,
        )
        for trace in traces
        for pf in prefetchers
    ]


def per_trace_results(
    jobs: Sequence[JobSpec], result: SuiteResult
) -> Dict[str, Dict[str, SimResult]]:
    """Survivors regrouped as trace → (prefetcher → SimResult).

    Failed jobs are simply absent; ``analysis.metrics.geomean_speedup``
    then skips any trace whose baseline is missing and averages each
    prefetcher over the traces where it completed.
    """
    by_key = result.results_by_key()
    grouped: Dict[str, Dict[str, SimResult]] = {}
    for job in jobs:
        sim = by_key.get(job.key)
        if sim is not None:
            grouped.setdefault(job.trace, {})[job.l1d] = sim
    return grouped
