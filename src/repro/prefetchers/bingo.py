"""Bingo spatial data prefetcher — Bakhshalipour et al., HPCA 2019.

Bingo associates *spatial footprints* (bitmaps of the lines touched
within a region) with both long and short trigger events, stored in one
table:

* while a region is live, an **accumulation table** records every line
  touched in it, along with the trigger (first) access's PC and offset;
* when the region's tracking ends, the footprint is stored in the
  **pattern history table (PHT)** under its long event ``PC+address``;
* on a trigger access to a fresh region the PHT is probed with the long
  event first and, failing that, the short event ``PC+offset`` — one
  table serving both event lengths is Bingo's key trick;
* a hit replays the whole footprint as prefetches into the L2.

Region size 2 KB (32 lines) per the paper's Table III, with 64/128/4K
entry filter/accumulation/pattern tables.  Bingo trades much higher
storage (~46 KB) for multi-line coverage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.prefetchers.base import (
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)


class _RegionState:
    __slots__ = ("trigger_pc", "trigger_offset", "footprint", "order")

    def __init__(self, pc: int, offset: int, order: int) -> None:
        self.trigger_pc = pc
        self.trigger_offset = offset
        self.footprint = 1 << offset
        self.order = order


class BingoPrefetcher(Prefetcher):
    """Footprint prediction keyed on PC+address / PC+offset events."""

    name = "bingo"
    level = "l2"

    def __init__(
        self,
        region_lines: int = 32,          # 2 KB regions
        accumulation_entries: int = 128,
        pht_entries: int = 4096,
    ) -> None:
        self.region_lines = region_lines
        self.accumulation_entries = accumulation_entries
        self.pht_entries = pht_entries

        self._accumulation: Dict[int, _RegionState] = {}
        self._order = 0
        # PHT keyed by the long event; the short-event index maps to a
        # list of (long_key, footprint) so short lookups can match too.
        self._pht_long: Dict[Tuple[int, int], int] = {}
        self._pht_short: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------

    def _long_key(self, pc: int, region: int) -> Tuple[int, int]:
        return (pc & 0xFFFF, region & 0xFFFFF)

    def _short_key(self, pc: int, offset: int) -> Tuple[int, int]:
        return (pc & 0xFFFF, offset)

    def _evict_region(self, region: int, state: _RegionState) -> None:
        """Region tracking ends: commit its footprint to the PHT."""
        long_key = self._long_key(state.trigger_pc, region)
        short_key = self._short_key(state.trigger_pc, state.trigger_offset)
        self._pht_long[long_key] = state.footprint
        self._pht_short[short_key] = state.footprint
        if len(self._pht_long) > self.pht_entries:
            del self._pht_long[next(iter(self._pht_long))]
        if len(self._pht_short) > self.pht_entries:
            del self._pht_short[next(iter(self._pht_short))]

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        line = access.line
        region = line // self.region_lines
        offset = line % self.region_lines

        state = self._accumulation.get(region)
        if state is not None:
            state.footprint |= 1 << offset
            return []

        # Trigger access for a fresh region: predict first (so a barely
        # tracked region being evicted cannot clobber the event we are
        # about to use), then start accumulating.
        footprint = self._pht_long.get(self._long_key(access.ip, region))
        if footprint is None:
            footprint = self._pht_short.get(self._short_key(access.ip, offset))

        self._order += 1
        state = _RegionState(access.ip, offset, self._order)
        self._accumulation[region] = state
        if len(self._accumulation) > self.accumulation_entries:
            old_region = next(iter(self._accumulation))
            self._evict_region(old_region, self._accumulation.pop(old_region))
        if footprint is None:
            return []

        base = region * self.region_lines
        requests = []
        for bit in range(self.region_lines):
            if bit == offset or not footprint & (1 << bit):
                continue
            requests.append(
                PrefetchRequest(line=base + bit, fill_level=FILL_L2)
            )
        return requests

    def storage_bits(self) -> int:
        # Matches the paper's characterisation of Bingo as the heaviest
        # competitor (~46 KB): PHT 4K x (16 PC + 20 region tag + 32-bit
        # footprint) dominates, plus accumulation and filter tables.
        return (
            self.pht_entries * (16 + 20 + self.region_lines)
            + self.accumulation_entries * (16 + 5 + self.region_lines)
            + 64 * (16 + 5)
        )

    def reset(self) -> None:
        self._accumulation.clear()
        self._pht_long.clear()
        self._pht_short.clear()
        self._order = 0
