"""Synthetic access-pattern building blocks.

Every SPEC-/GAP-/CloudSuite-like generator is assembled from these
primitives.  Each primitive emits records for **one** instruction pointer
so that local-delta structure (what Berti learns) is explicit and
controllable; suite generators interleave them into realistic streams.

All primitives take a ``base`` byte address and emit line-aligned
accesses; ``gap`` is the non-memory instruction count between records.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.workloads.trace import Trace, TraceRecord

LINE = 64


def strided_stream(
    ip: int,
    base: int,
    stride_lines: int,
    count: int,
    gap: int = 10,
    is_write: bool = False,
    region_lines: Optional[int] = None,
) -> List[TraceRecord]:
    """A constant-stride stream: the pattern IP-stride covers perfectly.

    ``region_lines`` bounds the footprint: the stream wraps around the
    region, revisiting its pages the way a real array sweep does (keeps
    the STLB warm and the working set finite).
    """
    if region_lines is None:
        region_lines = max(1, abs(stride_lines)) * count
    return [
        (ip, base + (i * stride_lines) % region_lines * LINE, is_write, gap, 0)
        for i in range(count)
    ]


def pattern_stream(
    ip: int,
    base: int,
    stride_pattern: Sequence[int],
    count: int,
    gap: int = 10,
    dep: int = 0,
    region_lines: Optional[int] = None,
) -> List[TraceRecord]:
    """A repeating stride *pattern* (e.g. lbm's +1, +2, +1, +2 ...).

    IP-stride gains no confidence on it, but the deltas across one period
    are constant — exactly what a local-delta prefetcher exploits.
    """
    if region_lines is None:
        period = sum(stride_pattern)
        region_lines = max(1, period) * (count // len(stride_pattern) + 1)
    records: List[TraceRecord] = []
    base_line = base // LINE
    offset = 0
    for i in range(count):
        records.append((ip, (base_line + offset) * LINE, False, gap, dep))
        offset = (offset + stride_pattern[i % len(stride_pattern)]) % region_lines
    return records


def pointer_chase(
    ip: int,
    base: int,
    delta_choices: Sequence[int],
    count: int,
    gap: int = 10,
    seed: int = 0,
    weights: Optional[Sequence[float]] = None,
    region_lines: Optional[int] = None,
) -> List[TraceRecord]:
    """A dependent chase whose step is drawn from ``delta_choices``.

    Each access depends on the previous one (``dep=1``), so the chain is
    latency-bound: this is the mcf-style pattern where timely prefetching
    pays most.  A dominant delta (via ``weights``) gives Berti a
    high-coverage local delta while leaving the stride inconsistent.
    """
    rng = random.Random(seed)
    records: List[TraceRecord] = []
    base_line = base // LINE
    offset = 0
    for _ in range(count):
        records.append((ip, (base_line + offset) * LINE, False, gap, 1))
        if weights is not None:
            step = rng.choices(list(delta_choices), weights=list(weights))[0]
        else:
            step = rng.choice(list(delta_choices))
        if region_lines is None:
            offset += step
        else:
            offset = (offset + step) % region_lines
    return records


def random_access(
    ip: int,
    base: int,
    region_lines: int,
    count: int,
    gap: int = 10,
    seed: int = 0,
    dep: int = 0,
) -> List[TraceRecord]:
    """Uniform random lines within a region: unprefetchable noise."""
    rng = random.Random(seed)
    return [
        (ip, base + rng.randrange(region_lines) * LINE, False, gap, dep)
        for _ in range(count)
    ]


def gather_indices(
    ip: int,
    base: int,
    indices: Iterable[int],
    gap: int = 10,
    dep: int = 0,
    is_write: bool = False,
) -> List[TraceRecord]:
    """Element accesses driven by an explicit index sequence (A[idx[i]])."""
    return [
        (ip, base + idx * LINE, is_write, gap, dep) for idx in indices
    ]


def temporal_sequence(
    ip: int,
    lines: Sequence[int],
    repetitions: int,
    gap: int = 14,
    dep: int = 0,
) -> List[TraceRecord]:
    """A fixed irregular line sequence replayed several times.

    Spatially random but temporally repeating — the stream a temporal
    prefetcher (MISB) covers and spatial/delta prefetchers cannot.
    """
    records: List[TraceRecord] = []
    for _ in range(repetitions):
        for line in lines:
            records.append((ip, line * LINE, False, gap, dep))
    return records


def make_trace(
    name: str,
    parts: Sequence[List[TraceRecord]],
    suite: str = "",
    description: str = "",
    interleave_chunk: int = 1,
) -> Trace:
    """Round-robin interleave primitive streams into one trace."""
    trace = Trace(name=name, suite=suite, description=description)
    iters = [iter(p) for p in parts]
    live = list(range(len(iters)))
    while live:
        still = []
        for idx in live:
            taken = 0
            for rec in iters[idx]:
                trace.records.append(rec)
                taken += 1
                if taken >= interleave_chunk:
                    break
            if taken >= interleave_chunk:
                still.append(idx)
        live = still
    return trace
