"""Figure 7 (and Table III): speedup vs. storage for single-level and
multi-level prefetching.

Paper reference: Berti reaches the highest L1D speedup (+8.5 % over
IP-stride across SPEC+GAP) at 2.55 KB; Berti+SPP-PPF is the best combo
(+10.2 %); every multi-level combination *without* Berti is below Berti
alone despite 18–22× the storage.
"""

from common import (
    MULTILEVEL_SET,
    all_memint_traces,
    once,
    run_matrix,
    run_multilevel,
    save_report,
)

from repro.analysis.metrics import geomean_speedup
from repro.analysis.report import format_table
from repro.prefetchers.registry import make_prefetcher, storage_kb

L1D_NAMES = ["ip_stride", "mlop", "ipcp", "berti"]


def test_fig07_speedup_vs_storage(benchmark):
    def compute():
        traces = all_memint_traces()
        single = run_matrix(traces, L1D_NAMES)
        multi = run_multilevel(traces, MULTILEVEL_SET)
        merged = {
            t: {**single[t], **multi[t]} for t in single
        }
        speeds = geomean_speedup(merged, baseline_name="ip_stride")
        rows = []
        for name, speed in sorted(speeds.items(), key=lambda kv: -kv[1]):
            if name == "ip_stride":
                storage = storage_kb("ip_stride")
                kind = "baseline"
            elif "+" in name:
                l1d, l2 = name.split("+")
                storage = storage_kb(l1d) + storage_kb(l2)
                kind = "L1D+L2"
            else:
                storage = storage_kb(name)
                kind = "L1D"
            rows.append([name, kind, round(storage, 2), speed])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig07_speedup_vs_storage",
        format_table(
            ["configuration", "kind", "storage KB", "geomean speedup"],
            rows,
            title=(
                "Figure 7 — speedup vs storage (SPEC17+GAP, vs IP-stride)\n"
                "(paper: Berti best single-level at 2.55 KB; combos without"
                " Berti never beat Berti alone)"
            ),
        ),
    )

    speeds = {r[0]: r[3] for r in rows}
    # Berti is the best single-level prefetcher.
    assert speeds["berti"] == max(
        speeds[n] for n in L1D_NAMES
    )
    # Every multi-level combination without Berti is at or below Berti
    # alone (the headline of Figure 7).
    for combo in ("mlop+bingo", "mlop+spp_ppf", "ipcp+ipcp_l2"):
        assert speeds[combo] <= speeds["berti"] + 0.02, combo
    # Berti's storage is tiny next to the heavy combos.
    storage = {r[0]: r[2] for r in rows}
    assert storage["berti"] < storage["mlop+bingo"] / 10
