"""Host-level chaos harness for the campaign supervisor.

Where :mod:`repro.runner.faultinject` perturbs a *job* (crashes, hangs,
corrupt traces), this module perturbs the *host* around a whole
campaign, deterministically, and then asserts the campaign invariants
held:

* ``disk-full``   — chosen journal appends raise ``ENOSPC``; outcomes
  must be buffered and flushed once the disk "recovers", in order,
  losing and duplicating nothing.
* ``sigkill``     — the campaign process SIGKILLs *itself* in the middle
  of a journal append (after spilling a torn half-line, the classic
  crash artefact); the journal must stay parseable and a plain resume
  must execute exactly the missing jobs.
* ``hung-worker`` — a worker sleeps forever; the heartbeat watchdog must
  preempt it long before any wall-clock budget.
* ``balloon``     — a worker allocates real resident memory and idles;
  the per-worker RSS guard must preempt it with a typed
  ``ResourceError``.
* ``clock-skew``  — the supervisor's clock jumps forward minutes while
  jobs are in flight; deadlines must be rebased, nothing spuriously
  expired.

After every scenario the harness checks the **journal invariants**: all
lines parse (a torn line is tolerated only at EOF), no key has more than
one ``ok`` record, a resume executes exactly the missing keys, and the
merged results are bit-identical to a fault-free reference run.

Everything is counter-based — no randomness, no reliance on real host
pressure — so a failing scenario reproduces exactly.  ``repro chaos``
is the CLI entry point; ``--quick`` runs the subset CI exercises.
"""

from __future__ import annotations

import errno
import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.runner import worker
from repro.runner.executor import ExperimentRunner, RunnerConfig
from repro.runner.faultinject import FaultSpec
from repro.runner.jobs import JobSpec
from repro.runner.journal import Journal
from repro.runner.resources import ResourceMonitor, ResourcePolicy
from repro.runner.supervisor import CampaignSupervisor, SupervisorConfig

__all__ = [
    "ENOSPCJournal",
    "KillerJournal",
    "QUICK_SCENARIOS",
    "SCENARIOS",
    "ScenarioResult",
    "SkewedClock",
    "run_chaos",
    "verify_journal",
]

_TRACE = "lbm_s-2676B"
_TRACE2 = "mcf_s-1554B"
_SCALE = 0.03  # a few hundred records: real simulations, chaos-fast


# ----------------------------------------------------------------------
# Injection primitives
# ----------------------------------------------------------------------

class ENOSPCJournal(Journal):
    """A journal whose N-th appends fail with ``ENOSPC`` (1-based)."""

    def __init__(self, path: Union[str, Path],
                 fail_on: Sequence[int] = ()) -> None:
        super().__init__(path)
        self.fail_on = frozenset(fail_on)
        self.refused = 0
        self._appends = 0

    def append(self, outcome) -> None:
        self._appends += 1
        if self._appends in self.fail_on:
            self.refused += 1
            raise OSError(errno.ENOSPC,
                          "No space left on device (injected)")
        super().append(outcome)


class KillerJournal(Journal):
    """A journal that SIGKILLs its own process mid-append.

    On the ``kill_on``-th append it first spills a torn half-line
    directly into the journal file — the artefact a real power cut or
    OOM kill leaves behind — and then SIGKILLs the process, so neither
    ``finally`` blocks nor ``atexit`` hooks get to tidy up.
    """

    def __init__(self, path: Union[str, Path], kill_on: int = 2) -> None:
        super().__init__(path)
        self.kill_on = kill_on
        self._appends = 0

    def append(self, outcome) -> None:
        self._appends += 1
        if self._appends == self.kill_on:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write('{"schema": 2, "key": "torn-')
                fh.flush()
                os.fsync(fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        super().append(outcome)


class SkewedClock:
    """A monotonic clock that jumps ``jump`` seconds forward after
    ``after`` readings — an NTP step / suspend-resume, deterministically.
    """

    def __init__(self, jump: float = 120.0, after: int = 40) -> None:
        self.jump = jump
        self.after = after
        self.jumped = False
        self._calls = 0
        self._offset = 0.0

    def __call__(self) -> float:
        self._calls += 1
        if not self.jumped and self._calls > self.after:
            self.jumped = True
            self._offset = self.jump
        return time.monotonic() + self._offset


# ----------------------------------------------------------------------
# Journal invariants
# ----------------------------------------------------------------------

def verify_journal(path: Union[str, Path]) -> List[str]:
    """Check the journal invariants; returns human-readable problems.

    * every line parses as JSON — a torn line is tolerated only as the
      very last line (the artefact of a mid-append kill);
    * no key has more than one ``ok`` record (a resume must replay, not
      re-run, finished jobs).
    """
    path = Path(path)
    problems: List[str] = []
    if not path.exists():
        return ["journal file does not exist"]
    lines = path.read_text(encoding="utf-8").splitlines()
    ok_counts: Dict[str, int] = {}
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            if i != len(lines) - 1:
                problems.append(
                    f"torn/corrupt line {i + 1} of {len(lines)} is not "
                    f"at EOF: {line[:60]!r}"
                )
            continue
        if rec.get("status") == "ok" and rec.get("key"):
            ok_counts[rec["key"]] = ok_counts.get(rec["key"], 0) + 1
    for key, count in sorted(ok_counts.items()):
        if count > 1:
            problems.append(f"{count} duplicate ok records for {key!r}")
    return problems


def _reference_results(specs: Sequence[JobSpec]) -> Dict[str, dict]:
    """Fault-free inline results, as dicts, for bit-identity checks."""
    return {spec.key: worker.run_job(spec, 1).to_dict() for spec in specs}


def _check_resume(
    journal_path: Path,
    specs: Sequence[JobSpec],
    reference: Dict[str, dict],
    expect_executed: Optional[set] = None,
) -> List[str]:
    """Resume the campaign inline; assert it executes exactly the
    missing keys and that the merged results are bit-identical to the
    fault-free reference."""
    problems: List[str] = []
    executed: List[str] = []

    def counting_run(job, attempt):
        executed.append(job.key)
        return worker.run_job(job, attempt)

    runner = ExperimentRunner(
        RunnerConfig(workers=0, retries=0, journal_path=journal_path,
                     resume=True),
        run_fn=counting_run,
    )
    suite = runner.run(specs)

    if expect_executed is not None and set(executed) != expect_executed:
        problems.append(
            f"resume executed {sorted(executed)}, expected "
            f"{sorted(expect_executed)}"
        )
    if len(suite.outcomes) != len(specs):
        problems.append(
            f"resume finished {len(suite.outcomes)}/{len(specs)} jobs"
        )
    for outcome in suite.outcomes:
        if not outcome.ok:
            problems.append(f"resume failed {outcome.key}: "
                            f"{outcome.message}")
            continue
        result = outcome.result
        as_dict = result.to_dict() if hasattr(result, "to_dict") else result
        if as_dict != reference[outcome.key]:
            problems.append(
                f"results for {outcome.key} are not bit-identical to the "
                f"fault-free reference"
            )
    return problems


# ----------------------------------------------------------------------
# Scenario harness
# ----------------------------------------------------------------------

@dataclass
class ScenarioResult:
    name: str
    passed: bool
    skipped: bool = False
    duration: float = 0.0
    problems: List[str] = field(default_factory=list)

    def banner(self) -> str:
        if self.skipped:
            state = "SKIP"
        else:
            state = "PASS" if self.passed else "FAIL"
        return f"[{state}] {self.name} ({self.duration:.1f}s)"


def _campaign_specs() -> List[JobSpec]:
    """Four cheap-but-real jobs with distinct journal keys."""
    return [
        JobSpec(trace=t, l1d="none", scale=_SCALE, warmup_fraction=wf)
        for t in (_TRACE, _TRACE2)
        for wf in (0.2, 0.25)
    ]


def _supervisor(
    journal: Journal,
    workers: int = 1,
    timeout: Optional[float] = 120.0,
    retries: int = 0,
    sup: Optional[SupervisorConfig] = None,
    **kwargs,
) -> CampaignSupervisor:
    return CampaignSupervisor(
        RunnerConfig(workers=workers, timeout=timeout, retries=retries),
        supervisor=sup or SupervisorConfig(
            heartbeat_every=200, heartbeat_timeout=30.0,
            poll_interval=0.05, handle_signals=False,
        ),
        journal=journal,
        **kwargs,
    )


def _read_manifest(journal_path: Path) -> dict:
    path = journal_path.with_name(journal_path.name + ".manifest.json")
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}


def _event_kinds(manifest: dict) -> List[str]:
    return [e.get("event") for e in manifest.get("events", [])]


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def _scenario_disk_full(workdir: Path) -> List[str]:
    """Appends 2 and 3 hit ENOSPC; nothing may be lost or reordered."""
    specs = _campaign_specs()
    reference = _reference_results(specs)
    journal = ENOSPCJournal(workdir / "journal.jsonl", fail_on=(2, 3))
    suite = _supervisor(journal).run(specs)

    problems = []
    if len(suite.completed) != len(specs):
        problems.append(f"campaign completed {len(suite.completed)}/"
                        f"{len(specs)} jobs under ENOSPC")
    if journal.refused != 2:
        problems.append(f"expected 2 refused appends, saw "
                        f"{journal.refused}")
    problems += verify_journal(journal.path)
    records = journal.load()
    missing = {s.key for s in specs} - set(records)
    if missing:
        problems.append(f"journal lost entries for {sorted(missing)}")
    if "journal-degraded" not in _event_kinds(_read_manifest(journal.path)):
        problems.append("manifest records no journal-degraded event")
    # The backlog was flushed, so a resume replays everything.
    problems += _check_resume(journal.path, specs, reference,
                              expect_executed=set())
    return problems


def _sigkill_campaign(workdir_str: str, kill_on: int) -> None:
    """Child-process body for the sigkill scenario (killed mid-append)."""
    journal = KillerJournal(Path(workdir_str) / "journal.jsonl",
                            kill_on=kill_on)
    _supervisor(journal).run(_campaign_specs())


def _scenario_sigkill(workdir: Path) -> List[str]:
    """SIGKILL mid-journal-append: torn tail, then a perfect resume."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return ["fork start method unavailable (platform)"]
    specs = _campaign_specs()
    reference = _reference_results(specs)
    kill_on = 2
    proc = ctx.Process(target=_sigkill_campaign,
                       args=(str(workdir), kill_on))
    proc.start()
    # Poll is_alive() (waitpid-backed) rather than join(): join waits on
    # a sentinel pipe that surviving grandchildren would hold open, and
    # this scenario is exactly about ungraceful process death.
    deadline = time.monotonic() + 120
    while proc.is_alive() and time.monotonic() < deadline:
        time.sleep(0.05)
    problems = []
    if proc.is_alive():
        proc.kill()
        proc.join()
        problems.append("campaign child did not die within 120s")
    elif proc.exitcode != -signal.SIGKILL:
        problems.append(f"campaign child exited {proc.exitcode}, "
                        f"expected -SIGKILL")

    journal_path = workdir / "journal.jsonl"
    problems += verify_journal(journal_path)
    recorded = {
        key for key, rec in Journal(journal_path).load().items()
        if rec.get("status") == "ok"
    }
    if len(recorded) != kill_on - 1:
        problems.append(
            f"expected {kill_on - 1} durable records before the kill, "
            f"found {len(recorded)}"
        )
    missing = {s.key for s in specs} - recorded
    problems += _check_resume(journal_path, specs, reference,
                              expect_executed=missing)
    return problems


def _scenario_hung_worker(workdir: Path) -> List[str]:
    """A wedged worker must die by heartbeat, not by wall clock."""
    spec = JobSpec(
        trace=_TRACE, l1d="none", scale=_SCALE,
        fault=FaultSpec(kind="hang", hang_seconds=600.0),
    )
    wall_budget = 300.0
    journal = Journal(workdir / "journal.jsonl")
    sup = SupervisorConfig(heartbeat_every=200, heartbeat_timeout=1.0,
                           poll_interval=0.05, handle_signals=False)
    started = time.monotonic()
    suite = _supervisor(journal, timeout=wall_budget, sup=sup).run([spec])
    took = time.monotonic() - started

    problems = []
    outcome = suite.outcomes[0] if suite.outcomes else None
    if outcome is None or outcome.ok:
        problems.append("hung job did not fail")
    else:
        if outcome.error_type != "HeartbeatTimeout":
            problems.append(f"expected HeartbeatTimeout, got "
                            f"{outcome.error_type}: {outcome.message}")
        if outcome.kind != "timeout":
            problems.append(f"expected kind=timeout, got {outcome.kind}")
    if took > wall_budget / 10:
        problems.append(
            f"preemption took {took:.1f}s — not 'well before' the "
            f"{wall_budget:.0f}s wall-clock budget"
        )
    problems += verify_journal(journal.path)
    return problems


def _scenario_balloon(workdir: Path) -> List[str]:
    """A worker over the RSS cap is preempted with a ResourceError."""
    from repro.runner.resources import process_rss_mb

    spec = JobSpec(
        trace=_TRACE, l1d="none", scale=_SCALE,
        fault=FaultSpec(kind="balloon", balloon_mb=256,
                        hang_seconds=600.0),
    )
    journal = Journal(workdir / "journal.jsonl")
    # Forked workers share pages with this process, so the cap is
    # anchored to our own RSS — only the balloon can push a worker over.
    base_rss = process_rss_mb(os.getpid()) or 128.0
    sup = SupervisorConfig(
        heartbeat_every=200, heartbeat_timeout=60.0, poll_interval=0.05,
        handle_signals=False,
        policy=ResourcePolicy(max_worker_rss_mb=base_rss + 128.0),
    )
    # Memory/disk readers are scripted to "plenty" so only the RSS guard
    # (reading the real /proc) can act — the scenario is then immune to
    # whatever the host happens to be doing.
    monitor = ResourceMonitor(
        sup.policy,
        mem_reader=lambda: 65536.0,
        disk_reader=lambda path: 65536.0,
    )
    suite = _supervisor(journal, timeout=600.0, sup=sup,
                        monitor=monitor).run([spec])

    problems = []
    outcome = suite.outcomes[0] if suite.outcomes else None
    if outcome is None or outcome.ok:
        problems.append("ballooning job did not fail")
    else:
        if outcome.kind != "resource":
            problems.append(f"expected kind=resource, got "
                            f"{outcome.kind}: {outcome.message}")
        if outcome.error_type != "ResourceError":
            problems.append(f"expected ResourceError, got "
                            f"{outcome.error_type}")
    kinds = _event_kinds(_read_manifest(journal.path))
    if "rss-preempt" not in kinds:
        problems.append(f"manifest records no rss-preempt event "
                        f"(events: {kinds})")
    problems += verify_journal(journal.path)
    return problems


def _scenario_clock_skew(workdir: Path) -> List[str]:
    """A +120s clock jump mid-campaign must not expire healthy jobs."""
    specs = [
        JobSpec(trace=_TRACE, l1d="none", scale=_SCALE,
                fault=FaultSpec(kind="hang", hang_seconds=1.5)),
        JobSpec(trace=_TRACE2, l1d="none", scale=_SCALE),
    ]
    journal = Journal(workdir / "journal.jsonl")
    clock = SkewedClock(jump=120.0, after=40)
    sup = SupervisorConfig(heartbeat_every=0, poll_interval=0.05,
                           skew_threshold=30.0, handle_signals=False)
    suite = _supervisor(journal, timeout=30.0, sup=sup,
                        now_fn=clock).run(specs)

    problems = []
    if not clock.jumped:
        problems.append("clock never jumped — scenario misconfigured")
    for outcome in suite.outcomes:
        if not outcome.ok:
            problems.append(
                f"{outcome.key} failed after the clock jump "
                f"[{outcome.kind}] {outcome.message}"
            )
    if len(suite.outcomes) != len(specs):
        problems.append(f"only {len(suite.outcomes)}/{len(specs)} "
                        f"outcomes recorded")
    if "clock-skew" not in _event_kinds(_read_manifest(journal.path)):
        problems.append("manifest records no clock-skew event")
    problems += verify_journal(journal.path)
    return problems


SCENARIOS: Dict[str, Callable[[Path], List[str]]] = {
    "disk-full": _scenario_disk_full,
    "sigkill": _scenario_sigkill,
    "hung-worker": _scenario_hung_worker,
    "balloon": _scenario_balloon,
    "clock-skew": _scenario_clock_skew,
}

#: The CI subset: one journal-durability kill, one ENOSPC storm, one
#: liveness preemption — the three invariants a campaign lives or dies by.
QUICK_SCENARIOS = ("disk-full", "sigkill", "hung-worker")


def run_chaos(
    scenarios: Optional[Sequence[str]] = None,
    quick: bool = False,
    workdir: Optional[Union[str, Path]] = None,
    verbose: bool = False,
) -> List[ScenarioResult]:
    """Run chaos scenarios; each gets a private subdirectory.

    ``scenarios`` selects by name (default: all, or ``QUICK_SCENARIOS``
    when ``quick``).  Unknown names raise ``KeyError`` so typos fail
    loudly rather than silently passing.
    """
    names = list(scenarios) if scenarios else (
        list(QUICK_SCENARIOS) if quick else list(SCENARIOS)
    )
    for name in names:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown chaos scenario {name!r}; choose from "
                f"{sorted(SCENARIOS)}"
            )
    base = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    results: List[ScenarioResult] = []
    for name in names:
        subdir = base / name.replace("-", "_")
        subdir.mkdir(parents=True, exist_ok=True)
        started = time.monotonic()
        try:
            problems = SCENARIOS[name](subdir)
            skipped = False
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — harness must report, not die
            problems = [f"scenario crashed: {type(exc).__name__}: {exc}"]
            skipped = False
        result = ScenarioResult(
            name=name,
            passed=not problems,
            skipped=skipped,
            duration=time.monotonic() - started,
            problems=problems,
        )
        results.append(result)
        if verbose:
            print(result.banner())
            for problem in problems:
                print(f"         - {problem}")
    return results
