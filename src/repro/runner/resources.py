"""Host resource guards and the worker heartbeat channel.

Two small, dependency-free facilities the campaign supervisor
(:mod:`repro.runner.supervisor`) builds on:

* **Resource probes** — ``/proc/meminfo`` available memory,
  ``os.statvfs`` free disk, and per-process RSS from
  ``/proc/<pid>/status``.  Every probe degrades to ``None`` on platforms
  without ``/proc`` (or on any read error), and the monitor treats
  ``None`` as "cannot tell → no pressure", so supervision is safe to
  enable anywhere and only *acts* where it can actually observe.
* **Heartbeats** — a worker writes a tiny JSON file every N simulated
  accesses (:class:`Heartbeat`); the supervisor polls it
  (:func:`read_heartbeat`) and treats a stalled sequence number as a
  dead worker.  Progress is detected by *content change observed by the
  supervisor's own clock*, never by comparing worker timestamps, so the
  channel is immune to cross-process clock skew.

All probes are deliberately cheap (one small file read each) — the
supervisor calls them every poll tick.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.errors import ConfigError

__all__ = [
    "Heartbeat",
    "ResourceMonitor",
    "ResourcePolicy",
    "ResourceStatus",
    "disk_free_mb",
    "meminfo_available_mb",
    "process_rss_mb",
    "read_heartbeat",
]

_MB = 1024.0 * 1024.0


# ----------------------------------------------------------------------
# Probes (each returns None when it cannot observe)
# ----------------------------------------------------------------------

def meminfo_available_mb(path: str = "/proc/meminfo") -> Optional[float]:
    """``MemAvailable`` in MB, or ``None`` off-Linux / on read failure."""
    try:
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


def disk_free_mb(path: Union[str, Path]) -> Optional[float]:
    """Free bytes (in MB) on the filesystem holding ``path``."""
    probe = Path(path)
    # statvfs needs an existing path; walk up to the nearest parent.
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            return None
        probe = parent
    try:
        st = os.statvfs(probe)
    except OSError:
        return None
    return st.f_bavail * st.f_frsize / _MB


def process_rss_mb(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MB (``/proc/<pid>/status``)."""
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


# ----------------------------------------------------------------------
# Policy + monitor
# ----------------------------------------------------------------------

@dataclass
class ResourcePolicy:
    """Thresholds below/above which the supervisor degrades the campaign."""

    min_free_memory_mb: float = 256.0   # host MemAvailable floor
    min_free_disk_mb: float = 64.0      # journal/snapshot filesystem floor
    max_worker_rss_mb: Optional[float] = None  # per-worker RSS cap
    recovery_factor: float = 1.5        # hysteresis: recover above floor×this

    def __post_init__(self) -> None:
        if self.min_free_memory_mb < 0:
            raise ConfigError(
                f"min_free_memory_mb must be >= 0, got "
                f"{self.min_free_memory_mb}", field="min_free_memory_mb",
            )
        if self.min_free_disk_mb < 0:
            raise ConfigError(
                f"min_free_disk_mb must be >= 0, got {self.min_free_disk_mb}",
                field="min_free_disk_mb",
            )
        if (self.max_worker_rss_mb is not None
                and self.max_worker_rss_mb <= 0):
            raise ConfigError(
                f"max_worker_rss_mb must be positive, got "
                f"{self.max_worker_rss_mb}", field="max_worker_rss_mb",
            )
        if self.recovery_factor < 1.0:
            raise ConfigError(
                f"recovery_factor must be >= 1, got {self.recovery_factor}",
                field="recovery_factor",
            )


@dataclass
class ResourceStatus:
    """One sample of host pressure, as seen by the monitor."""

    available_mb: Optional[float] = None
    disk_free_mb: Optional[float] = None
    memory_pressure: bool = False
    memory_recovered: bool = True
    disk_pressure: bool = False
    fat_workers: List[int] = field(default_factory=list)  # pids over RSS cap


class ResourceMonitor:
    """Samples host pressure against a :class:`ResourcePolicy`.

    The reader callables are injectable so the chaos harness can script
    deterministic pressure sequences (a fake ``/proc`` that reports low
    memory for exactly N samples) without actually starving the host.
    """

    def __init__(
        self,
        policy: Optional[ResourcePolicy] = None,
        mem_reader: Optional[Callable[[], Optional[float]]] = None,
        disk_reader: Optional[Callable[[Union[str, Path]], Optional[float]]] = None,
        rss_reader: Optional[Callable[[int], Optional[float]]] = None,
    ) -> None:
        self.policy = policy or ResourcePolicy()
        self._mem = mem_reader or meminfo_available_mb
        self._disk = disk_reader or disk_free_mb
        self._rss = rss_reader or process_rss_mb

    def sample(
        self,
        pids: Iterable[int] = (),
        disk_path: Optional[Union[str, Path]] = None,
    ) -> ResourceStatus:
        pol = self.policy
        status = ResourceStatus()
        status.available_mb = self._mem()
        if status.available_mb is not None:
            status.memory_pressure = (
                status.available_mb < pol.min_free_memory_mb
            )
            status.memory_recovered = (
                status.available_mb
                >= pol.min_free_memory_mb * pol.recovery_factor
            )
        if disk_path is not None:
            status.disk_free_mb = self._disk(disk_path)
            if status.disk_free_mb is not None:
                status.disk_pressure = (
                    status.disk_free_mb < pol.min_free_disk_mb
                )
        if pol.max_worker_rss_mb is not None:
            for pid in pids:
                rss = self._rss(pid)
                if rss is not None and rss > pol.max_worker_rss_mb:
                    status.fat_workers.append(pid)
        return status


# ----------------------------------------------------------------------
# Heartbeat channel
# ----------------------------------------------------------------------

class Heartbeat:
    """Worker-side progress pings: one small JSON file, rewritten in place.

    Each ping bumps a sequence number; the supervisor declares progress
    whenever the sequence changes.  Writes are tiny (<200 bytes) and a
    torn read on the supervisor side is simply skipped until the next
    tick, so no locking is needed.
    """

    def __init__(self, path: Union[str, Path], key: str = "") -> None:
        self.path = Path(path)
        self.key = key
        self.total = 0
        self._seq = 0

    def set_total(self, total: int) -> None:
        self.total = total

    def ping(self, accesses: int) -> None:
        self._seq += 1
        payload = {
            "key": self.key,
            "pid": os.getpid(),
            "seq": self._seq,
            "accesses": int(accesses),
            "total": self.total,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w", encoding="utf-8") as fh:
                fh.write(json.dumps(payload))
        except OSError:
            pass  # a heartbeat must never fail the job it reports on


def read_heartbeat(path: Union[str, Path]) -> Optional[Dict]:
    """Parse a heartbeat file; ``None`` for missing/torn files."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    if not isinstance(data, dict) or "seq" not in data:
        return None
    return data
