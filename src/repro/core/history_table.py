"""Berti's history table (paper §III-C, Figures 5 and 6) — kernelized.

An 8-set, 16-way cache with FIFO replacement, indexed and tagged by the
IP.  Each entry records the 24 least-significant bits of the accessed
cache-line address and a 16-bit timestamp.  Entries are inserted on
demand misses and on first demand hits to prefetched lines; searches run
on demand-miss fills and on those prefetch hits, returning the *timely*
local deltas — differences to earlier accesses by the same IP that
happened early enough that a prefetch launched then would have arrived in
time.

Timestamps and line addresses are stored in their hardware widths, so
both wrap; comparisons are wraparound-aware like real hardware would be.

Storage is **columnar**: four flat preallocated ``array('q')`` columns
(tag / line / timestamp / insertion order) indexed ``set * ways + way``,
mirroring PR 2's columnar trace layout, instead of a tuple object per
way.  Each set additionally keeps an *IP-tag skip chain* — a dict from
tag to the deque of ``(line, timestamp)`` pairs held by that tag's ways,
in insertion order.  A skip chain is a skip mask (which ways can match)
augmented with the ring order, so the backward search iterates exactly
the matching entries youngest-first — no ring walk, no per-way tag
compare — and returns immediately for tags with no occupied way.  This
matters because the hot traces concentrate accesses in few IPs: a set's
16 ways are typically all owned by one tag, making a mask-guided ring
walk no cheaper than a full scan.  The search allocates nothing beyond
its (bounded, at most 8-element) result list; callers on the kernel
fill path can pass a reusable list to
:meth:`HistoryTable.search_timely_into` to avoid even that.

The original tuple-row implementation is preserved as
:class:`~repro.core.reference_tables.ReferenceHistoryTable` and drives
the differential lockstep oracle; both produce bit-identical results.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.core.config import BertiConfig


class HistoryTable:
    """IP-indexed access history with timely-delta search (flat rings)."""

    def __init__(self, config: BertiConfig | None = None) -> None:
        self.config = config or BertiConfig()
        cfg = self.config
        sets, ways = cfg.history_sets, cfg.history_ways
        # Flat columnar rings: index = set * ways + way.  tag == -1 marks
        # an empty way (real tags fit history_ip_tag_bits >= 0).
        self._tags = array("q", [-1]) * (sets * ways)
        self._lines = array("q", [0]) * (sets * ways)
        self._tss = array("q", [0]) * (sets * ways)
        self._orders = array("q", [0]) * (sets * ways)
        self._fifo_clock = array("q", [0]) * sets
        self._fifo_ptr = array("q", [0]) * sets  # next way to replace
        # Per-set skip chains: tag -> deque of (line, ts) in insertion
        # order.  Maintained on insert (the evicted way is the set's
        # globally oldest entry, hence its tag's oldest chain element),
        # so a search iterates only matching entries, youngest-first.
        self._chains: List[Dict[int, Deque[Tuple[int, int]]]] = [
            {} for _ in range(sets)
        ]
        self._ts_mask = (1 << cfg.timestamp_bits) - 1
        self._line_mask = (1 << cfg.history_line_bits) - 1
        self._tag_mask = (1 << cfg.history_ip_tag_bits) - 1
        self.inserts = 0
        self.searches = 0

    # ------------------------------------------------------------------

    def _set_index(self, ip: int) -> int:
        # XOR-fold the IP before indexing: x86 instruction addresses have
        # strongly biased low bits, so raw modulo would pile every IP of
        # an aligned code region into one set.
        folded = ip ^ (ip >> 3) ^ (ip >> 7)
        return folded % self.config.history_sets

    def _ip_tag(self, ip: int) -> int:
        return (ip // self.config.history_sets) & self._tag_mask

    def _ts_age(self, now_ts: int, then_ts: int) -> int:
        """Wraparound-aware ``now - then`` over the timestamp width."""
        return (now_ts - then_ts) & self._ts_mask

    # ------------------------------------------------------------------

    def insert(self, ip: int, line: int, now: int) -> None:
        """Record an access (demand miss or first hit on a prefetch)."""
        self.inserts += 1
        cfg = self.config
        sets = cfg.history_sets
        ways = cfg.history_ways
        folded = ip ^ (ip >> 3) ^ (ip >> 7)
        sidx = folded % sets
        # FIFO replacement: a circular pointer over the ways.
        ptr = self._fifo_ptr[sidx]
        self._fifo_ptr[sidx] = (ptr + 1) % ways
        clock = self._fifo_clock[sidx] + 1
        self._fifo_clock[sidx] = clock
        idx = sidx * ways + ptr
        chains = self._chains[sidx]
        old_tag = self._tags[idx]
        if old_tag >= 0:
            dq = chains[old_tag]
            # The replaced way is the set's oldest entry (FIFO), so it
            # is necessarily its tag's oldest chain element.
            dq.popleft()
            if not dq:
                del chains[old_tag]
        tag = (ip // sets) & self._tag_mask
        line_m = line & self._line_mask
        ts = now & self._ts_mask
        self._tags[idx] = tag
        self._lines[idx] = line_m
        self._tss[idx] = ts
        self._orders[idx] = clock
        dq = chains.get(tag)
        if dq is None:
            chains[tag] = dq = deque()
        dq.append((line_m, ts))

    def search_timely(
        self, ip: int, line: int, demand_time: int, latency: int
    ) -> List[int]:
        """Timely local deltas for an access to ``line`` by ``ip``.

        ``demand_time`` is when the core demanded the line and ``latency``
        the measured fetch latency; an earlier access qualifies when it
        happened at or before ``demand_time - latency`` (a prefetch issued
        then would have arrived in time).  Returns at most
        ``max_deltas_per_search`` deltas, youngest qualifying entries
        first, each fitting the 13-bit delta field and non-zero.
        """
        out: List[int] = []
        self.search_timely_into(ip, line, demand_time, latency, out)
        return out

    def search_timely_into(
        self, ip: int, line: int, demand_time: int, latency: int,
        out: List[int],
    ) -> List[int]:
        """Allocation-free variant: appends the deltas to ``out``.

        ``out`` must be empty on entry; the kernel fill path clears and
        reuses one scratch list across searches.
        """
        self.searches += 1
        cfg = self.config
        sets = cfg.history_sets
        folded = ip ^ (ip >> 3) ^ (ip >> 7)
        # Skip chain: exactly the entries inserted by this tag, oldest
        # first.  No occupied way with the tag means the backward walk
        # would filter everything — return without touching the ring.
        dq = self._chains[folded % sets].get(
            (ip // sets) & self._tag_mask
        )
        if not dq:
            return out

        ts_mask = self._ts_mask
        now_ts = demand_time & ts_mask
        line_mask = self._line_mask
        line_masked = line & line_mask
        half_range = 1 << (cfg.timestamp_bits - 1)
        line_bits = cfg.history_line_bits
        sign_bit = 1 << (line_bits - 1)
        delta_lo = -(1 << (cfg.delta_bits - 1))
        delta_hi = (1 << (cfg.delta_bits - 1)) - 1
        max_deltas = cfg.max_deltas_per_search

        # FIFO insertion makes the ring order the age order, and a chain
        # records its tag's entries in exactly that order — so iterating
        # the chain reversed visits this tag's entries youngest-first,
        # matching the reference's backward ring walk over the matching
        # ways (ways older than an empty way are all empty, so no empty
        # way is ever chained, and the visit order and outcome are
        # identical).
        found = 0
        for line_then, ts_then in reversed(dq):
            age = (now_ts - ts_then) & ts_mask
            # Ages beyond half the timestamp range are ambiguous under
            # wraparound; hardware treats them as stale.  Ages below the
            # latency are too recent: a prefetch would have been late.
            if age >= half_range or age < latency:
                continue
            delta = (line_masked - line_then) & line_mask
            if delta & sign_bit:
                delta -= 1 << line_bits
            if delta != 0 and delta_lo <= delta <= delta_hi:
                out.append(delta)
                found += 1
                if found >= max_deltas:
                    break
        return out

    def occupancy(self) -> int:
        return sum(t >= 0 for t in self._tags)

    def reset(self) -> None:
        cfg = self.config
        n = cfg.history_sets * cfg.history_ways
        self._tags = array("q", [-1]) * n
        self._lines = array("q", [0]) * n
        self._tss = array("q", [0]) * n
        self._orders = array("q", [0]) * n
        self._fifo_clock = array("q", [0]) * cfg.history_sets
        self._fifo_ptr = array("q", [0]) * cfg.history_sets
        self._chains = [{} for _ in range(cfg.history_sets)]
        self.inserts = 0
        self.searches = 0

    def __getstate__(self):
        # Per-set chain dicts are keyed-access indexes over the flat ring
        # arrays; each deque's internal order is semantic (ring order)
        # but the dicts' key order is not, and the native importer
        # rebuilds them oldest-first.  Canonicalise for byte-identical
        # snapshots across backends.
        state = self.__dict__.copy()
        state["_chains"] = [dict(sorted(d.items())) for d in self._chains]
        return state
