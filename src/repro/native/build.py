"""Compile and bind the native span kernel.

The kernel source (``kernel.c``) is compiled at first use into a shared
object cached under :func:`cache_dir`, keyed on the SHA-256 of the
kernel source plus the marshal layout digest — editing either produces a
new cache entry, so stale binaries can never be loaded against a
mismatched layout.  The generated ``repro_native_layout.h`` is the only
ABI: ``R_<NAME>``/``FR_<NAME>``/``B_<NAME>`` index defines derived from
:data:`repro.native.marshal.REGISTERS` / ``FREGS`` / ``BUFS``.

No build-time dependencies beyond a C compiler (``$CC``, ``cc``,
``gcc`` or ``clang``); when none is present :func:`kernel_available`
reports the diagnostic and the caller demotes to the batched engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

from . import marshal


class NativeBuildError(RuntimeError):
    """Kernel compilation failed; ``str(exc)`` carries the diagnostic."""


_KERNEL_SRC = Path(__file__).with_name("kernel.c")

#: Memoised (entry_point, diagnostic) — at most one build per process.
_BOUND: Optional[Tuple[Optional[Callable], Optional[str]]] = None


def cache_dir() -> Path:
    """Where built shared objects live (override: ``REPRO_NATIVE_CACHE``)."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def kernel_key() -> str:
    """Cache key: kernel source + layout digest."""
    digest = hashlib.sha256()
    digest.update(_KERNEL_SRC.read_bytes())
    digest.update(marshal.layout_digest().encode("ascii"))
    return digest.hexdigest()[:24]


def layout_header() -> str:
    """The generated ``repro_native_layout.h`` contents."""
    lines = [
        "/* Generated from repro.native.marshal -- do not edit. */",
        "#ifndef REPRO_NATIVE_LAYOUT_H",
        "#define REPRO_NATIVE_LAYOUT_H",
    ]
    for i, name in enumerate(marshal.REGISTERS):
        lines.append(f"#define R_{name} {i}")
    for i, name in enumerate(marshal.FREGS):
        lines.append(f"#define FR_{name} {i}")
    for i, name in enumerate(marshal.BUFS):
        lines.append(f"#define B_{name} {i}")
    lines.append("#endif")
    return "\n".join(lines) + "\n"


def find_compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def build_kernel() -> ctypes.CDLL:
    """Compile (if not cached) and load the kernel shared object."""
    key = kernel_key()
    directory = cache_dir()
    so_path = directory / f"repro_kernel_{key}.so"
    if not so_path.exists():
        cc = find_compiler()
        if cc is None:
            raise NativeBuildError(
                "no C compiler found (tried $CC, cc, gcc, clang)"
            )
        directory.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=str(directory)) as td:
            tdp = Path(td)
            (tdp / "repro_native_layout.h").write_text(layout_header())
            src = tdp / "kernel.c"
            src.write_text(_KERNEL_SRC.read_text())
            tmp_so = tdp / "kernel.so"
            # NOTE: no -ffast-math — the timing model is IEEE doubles
            # and must match CPython bit for bit.
            cmd = [cc, "-O2", "-fPIC", "-shared",
                   "-o", str(tmp_so), str(src)]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                detail = (proc.stderr or proc.stdout or "").strip()
                raise NativeBuildError(
                    f"kernel build failed ({' '.join(cmd)}):\n{detail}"
                )
            os.replace(str(tmp_so), str(so_path))
    lib = ctypes.CDLL(str(so_path))
    fn = lib.repro_run_span
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_int64),
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_void_p),
    ]
    fn.restype = ctypes.c_int64
    return lib


def kernel_available() -> Tuple[Optional[Callable], Optional[str]]:
    """``(entry_point, None)`` or ``(None, diagnostic)``, memoised."""
    global _BOUND
    if _BOUND is None:
        try:
            lib = build_kernel()
            _BOUND = (lib.repro_run_span, None)
        except NativeBuildError as exc:
            _BOUND = (None, str(exc))
        except OSError as exc:  # dlopen failure etc.
            _BOUND = (None, f"kernel load failed: {exc}")
    return _BOUND


def reset_build_cache() -> None:
    """Forget the memoised binding (tests monkeypatch around this)."""
    global _BOUND
    _BOUND = None


def call_span(fn: Callable, state: Any) -> int:
    """Invoke ``repro_run_span`` over a prepared :class:`NativeState`."""
    r_ptr = ctypes.cast(
        state.R.buffer_info()[0], ctypes.POINTER(ctypes.c_int64)
    )
    f_ptr = ctypes.cast(
        state.F.buffer_info()[0], ctypes.POINTER(ctypes.c_double)
    )
    bufs = (ctypes.c_void_p * len(marshal.BUFS))(*state.pointers())
    return int(fn(r_ptr, f_ptr, bufs))
