"""Unit tests for the MSHR model."""

import pytest

from repro.errors import SimulationError
from repro.memory.mshr import MSHR


class TestAllocation:
    def test_allocate_and_lookup(self):
        m = MSHR(4)
        e = m.allocate(line=10, now=0, ready_cycle=100, is_prefetch=False)
        assert m.lookup(10, 50) is e

    def test_entry_expires_at_ready(self):
        m = MSHR(4)
        m.allocate(10, 0, 100, False)
        assert m.lookup(10, 100) is None

    def test_occupancy_counts_outstanding(self):
        m = MSHR(4)
        m.allocate(1, 0, 100, False)
        m.allocate(2, 0, 200, False)
        assert m.occupancy(50) == 2
        assert m.occupancy(150) == 1
        assert m.occupancy(250) == 0

    def test_occupancy_fraction(self):
        m = MSHR(4)
        m.allocate(1, 0, 100, False)
        assert m.occupancy_fraction(0) == 0.25

    def test_full_raises(self):
        m = MSHR(1)
        m.allocate(1, 0, 100, False)
        with pytest.raises(SimulationError, match="MSHR full"):
            m.allocate(2, 0, 100, False)
        assert m.full_rejections == 1

    def test_can_allocate_after_expiry(self):
        m = MSHR(1)
        m.allocate(1, 0, 100, False)
        assert not m.can_allocate(50)
        assert m.can_allocate(100)

    def test_allocation_counter(self):
        m = MSHR(8)
        for i in range(5):
            m.allocate(i, 0, 10 + i, False)
        assert m.allocations == 5


class TestMerging:
    def test_merge_returns_remaining_latency(self):
        m = MSHR(4)
        e = m.allocate(5, 0, 100, False)
        assert m.merge_demand(e, 40) == 60
        assert m.merges == 1

    def test_merge_after_ready_is_zero(self):
        m = MSHR(4)
        e = m.allocate(5, 0, 100, False)
        assert m.merge_demand(e, 100) == 0

    def test_merged_demand_count(self):
        m = MSHR(4)
        e = m.allocate(5, 0, 100, True)
        m.merge_demand(e, 10)
        m.merge_demand(e, 20)
        assert e.merged_demands == 2


class TestEarliestReady:
    def test_empty_returns_now(self):
        m = MSHR(4)
        assert m.earliest_ready(123) == 123

    def test_returns_minimum(self):
        m = MSHR(4)
        m.allocate(1, 0, 300, False)
        m.allocate(2, 0, 150, False)
        m.allocate(3, 0, 200, False)
        assert m.earliest_ready(0) == 150

    def test_min_tracks_expiry(self):
        m = MSHR(4)
        m.allocate(1, 0, 100, False)
        m.allocate(2, 0, 200, False)
        assert m.earliest_ready(120) == 200


class TestMetadata:
    def test_timestamp_and_flags_stored(self):
        m = MSHR(4)
        e = m.allocate(7, now=42, ready_cycle=99, is_prefetch=True, ip=0xAB, vline=77)
        assert e.alloc_cycle == 42
        assert e.is_prefetch
        assert e.ip == 0xAB
        assert e.vline == 77

    def test_reset_clears_everything(self):
        m = MSHR(4)
        m.allocate(1, 0, 100, False)
        m.reset()
        assert m.occupancy(0) == 0
        assert m.allocations == 0

    def test_outstanding_snapshot(self):
        m = MSHR(4)
        m.allocate(1, 0, 100, False)
        m.allocate(2, 0, 50, False)
        assert {e.line for e in m.outstanding(60)} == {1}
