"""Pythia-lite: a tabular reinforcement-learning prefetcher.

The paper (§V) compares against Pythia (Bera et al., MICRO 2021), an
online-RL L2 prefetcher, and reports that with Berti at the L1D, Pythia
adds under 1 %.  This is a faithful-in-spirit, reduced implementation of
Pythia's scheme:

* **state** — a feature vector of the access: (PC hash, page offset,
  last intra-page delta), hashed into a Q-table index;
* **actions** — a fixed list of candidate prefetch offsets (including
  "no prefetch");
* **reward** — assigned when the outcome of an issued prefetch is known:
  positive for a demand hit on the prefetched line (more if timely),
  negative for an eviction without use or for polluting traffic;
  a small positive reward for correctly choosing *no prefetch* when the
  next access would not have been covered (approximated by decay);
* **policy** — epsilon-greedy over Q(s, a), SARSA-style update.

Like real Pythia it sits at the L2 and fills L2.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.prefetchers.base import (
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)

_LINES_PER_PAGE = 64

ACTIONS: Tuple[int, ...] = (0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, -1, -2, -4)


class PythiaLitePrefetcher(Prefetcher):
    """Tabular-RL offset selection (reduced Pythia)."""

    name = "pythia_lite"
    level = "l2"

    def __init__(
        self,
        q_entries: int = 4096,
        epsilon: float = 0.03,
        alpha: float = 0.25,
        gamma: float = 0.5,
        reward_timely: float = 2.0,
        reward_late: float = 1.0,
        reward_useless: float = -2.0,
        seed: int = 0,
    ) -> None:
        self.q_entries = q_entries
        self.epsilon = epsilon
        self.alpha = alpha
        self.gamma = gamma
        self.reward_timely = reward_timely
        self.reward_late = reward_late
        self.reward_useless = reward_useless
        self._rng = random.Random(seed)
        # Q-table: state index -> list of action values.
        self._q: List[List[float]] = [
            [0.0] * len(ACTIONS) for _ in range(q_entries)
        ]
        # line -> (state, action) of the prefetch that fetched it.
        self._inflight: Dict[int, Tuple[int, int]] = {}
        # per-page last offset, for the delta feature.
        self._last_offset: Dict[int, int] = {}
        self._prev_sa: Tuple[int, int] | None = None
        self.issued = 0

    # ------------------------------------------------------------------

    def _state(self, ip: int, line: int) -> int:
        page = line // _LINES_PER_PAGE
        offset = line % _LINES_PER_PAGE
        last = self._last_offset.get(page, offset)
        delta = (offset - last) & 0x7F
        h = (ip * 0x9E3779B1) ^ (offset << 7) ^ (delta << 13)
        return h % self.q_entries

    def _choose(self, state: int) -> int:
        if self._rng.random() < self.epsilon:
            return self._rng.randrange(len(ACTIONS))
        row = self._q[state]
        return max(range(len(ACTIONS)), key=row.__getitem__)

    def _update(self, state: int, action: int, reward: float,
                next_state: int | None) -> None:
        row = self._q[state]
        target = reward
        if next_state is not None:
            target += self.gamma * max(self._q[next_state])
        row[action] += self.alpha * (target - row[action])

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        line = access.line
        page = line // _LINES_PER_PAGE
        offset = line % _LINES_PER_PAGE
        state = self._state(access.ip, line)

        # SARSA bootstrap from the previous decision.
        if self._prev_sa is not None:
            ps, pa = self._prev_sa
            self._update(ps, pa, 0.0, state)

        action = self._choose(state)
        self._prev_sa = (state, action)
        self._last_offset[page] = offset
        if len(self._last_offset) > 512:
            self._last_offset.pop(next(iter(self._last_offset)))

        delta = ACTIONS[action]
        if delta == 0:
            return []
        target_offset = offset + delta
        if not 0 <= target_offset < _LINES_PER_PAGE:
            return []
        target = page * _LINES_PER_PAGE + target_offset
        self._inflight[target] = (state, action)
        if len(self._inflight) > 2048:
            self._inflight.pop(next(iter(self._inflight)))
        self.issued += 1
        return [PrefetchRequest(line=target, fill_level=FILL_L2)]

    def on_prefetch_hit(self, access: AccessInfo, pf_latency: int) -> None:
        sa = self._inflight.pop(access.line, None)
        if sa is not None:
            reward = self.reward_timely if pf_latency else self.reward_late
            self._update(sa[0], sa[1], reward, None)

    def on_evict(self, line: int, was_useful: bool) -> None:
        sa = self._inflight.pop(line, None)
        if sa is not None and not was_useful:
            self._update(sa[0], sa[1], self.reward_useless, None)

    def storage_bits(self) -> int:
        # Q-table: entries x actions x 8-bit quantised values, plus the
        # in-flight tracker (Pythia's EQ) and feature state.
        return self.q_entries * len(ACTIONS) * 8 + 2048 * 30 + 512 * 22

    def reset(self) -> None:
        self._q = [[0.0] * len(ACTIONS) for _ in range(self.q_entries)]
        self._inflight.clear()
        self._last_offset.clear()
        self._prev_sa = None
        self.issued = 0
