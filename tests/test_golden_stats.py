"""Bit-identical guard for the hot-path-optimised engine.

``tests/golden/simcore_golden.json`` was recorded with the seed (PR 1)
engine.  These tests assert the current engine reproduces every counter
of every golden run bit-for-bit, so performance work on the demand and
prefetch paths cannot silently change simulation semantics.  See
``tests/golden/record_golden.py`` for the matrix and how to regenerate.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_GOLDEN_DIR = Path(__file__).parent / "golden"
_GOLDEN_JSON = _GOLDEN_DIR / "simcore_golden.json"


def _load_recorder():
    spec = importlib.util.spec_from_file_location(
        "record_golden", _GOLDEN_DIR / "record_golden.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def recorder():
    return _load_recorder()


@pytest.fixture(scope="module")
def golden():
    with open(_GOLDEN_JSON) as fh:
        return json.load(fh)


@pytest.fixture(scope="module", params=["optimized", "batched"])
def current(recorder, request):
    # Both inner loops replay the same reference-recorded golden JSON:
    # the classic per-record engine and the batched columnar one.
    return recorder.run_golden_matrix(engine=request.param)


class TestGoldenMatrix:
    def test_same_run_keys(self, golden, current):
        assert sorted(current) == sorted(golden)

    def test_bit_identical_counters(self, golden, current):
        # Compare per run and per counter so a mismatch names the exact
        # counter that drifted rather than dumping two whole dicts.
        for key in sorted(golden):
            got, want = current[key], golden[key]
            assert sorted(got) == sorted(want), f"stat keys changed in {key}"
            for stat in sorted(want):
                assert got[stat] == want[stat], (
                    f"{key}: {stat} = {got[stat]!r}, golden {want[stat]!r}"
                )

    def test_golden_covers_both_engines(self, golden):
        pfs = {key.rsplit("#", 1)[1] for key in golden}
        assert pfs == {
            "none", "berti", "berti_page", "berti+l1d_srrip", "berti,none"
        }

    def test_golden_covers_multicore_and_srrip(self, golden):
        assert "mc:bfs-kron+mcf_s-1554B@0.1#berti,none" in golden
        assert "synth:golden@0.0#berti+l1d_srrip" in golden


class TestDeterminism:
    """Two fresh runs of the same config must agree exactly."""

    @pytest.mark.parametrize("pf_name", ["none", "berti"])
    def test_repeat_run_identical(self, recorder, pf_name):
        from repro.prefetchers.registry import make_prefetcher
        from repro.simulator.engine import simulate

        trace = recorder.build_golden_trace("synth:golden", 0.0)
        first = simulate(trace, l1d_prefetcher=make_prefetcher(pf_name))
        second = simulate(trace, l1d_prefetcher=make_prefetcher(pf_name))
        assert first.to_dict() == second.to_dict()

    def test_repeat_run_identical_catalog_trace(self, recorder):
        from repro.prefetchers.registry import make_prefetcher
        from repro.simulator.engine import simulate

        trace = recorder.build_golden_trace("mcf_s-1554B", 0.05)
        runs = [
            simulate(trace, l1d_prefetcher=make_prefetcher("berti")).to_dict()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
