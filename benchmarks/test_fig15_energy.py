"""Figure 15: dynamic energy of the memory hierarchy normalised to no
prefetching, including multi-level combinations.

Paper reference: SPEC — Berti +9.0 % vs MLOP +29.1 % / IPCP +30.1 %;
GAP — Berti +14.3 % ≈ MLOP +14.2 % (MLOP issues very little there) and
IPCP +86.9 %.  Bingo/SPP-PPF on top add large energy, especially Bingo
on GAP (+60 % over the L1D prefetcher alone).
"""

from common import (
    gap_traces,
    once,
    run,
    run_matrix,
    run_multilevel,
    save_report,
    spec_traces,
)

from repro.analysis.report import format_table
from repro.energy import EnergyModel

NAMES = ["ip_stride", "mlop", "ipcp", "berti"]
COMBOS = [("berti", "bingo"), ("berti", "spp_ppf")]


def test_fig15_energy(benchmark):
    def compute():
        em = EnergyModel()
        rows = []
        for suite, traces in (("SPEC17", spec_traces()), ("GAP", gap_traces())):
            matrix = run_matrix(traces, ["none"] + NAMES)
            multi = run_multilevel(traces, COMBOS)
            for name in NAMES:
                e = sum(
                    em.normalised(matrix[t.name][name], matrix[t.name]["none"])
                    for t in traces
                ) / len(traces)
                rows.append([suite, name, e])
            for a, b in COMBOS:
                key = f"{a}+{b}"
                e = sum(
                    em.normalised(multi[t.name][key], matrix[t.name]["none"])
                    for t in traces
                ) / len(traces)
                rows.append([suite, key, e])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig15_energy",
        format_table(
            ["suite", "configuration", "energy vs no-pf"], rows,
            title=(
                "Figure 15 — normalised dynamic energy\n"
                "(paper: Berti lowest among L1D prefetchers; L2 prefetchers"
                " on top add substantial energy)"
            ),
        ),
    )

    by = {(s, n): e for s, n, e in rows}
    # Berti consumes the least extra energy among aggressive prefetchers
    # on SPEC (IP-stride is conservative and may be lower still).
    assert by[("SPEC17", "berti")] <= by[("SPEC17", "mlop")] + 0.03
    assert by[("SPEC17", "berti")] <= by[("SPEC17", "ipcp")] + 0.03
    # L2 prefetchers on top of Berti increase energy.
    assert by[("GAP", "berti+bingo")] >= by[("GAP", "berti")] - 0.02
