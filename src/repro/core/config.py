"""Berti configuration and storage accounting (paper Table I).

Every hardware parameter of the prefetcher lives here so the sensitivity
studies (Figures 21 and 22) and the ablations can build variants by
replacing fields.  :meth:`BertiConfig.storage_bits` reproduces the Table I
breakdown; with the defaults it totals 2.55 KB.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError


def _pow2_floor(n: int) -> int:
    """Largest power of two <= max(1, n)."""
    n = max(1, n)
    return 1 << (n.bit_length() - 1)


@dataclass(frozen=True)
class BertiConfig:
    # History table: 8-set, 16-way, FIFO, IP-indexed (Figure 5/6).
    history_sets: int = 8
    history_ways: int = 16
    history_ip_tag_bits: int = 7
    history_line_bits: int = 24
    timestamp_bits: int = 16

    # Table of deltas: 16-entry fully associative, FIFO (Figure 6).
    delta_table_entries: int = 16
    deltas_per_entry: int = 16
    delta_tag_bits: int = 10
    counter_bits: int = 4
    delta_bits: int = 13
    coverage_bits: int = 4
    status_bits: int = 2

    # Learning-phase length: the 4-bit counter overflows at 16 searches.
    counter_max: int = 16
    # Up to 8 timely deltas collected per history search (§III-C).
    max_deltas_per_search: int = 8
    # At most 12 deltas may hold a prefetch status (§III-C).
    max_prefetch_deltas: int = 12

    # Coverage watermarks (§III-B/III-C and Figure 21).
    high_watermark: float = 0.65      # above → fill to L1D
    medium_watermark: float = 0.35    # above → fill to L2
    low_watermark: float = 0.35       # LLC tier disabled (== medium)
    warmup_watermark: float = 0.80    # high watermark during warmup
    warmup_min_searches: int = 8      # searches gathered before warmup issue
    repl_watermark: float = 0.50      # below → L2_pref_repl (evictable)
    mshr_watermark: float = 0.70      # L1D fills gated on MSHR occupancy

    # Per-L1D-line latency field and PQ/MSHR timestamps (Table I).
    latency_bits: int = 12
    pq_entries: int = 16
    mshr_entries: int = 16
    l1d_lines: int = 768

    # §IV-J ablation: issue (or suppress) prefetches that cross a 4 KB page.
    cross_page: bool = True

    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        if self.history_sets < 1 or self.history_sets & (self.history_sets - 1):
            raise ConfigError(
                f"history_sets must be a power of two, got {self.history_sets}",
                field="history_sets",
            )
        for name in ("history_ways", "delta_table_entries", "deltas_per_entry",
                     "max_deltas_per_search", "max_prefetch_deltas",
                     "counter_max", "latency_bits", "pq_entries",
                     "mshr_entries", "l1d_lines"):
            if getattr(self, name) < 1:
                raise ConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}",
                    field=name,
                )
        if not 0.0 <= self.medium_watermark <= self.high_watermark <= 1.0:
            raise ConfigError(
                "watermarks must satisfy 0 <= medium <= high <= 1, got "
                f"medium={self.medium_watermark} high={self.high_watermark}",
                field="medium_watermark",
            )
        if not 0.0 <= self.low_watermark <= 1.0:
            raise ConfigError(
                f"low_watermark must be in [0, 1], got {self.low_watermark}",
                field="low_watermark",
            )

    def scaled(self, factor: float) -> "BertiConfig":
        """History/delta tables scaled by ``factor`` (Figure 22 sweep).

        Scales the history table's set count (rounded down to a power of
        two, the only legal geometry for an index) and the number of
        delta-table entries; the per-entry delta count is scaled
        separately via :meth:`with_deltas_per_entry`.
        """
        return replace(
            self,
            history_sets=_pow2_floor(int(self.history_sets * factor)),
            delta_table_entries=max(1, int(self.delta_table_entries * factor)),
        )

    def with_deltas_per_entry(self, count: int) -> "BertiConfig":
        return replace(self, deltas_per_entry=max(1, count))

    def with_watermarks(self, high: float, medium: float) -> "BertiConfig":
        if not 0.0 <= medium <= high <= 1.0:
            raise ConfigError(
                "watermarks must satisfy 0 <= medium <= high <= 1, got "
                f"medium={medium} high={high}",
                field="medium_watermark",
            )
        return replace(
            self, high_watermark=high, medium_watermark=medium,
            low_watermark=medium,
        )

    # ------------------------------------------------------------------
    # Table I storage accounting
    # ------------------------------------------------------------------

    def history_table_bits(self) -> int:
        entry = self.history_ip_tag_bits + self.history_line_bits + self.timestamp_bits
        # Each set keeps 4 bits of FIFO replacement state (Table I).
        return self.history_sets * (self.history_ways * entry + 4)

    def delta_table_bits(self) -> int:
        per_delta = self.delta_bits + self.coverage_bits + self.status_bits
        entry = (
            self.delta_tag_bits
            + self.counter_bits
            + self.deltas_per_entry * per_delta
        )
        # 4-bit FIFO pointer for the fully-associative table.
        return self.delta_table_entries * entry + 4

    def queue_timestamp_bits(self) -> int:
        return (self.pq_entries + self.mshr_entries) * self.timestamp_bits

    def l1d_latency_field_bits(self) -> int:
        return self.l1d_lines * self.latency_bits

    def storage_bits(self) -> int:
        return (
            self.history_table_bits()
            + self.delta_table_bits()
            + self.queue_timestamp_bits()
            + self.l1d_latency_field_bits()
        )

    def storage_kb(self) -> float:
        return self.storage_bits() / 8 / 1024

    def storage_breakdown_kb(self) -> dict:
        """Per-structure storage in KB (rows of Table I)."""
        return {
            "history_table": self.history_table_bits() / 8 / 1024,
            "table_of_deltas": self.delta_table_bits() / 8 / 1024,
            "pq_mshr_timestamps": self.queue_timestamp_bits() / 8 / 1024,
            "l1d_latency_fields": self.l1d_latency_field_bits() / 8 / 1024,
            "total": self.storage_kb(),
        }
