"""Unit tests for the set-associative cache model."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache


def make_cache(**kw):
    defaults = dict(name="t", size_bytes=8 * 64 * 4, ways=4, latency=5)
    defaults.update(kw)
    return Cache(**defaults)


class TestGeometry:
    def test_num_sets(self):
        c = make_cache()
        assert c.num_sets == 8
        assert c.num_lines == 32

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            Cache("bad", size_bytes=1000, ways=3, latency=1)


class TestLookupFill:
    def test_miss_then_hit(self):
        c = make_cache()
        assert c.lookup(100) is None
        c.fill(100, now=0, arrival_cycle=10, is_prefetch=False)
        assert c.lookup(100) is not None
        assert c.stats.demand_hits == 1
        assert c.stats.demand_misses == 1

    def test_probe_has_no_side_effects(self):
        c = make_cache()
        c.fill(100, 0, 0, False)
        before = dataclasses.asdict(c.stats)
        assert c.probe(100)
        assert not c.probe(101)
        assert dataclasses.asdict(c.stats) == before

    def test_fill_evicts_within_set(self):
        c = make_cache(ways=2, size_bytes=2 * 64 * 2)  # 2 sets, 2 ways
        lines = [0, 2, 4]  # all map to set 0
        for ln in lines:
            c.fill(ln, 0, 0, False)
        present = [ln for ln in lines if c.probe(ln)]
        assert len(present) == 2

    def test_eviction_returns_dirty_victim(self):
        c = make_cache(ways=1, size_bytes=64)
        c.fill(0, 0, 0, False)
        c.mark_dirty(0)
        victim = c.fill(1, 0, 0, False)  # any line maps to set 0
        assert victim is not None and victim.dirty and victim.tag == 0
        assert c.stats.writebacks == 1

    def test_refill_existing_line_no_eviction(self):
        c = make_cache()
        c.fill(5, 0, 100, False)
        victim = c.fill(5, 0, 50, False)
        assert victim is None
        assert c.peek(5).arrival_cycle == 50  # earlier arrival wins

    def test_occupancy(self):
        c = make_cache()
        for i in range(10):
            c.fill(i, 0, 0, False)
        assert c.occupancy() == 10


class TestPrefetchMetadata:
    def test_prefetch_fill_marks_line(self):
        c = make_cache()
        c.fill(9, 0, 50, is_prefetch=True, pf_latency=40, pf_origin="l1d")
        cl = c.peek(9)
        assert cl.prefetched and cl.pf_latency == 40 and cl.pf_origin == "l1d"
        assert c.stats.prefetch_fills == 1

    def test_demand_touch_timely(self):
        c = make_cache()
        c.fill(9, 0, 50, is_prefetch=True)
        cl = c.lookup(9)
        was_pf, was_late, wait = c.demand_touch(cl, now=60)
        assert was_pf and not was_late and wait == 0
        assert c.stats.useful_prefetches == 1
        assert c.stats.late_prefetches == 0

    def test_demand_touch_late(self):
        c = make_cache()
        c.fill(9, 0, 100, is_prefetch=True)
        cl = c.lookup(9)
        was_pf, was_late, wait = c.demand_touch(cl, now=40)
        assert was_pf and was_late and wait == 60
        assert c.stats.late_prefetches == 1

    def test_second_touch_not_counted(self):
        c = make_cache()
        c.fill(9, 0, 0, is_prefetch=True)
        cl = c.lookup(9)
        c.demand_touch(cl, 10)
        was_pf, __, __ = c.demand_touch(cl, 20)
        assert not was_pf
        assert c.stats.useful_prefetches == 1

    def test_unused_prefetch_eviction_counts_useless(self):
        c = make_cache(ways=1, size_bytes=64)
        c.fill(0, 0, 0, is_prefetch=True)
        c.fill(1, 0, 0, is_prefetch=False)
        assert c.stats.useless_prefetches == 1

    def test_demand_fill_clears_prefetch_flag_on_refill(self):
        c = make_cache()
        c.fill(9, 0, 0, is_prefetch=True)
        c.fill(9, 0, 0, is_prefetch=False)
        assert not c.peek(9).prefetched


class TestEvictionHook:
    def test_hook_called_with_victim(self):
        # The hook sees the live line before it is reused for the incoming
        # fill, so it must copy any fields it wants to retain.
        seen = []
        c = make_cache(ways=1, size_bytes=64)
        c.eviction_hook = lambda cl: seen.append((cl.tag, cl.prefetched))
        c.fill(0, 0, 0, is_prefetch=True, pf_origin="l1d")
        c.fill(1, 0, 0, False)
        assert seen == [(0, True)]


class TestInvalidate:
    def test_invalidate_present(self):
        c = make_cache()
        c.fill(3, 0, 0, False)
        assert c.invalidate(3)
        assert not c.probe(3)

    def test_invalidate_absent(self):
        c = make_cache()
        assert not c.invalidate(3)

    def test_refill_after_invalidate(self):
        c = make_cache()
        c.fill(3, 0, 0, False)
        c.invalidate(3)
        c.fill(3, 0, 0, False)
        assert c.probe(3)


class TestPresenceIndexInvariant:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    def test_index_matches_arrays(self, lines):
        """The O(1) presence index always agrees with the tag arrays."""
        c = make_cache(ways=2, size_bytes=4 * 64 * 2)
        for ln in lines:
            c.fill(ln, 0, 0, False)
        in_arrays = {
            cl.tag for s in c.sets for cl in s if cl.valid
        }
        assert set(c._where) == in_arrays
        for ln in in_arrays:
            assert c.probe(ln)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=100))
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = make_cache(ways=2, size_bytes=2 * 64 * 2)
        for ln in lines:
            c.fill(ln, 0, 0, bool(ln % 2))
        assert c.occupancy() <= c.num_lines
