"""Campaign driver: budgeted, deterministic fuzz runs + corpus replay.

A campaign is **planned before it runs**: the budget is converted to a
fixed case count at a nominal throughput (``rate`` cases/second) and the
full ``(family, seed)`` list is derived from the master seed up front.
Two campaigns with the same seed therefore enumerate byte-identical
cases — on any machine, at any load — which is what makes "CI found a
bucket that main's run did not" a meaningful signal instead of noise.

Wall-clock enters only as a *safety valve*: a run that exceeds three
budgets of real time stops early and is marked ``truncated`` in the
report, so a pathological case cannot wedge CI, while a truncated
report is visibly not comparable to a full one.

Each new finding is auto-shrunk (one shrink per bucket — minimising five
duplicates of one root cause is wasted oracle time) and written to
``<out>/cases/<case_id>.json``, replayable with ``repro fuzz --replay``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Dict, List, Optional

from repro.durability import atomic_write_json
from repro.errors import FuzzError
from repro.fuzz.cases import FuzzCase, load_case
from repro.fuzz.corruption import corruption_matrix
from repro.fuzz.generators import FAMILIES, generate_case
from repro.fuzz.oracle import run_case
from repro.fuzz.shrink import shrink_case

__all__ = ["CampaignReport", "plan_cases", "run_campaign", "replay_corpus"]

REPORT_SCHEMA = 1

#: Nominal oracle throughput used to convert a time budget into a fixed
#: case count.  Deliberately conservative (the oracle sustains ~5/s on
#: a cold laptop) so the planned work fits the budget with slack.
NOMINAL_RATE = 2.0

#: A campaign may overrun its nominal budget by this factor before the
#: wall-clock safety valve truncates it.
WALL_CAP_FACTOR = 3.0


@dataclass
class CampaignReport:
    seed: int
    budget_seconds: float
    planned: int
    cases_run: int = 0
    truncated: bool = False
    buckets: Dict[str, List[str]] = field(default_factory=dict)
    findings: List[Dict[str, Any]] = field(default_factory=list)
    shrunk: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    corruption: Optional[Dict[str, Any]] = None
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        corruption_ok = (self.corruption is None
                         or not self.corruption["findings"])
        return not self.findings and corruption_ok

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "budget_seconds": self.budget_seconds,
            "planned": self.planned,
            "cases_run": self.cases_run,
            "truncated": self.truncated,
            "buckets": {k: sorted(v) for k, v in sorted(self.buckets.items())},
            "findings": self.findings,
            "shrunk": self.shrunk,
            "corruption": self.corruption,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "ok": self.ok,
        }


def plan_cases(seed: int, n_cases: int,
               plant_divergence: Optional[int] = None) -> List[FuzzCase]:
    """The full deterministic case list for a campaign seed.

    Families rotate round-robin (every family gets coverage even in a
    10-case smoke run); per-case seeds come from one master stream, so
    the list depends only on ``(seed, n_cases, plant_divergence)``.
    """
    master = Random(seed)
    cases = [generate_case(FAMILIES[i % len(FAMILIES)],
                           master.randrange(2 ** 63))
             for i in range(n_cases)]
    if plant_divergence is not None:
        cases.append(_planted_case(master.randrange(2 ** 63),
                                   plant_divergence))
    return cases


def _planted_case(seed: int, plant_at: int) -> FuzzCase:
    """A sentinel with a latency perturbation seeded into one engine.

    The plant lives in the *harness* (``lockstep_engines`` perturbs the
    classic side's demand latency at access ``plant_at``), so this case
    exercises the full find→bucket→shrink pipeline end to end without
    shipping a broken engine.
    """
    base = generate_case("degenerate-stride", seed)
    config = dict(base.config)
    config["l1d"] = "berti"
    config["plant_divergence"] = min(plant_at, max(1, len(base.records) - 2))
    return FuzzCase(
        family=base.family, seed=seed, records=base.records, config=config,
        provenance=(f"planted divergence at access "
                    f"{config['plant_divergence']}; {base.provenance}"),
    )


def run_campaign(
    budget_seconds: float,
    seed: int,
    out_dir,
    rate: float = NOMINAL_RATE,
    plant_divergence: Optional[int] = None,
    skip_corruption: bool = False,
    max_shrink_records: int = 64,
    log=None,
) -> CampaignReport:
    """Plan, run, bucket, shrink, and persist one campaign."""
    out_dir = Path(out_dir)
    case_dir = out_dir / "cases"
    case_dir.mkdir(parents=True, exist_ok=True)
    n_cases = max(1, int(budget_seconds * rate))
    cases = plan_cases(seed, n_cases, plant_divergence)
    report = CampaignReport(seed=seed, budget_seconds=budget_seconds,
                            planned=len(cases))
    start = time.monotonic()
    deadline = start + budget_seconds * WALL_CAP_FACTOR

    for case in cases:
        if time.monotonic() > deadline:
            report.truncated = True
            break
        report.cases_run += 1
        finding = run_case(case)
        if finding is None:
            continue
        sig = finding.signature
        fresh_bucket = sig not in report.buckets
        report.buckets.setdefault(sig, []).append(case.case_id)
        report.findings.append(finding.to_dict())
        if log:
            log(f"finding {sig} in {case.case_id} ({case.family})")
        if not fresh_bucket:
            continue  # one shrink per bucket: same root cause
        result = shrink_case(case, sig, max_records=max_shrink_records)
        path = result.case.save(case_dir / f"{result.case.case_id}.json")
        report.shrunk[sig] = {
            "case_id": result.case.case_id,
            "path": str(path),
            "records": len(result.case.records),
            "from_records": result.original_records,
            "evaluations": result.evaluations,
            "exhausted": result.exhausted,
        }
        if log:
            log(f"shrunk {case.case_id} -> {result.case.case_id} "
                f"({result.original_records} -> "
                f"{len(result.case.records)} records)")

    if not skip_corruption:
        matrix = corruption_matrix(out_dir / "corruption", seed=seed)
        report.corruption = matrix.to_dict()
        for f in matrix.findings:
            report.buckets.setdefault(f["signature"], []).append(
                f"{f['format']}:{f['mutation']}")
            report.findings.append(f)

    report.elapsed_seconds = time.monotonic() - start
    atomic_write_json(out_dir / "report.json", report.to_dict())
    return report


def replay_corpus(corpus_dir) -> List[Dict[str, Any]]:
    """Re-run every committed case; sentinel expectations are asserted.

    A case with ``expect_finding`` must reproduce *exactly that bucket*;
    any other case must run clean.  Malformed case files are failures,
    not skips — a corpus that silently shrinks is how regressions creep
    back in.
    """
    corpus_dir = Path(corpus_dir)
    results: List[Dict[str, Any]] = []
    paths = sorted(corpus_dir.glob("*.json"))
    if not paths:
        raise FuzzError(f"corpus directory {corpus_dir} has no case files",
                        field="fuzz_corpus")
    for path in paths:
        entry: Dict[str, Any] = {"path": path.name}
        try:
            case = load_case(path)
        except FuzzError as exc:
            entry.update(status="malformed", detail=str(exc))
            results.append(entry)
            continue
        entry["case_id"] = case.case_id
        finding = run_case(case)
        expected = case.expect_finding
        if expected is None:
            if finding is None:
                entry.update(status="ok", detail="ran clean")
            else:
                entry.update(status="failed",
                             detail=f"new finding {finding.signature}: "
                                    f"{finding.detail}")
        else:
            if finding is None:
                entry.update(status="failed",
                             detail=f"sentinel no longer reproduces "
                                    f"{expected}")
            elif finding.signature != expected:
                entry.update(status="failed",
                             detail=f"sentinel moved buckets: expected "
                                    f"{expected}, got {finding.signature}")
            else:
                entry.update(status="ok",
                             detail=f"sentinel reproduced {expected}")
        results.append(entry)
    return results
