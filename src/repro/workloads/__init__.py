"""Workload generators standing in for the paper's trace suites."""

from repro.workloads.cloudsuite_like import cloudsuite_suite
from repro.workloads.gap import gap_suite, gap_trace
from repro.workloads.mixes import random_mixes
from repro.workloads.spec_like import spec17_suite, stream_trace
from repro.workloads.trace import Trace, concatenate, interleave

__all__ = [
    "Trace",
    "concatenate",
    "interleave",
    "spec17_suite",
    "stream_trace",
    "gap_suite",
    "gap_trace",
    "cloudsuite_suite",
    "random_mixes",
]
