"""Resilient experiment runner: fault-isolated parallel execution with
retry, timeout, checkpoint/resume — and, via the campaign supervisor,
heartbeat liveness, resource-aware degradation, circuit breakers, and
graceful shutdown.

Quick use::

    from repro.runner import ExperimentRunner, RunnerConfig, JobSpec

    jobs = [JobSpec(trace="mcf_s-1554B", l1d=pf, scale=0.3)
            for pf in ("ip_stride", "mlop", "berti")]
    runner = ExperimentRunner(RunnerConfig(
        workers=4, timeout=300, retries=1, journal_path="suite.jsonl",
    ))
    suite = runner.run(jobs)
    print(suite.banner())            # e.g. "3/3 jobs completed"
    for run in suite.completed:
        print(run.key, run.result.ipc)

Long campaigns should run under supervision::

    from repro.runner import CampaignSupervisor, SupervisorConfig

    runner = CampaignSupervisor(
        RunnerConfig(workers=4, journal_path="suite.jsonl"),
        SupervisorConfig(heartbeat_timeout=30.0, quarantine_after=3),
    )

See ``docs/runner.md`` for the journal format, the failure taxonomy,
supervision, quarantine, and the chaos harness (``repro chaos``).
"""

from repro.errors import (
    ConfigError,
    HeartbeatTimeout,
    JobTimeout,
    ReproError,
    ResourceError,
    SimulationError,
    TraceError,
)
from repro.runner.executor import ExperimentRunner, RunnerConfig
from repro.runner.faultinject import FaultSpec
from repro.runner.invariants import check_invariants
from repro.runner.jobs import (
    CallableJob,
    CompletedRun,
    FailedRun,
    JobSpec,
    QuarantinedRun,
    SuiteResult,
    TaggedResult,
    run_callable,
)
from repro.runner.journal import Journal
from repro.runner.resources import (
    Heartbeat,
    ResourceMonitor,
    ResourcePolicy,
    ResourceStatus,
    read_heartbeat,
)
from repro.runner.suite import build_matrix_jobs, per_trace_results
from repro.runner.supervisor import CampaignSupervisor, SupervisorConfig
from repro.runner.worker import run_job

__all__ = [
    "CallableJob",
    "CampaignSupervisor",
    "CompletedRun",
    "ConfigError",
    "ExperimentRunner",
    "FailedRun",
    "FaultSpec",
    "Heartbeat",
    "HeartbeatTimeout",
    "JobSpec",
    "JobTimeout",
    "Journal",
    "QuarantinedRun",
    "ReproError",
    "ResourceError",
    "ResourceMonitor",
    "ResourcePolicy",
    "ResourceStatus",
    "RunnerConfig",
    "SimulationError",
    "SuiteResult",
    "SupervisorConfig",
    "TaggedResult",
    "TraceError",
    "build_matrix_jobs",
    "check_invariants",
    "per_trace_results",
    "read_heartbeat",
    "run_callable",
    "run_job",
]
