"""Job and outcome records for the resilient experiment runner.

A :class:`JobSpec` is a *declarative*, picklable description of one
(trace, prefetcher, config) simulation: it names the trace instead of
carrying its records, so worker processes rebuild it deterministically
from the catalog.  :class:`CallableJob` wraps an arbitrary thunk for
in-process execution (used by ``analysis.sweep``, whose variants are
closures).

Every job resolves to exactly one outcome: a :class:`CompletedRun`
holding its :class:`SimResult`, or a :class:`FailedRun` recording *why*
it failed (classified as trace/config/crash/timeout/worker-lost) — the
suite keeps going either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import JobTimeout, ReproError, TraceError, ConfigError
from repro.runner.faultinject import FaultSpec
from repro.simulator.stats import SimResult


@dataclass(frozen=True)
class JobSpec:
    """One (trace, prefetcher, config) simulation, by name."""

    trace: str
    l1d: str = "none"
    l2: str = "none"
    scale: float = 0.5
    mtps: Optional[int] = None
    warmup_fraction: float = 0.2
    fault: Optional[FaultSpec] = None
    # Instrumentation/durability knobs (repro.sanitizer).  None of these
    # changes the simulation result — the sanitizer is read-only and a
    # snapshotted/resumed run is bit-identical — so they are deliberately
    # excluded from `key`: journals written before these fields existed
    # stay replayable, and a sanitized re-run can reuse a prior result.
    sanitize: bool = False
    sanitize_every: int = 64
    snapshot_every: int = 0
    snapshot_dir: Optional[str] = None
    resume_from: Optional[str] = None

    @property
    def key(self) -> str:
        """Stable identity used by the checkpoint journal."""
        parts = [
            self.trace, self.l1d, self.l2,
            f"scale={self.scale}", f"mtps={self.mtps}",
            f"wf={self.warmup_fraction}",
        ]
        if self.fault is not None:
            parts.append(f"fault={self.fault.kind}:{self.fault.period}")
        return "|".join(parts)


@dataclass(frozen=True)
class CallableJob:
    """An arbitrary thunk with a stable key (in-process execution only)."""

    key: str
    fn: Callable[[], Any] = field(compare=False)


def run_callable(job: "CallableJob", attempt: int = 1) -> Any:
    """The ``run_fn`` matching :class:`CallableJob` jobs."""
    return job.fn()


@dataclass
class CompletedRun:
    """A job that finished and produced a result."""

    key: str
    result: Any                 # SimResult for simulation jobs
    attempts: int = 1
    elapsed: float = 0.0
    from_journal: bool = False  # replayed from the checkpoint, not re-run

    @property
    def ok(self) -> bool:
        return True


@dataclass
class FailedRun:
    """A job that was given up on, with its classified failure."""

    key: str
    kind: str                   # "trace"|"config"|"crash"|"timeout"|"worker-lost"
    error_type: str
    message: str
    attempts: int = 1
    elapsed: float = 0.0
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return False


RunOutcome = Union[CompletedRun, FailedRun]


def classify_error(exc: BaseException) -> str:
    """Map an exception to the failure taxonomy the journal records."""
    if isinstance(exc, JobTimeout):
        return "timeout"
    if isinstance(exc, TraceError):
        return "trace"
    if isinstance(exc, ConfigError):
        return "config"
    return "crash"


def failed_run_from(
    key: str, exc: BaseException, attempts: int, elapsed: float,
    kind: Optional[str] = None,
) -> FailedRun:
    return FailedRun(
        key=key,
        kind=kind or classify_error(exc),
        error_type=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
        elapsed=elapsed,
        context=exc.context() if isinstance(exc, ReproError) else {},
    )


@dataclass
class SuiteResult:
    """All outcomes of one runner invocation, in submission order."""

    outcomes: List[RunOutcome] = field(default_factory=list)

    @property
    def completed(self) -> List[CompletedRun]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> List[FailedRun]:
        return [o for o in self.outcomes if not o.ok]

    def result(self, key: str) -> Optional[SimResult]:
        for o in self.outcomes:
            if o.key == key and o.ok:
                return o.result
        return None

    def results_by_key(self) -> Dict[str, Any]:
        return {o.key: o.result for o in self.outcomes if o.ok}

    def banner(self) -> str:
        """The "N/M completed" line every suite report leads with."""
        total = len(self.outcomes)
        done = len(self.completed)
        if done == total:
            return f"{done}/{total} jobs completed"
        kinds: Dict[str, int] = {}
        for f in self.failures:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        detail = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return f"{done}/{total} jobs completed ({detail})"

    def raise_if_all_failed(self) -> None:
        if self.outcomes and not self.completed:
            first = self.failures[0]
            raise ReproError(
                f"all {len(self.outcomes)} jobs failed; first: "
                f"[{first.kind}] {first.message}"
            )
