"""CloudSuite-like workloads and their interaction with MISB (§IV-G/H)."""

import pytest

from repro import simulate
from repro.prefetchers.registry import make_prefetcher
from repro.workloads.cloudsuite_like import (
    cassandra_like,
    classification_like,
    cloud9_like,
    nutch_like,
)
from repro.workloads.spec_like import mcf_s_1554

SCALE = 0.3


class TestLowIntensity:
    def test_cloudsuite_mpki_below_spec(self):
        """§IV-G: CloudSuite L1D MPKI (6.9 avg) far below SPEC (42.2)."""
        cs = simulate(cloud9_like(SCALE))
        spec = simulate(mcf_s_1554(SCALE))
        assert cs.l1d_mpki < spec.l1d_mpki / 2

    def test_speedups_muted(self):
        """Little headroom: no prefetcher moves cloud9 much."""
        t = cloud9_like(SCALE)
        base = simulate(t, l1d_prefetcher=make_prefetcher("ip_stride"))
        for name in ("mlop", "ipcp", "berti"):
            r = simulate(t, l1d_prefetcher=make_prefetcher(name))
            assert 0.85 < r.speedup_over(base) < 1.2, name


class TestClassification:
    def test_berti_best_on_classification(self):
        """§IV-G: Classification is where only Berti's accuracy pays."""
        t = classification_like(SCALE)
        base = simulate(t, l1d_prefetcher=make_prefetcher("ip_stride"))
        speeds = {
            name: simulate(
                t, l1d_prefetcher=make_prefetcher(name)
            ).speedup_over(base)
            for name in ("mlop", "ipcp", "berti")
        }
        assert speeds["berti"] == max(speeds.values())
        assert speeds["berti"] > 1.0


class TestTemporalStructure:
    def test_misb_predicts_episode_replays(self):
        """The recurring request episodes are temporal structure: MISB
        recognises replays and predicts their successors (§IV-H).

        At unit-test trace lengths the episode footprint still fits the
        L2, so the predictions resolve as already-resident duplicates;
        the observable property is that MISB *recognises* the replayed
        streams (its predictions target valid successors) and never
        hurts.  EXPERIMENTS.md records the corresponding muted Fig. 19
        magnitudes at harness scale.
        """
        t = cassandra_like(SCALE)
        base = simulate(t, l1d_prefetcher=make_prefetcher("ip_stride"))
        with_misb = simulate(
            t,
            l1d_prefetcher=make_prefetcher("ip_stride"),
            l2_prefetcher=make_prefetcher("misb"),
        )
        predictions = (
            with_misb.pf_l2.issued + with_misb.pf_l2.dropped_duplicate
        )
        assert predictions > 100  # the replayed streams were recognised
        assert with_misb.speedup_over(base) > 0.9

    def test_nutch_generator_deterministic(self):
        a, b = nutch_like(SCALE), nutch_like(SCALE)
        assert a.records == b.records
