"""Factory registry: build any evaluated prefetcher by name.

Names match the paper's figures: ``berti``, ``berti_page``,
``ip_stride``, ``mlop``, ``ipcp``, ``bop``, ``next_line``, ``streamer``
at the L1D; ``spp_ppf``, ``spp``, ``bingo``, ``misb``, ``ipcp_l2``,
``vldp``, ``pythia_lite`` at the L2; ``none`` anywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.berti import BertiPrefetcher
from repro.core.berti_page import BertiPagePrefetcher
from repro.prefetchers.base import FILL_L1, FILL_L2, NoPrefetcher, Prefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.bop import BOPPrefetcher
from repro.prefetchers.ip_stride import IPStridePrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.misb import MISBPrefetcher
from repro.prefetchers.mlop import MLOPPrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.pythia_lite import PythiaLitePrefetcher
from repro.prefetchers.spp import SPPPrefetcher
from repro.prefetchers.streamer import StreamPrefetcher
from repro.prefetchers.vldp import VLDPPrefetcher


class IPCPL2Prefetcher(IPCPPrefetcher):
    """IPCP attached at the L2 (the paper's IPCP+IPCP combination).

    Identical algorithm; fills stop at L2 because that is the cache it
    sits in, and it trains on the L2's (physical) access stream.
    """

    name = "ipcp_l2"
    level = "l2"

    def on_access(self, access):  # type: ignore[override]
        requests = super().on_access(access)
        for req in requests:
            if req.fill_level == FILL_L1:
                req.fill_level = FILL_L2
        return requests


_FACTORIES: Dict[str, Callable[[], Prefetcher]] = {
    "none": NoPrefetcher,
    "berti": BertiPrefetcher,
    "ip_stride": IPStridePrefetcher,
    "next_line": NextLinePrefetcher,
    "bop": BOPPrefetcher,
    "mlop": MLOPPrefetcher,
    "ipcp": IPCPPrefetcher,
    "spp_ppf": lambda: SPPPrefetcher(use_ppf=True),
    "spp": lambda: SPPPrefetcher(use_ppf=False),
    "bingo": BingoPrefetcher,
    "misb": MISBPrefetcher,
    "ipcp_l2": IPCPL2Prefetcher,
    "berti_page": BertiPagePrefetcher,
    "streamer": StreamPrefetcher,
    "vldp": VLDPPrefetcher,
    "pythia_lite": PythiaLitePrefetcher,
}

L1D_PREFETCHERS: List[str] = [
    "none", "ip_stride", "next_line", "bop", "mlop", "ipcp", "berti",
    "berti_page", "streamer",
]
L2_PREFETCHERS: List[str] = [
    "none", "spp_ppf", "spp", "bingo", "misb", "ipcp_l2", "vldp",
    "pythia_lite",
]


def available() -> List[str]:
    return sorted(_FACTORIES)


def make_prefetcher(name: str) -> Prefetcher:
    """Instantiate a prefetcher by its registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown prefetcher {name!r}; choose from {available()}"
        ) from None
    pf = factory()
    if name == "spp":
        pf.name = "spp"
    return pf


def storage_kb(name: str) -> float:
    """Hardware budget of a prefetcher configuration, in KB."""
    return make_prefetcher(name).storage_kb()
