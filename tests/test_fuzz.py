"""Tier-1 coverage for the differential fuzzing subsystem.

The suite pins the three properties the subsystem sells: determinism
(same seed → same cases, buckets, and shrunk artifacts, three times in
a row), sensitivity (a planted engine divergence is found and minimised
within fixed bounds), and hygiene (the corruption matrix stays green and
the fuzzer's own case files reject malformation with typed errors).
"""

import json
from pathlib import Path

import pytest

from repro.errors import FuzzError
from repro.fuzz import (
    FAMILIES,
    corruption_matrix,
    ddmin,
    generate_case,
    load_case,
    plan_cases,
    replay_corpus,
    run_campaign,
    run_case,
    shrink_case,
)
from repro.fuzz.campaign import _planted_case

CORPUS = Path(__file__).parent / "corpus"


# ----------------------------------------------------------------------
# Generators and cases
# ----------------------------------------------------------------------


def test_generate_case_is_deterministic():
    for family in FAMILIES:
        a = generate_case(family, 1234)
        b = generate_case(family, 1234)
        assert a.case_id == b.case_id
        assert a.records == b.records and a.config == b.config


def test_case_roundtrip(tmp_path):
    case = generate_case("degenerate-stride", 7)
    path = case.save(tmp_path / "case.json")
    loaded = load_case(path)
    assert loaded.case_id == case.case_id
    assert loaded.records == case.records
    assert loaded.config == case.config


@pytest.mark.parametrize("mutate, match", [
    (lambda d: d.update(schema=99), "schema"),
    (lambda d: d.update(records="nope"), "not a list"),
    (lambda d: d["records"].append([1, 2, 3]), "5-int row"),
    (lambda d: d["config"].update(bogus=1), "unknown config keys"),
    (lambda d: d["records"][0].__setitem__(1, 0xDEAD), "hash mismatch"),
    (lambda d: d["config"].update(berti={"history_sets": 3}), "berti"),
])
def test_case_schema_rejection(tmp_path, mutate, match):
    case = generate_case("degenerate-stride", 7)
    doc = case.to_dict()
    mutate(doc)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(FuzzError, match=match):
        load_case(path)


def test_case_file_not_json_is_typed(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(FuzzError, match="not valid JSON"):
        load_case(path)


def test_empty_trace_case_is_reject_and_runs_clean():
    case = generate_case("warmup-edge", 2)  # seed 2 draws n=0
    assert case.records == []
    assert case.expect == "reject"
    assert run_case(case) is None  # typed refusal from every engine


# ----------------------------------------------------------------------
# Shrinker
# ----------------------------------------------------------------------


def test_ddmin_finds_minimal_subset():
    # Failure iff both sentinels survive: the minimum is exactly them.
    items = list(range(40))
    budget = [500]
    out = ddmin(items, lambda sub: 7 in sub and 31 in sub, budget)
    assert out == [7, 31]


def test_ddmin_respects_budget():
    items = list(range(64))
    budget = [3]
    out = ddmin(items, lambda sub: 5 in sub, budget)
    assert 5 in out  # still failing, just not fully minimised
    assert budget[0] == 0


def test_planted_divergence_is_found_and_shrunk():
    case = _planted_case(seed=1759, plant_at=40)
    finding = run_case(case)
    assert finding is not None
    assert finding.signature.startswith("engines:")
    result = shrink_case(case, finding.signature, max_records=64)
    assert not result.exhausted
    assert len(result.case.records) <= 64
    assert result.case.expect_finding == finding.signature
    # The plant fires at access 40, so 41 records is the true minimum —
    # the shrinker must land on it, not just under the bound.
    assert len(result.case.records) == 41
    replay = run_case(result.case)
    assert replay is not None and replay.signature == finding.signature


def test_shrink_is_deterministic_across_runs():
    case = _planted_case(seed=1759, plant_at=40)
    finding = run_case(case)
    ids = set()
    for _ in range(3):
        result = shrink_case(case, finding.signature, max_records=64)
        ids.add(result.case.case_id)
    assert len(ids) == 1


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------


def test_plan_is_deterministic_and_covers_families():
    a = [c.case_id for c in plan_cases(seed=9, n_cases=10)]
    b = [c.case_id for c in plan_cases(seed=9, n_cases=10)]
    assert a == b
    families = {c.family for c in plan_cases(seed=9, n_cases=10)}
    assert families == set(FAMILIES)


def test_campaign_buckets_are_deterministic(tmp_path):
    outcomes = []
    for run in range(3):
        out = tmp_path / f"run{run}"
        rep = run_campaign(2, seed=2026, out_dir=out,
                           plant_divergence=40, skip_corruption=True)
        doc = rep.to_dict()
        outcomes.append((doc["buckets"],
                         {k: v["case_id"] for k, v in doc["shrunk"].items()}))
        assert (out / "report.json").exists()
    assert outcomes[0] == outcomes[1] == outcomes[2]
    buckets, shrunk = outcomes[0]
    assert len(buckets) == 1
    (sig,) = buckets
    assert sig.startswith("engines:")
    shrunk_path = tmp_path / "run0" / "cases" / f"{shrunk[sig]}.json"
    assert load_case(shrunk_path).expect_finding == sig


def test_campaign_clean_run_is_ok(tmp_path):
    rep = run_campaign(1, seed=11, out_dir=tmp_path, skip_corruption=True)
    assert rep.ok
    assert rep.cases_run == rep.planned == 2
    assert not rep.truncated
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["ok"] and report["buckets"] == {}


# ----------------------------------------------------------------------
# Corruption matrix
# ----------------------------------------------------------------------


def test_corruption_matrix_green_on_all_formats(tmp_path):
    rep = corruption_matrix(tmp_path, seed=5)
    assert sorted(rep.per_format) == ["resultcache", "snapshot",
                                      "tracestore", "wal"]
    assert all(n > 20 for n in rep.per_format.values())
    assert rep.findings == []
    assert rep.rejected + rep.healed == rep.checked


# ----------------------------------------------------------------------
# Committed corpus
# ----------------------------------------------------------------------


def test_committed_corpus_replays_clean():
    results = replay_corpus(CORPUS)
    assert len(results) >= 5
    bad = [r for r in results if r["status"] != "ok"]
    assert bad == [], bad
    # The corpus must keep its sentinels: at least one expected-finding
    # case and one reject case.
    details = " | ".join(r["detail"] for r in results)
    assert "sentinel reproduced" in details


def test_replay_rejects_empty_corpus(tmp_path):
    with pytest.raises(FuzzError, match="no case files"):
        replay_corpus(tmp_path)
