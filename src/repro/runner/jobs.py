"""Job and outcome records for the resilient experiment runner.

A :class:`JobSpec` is a *declarative*, picklable description of one
(trace, prefetcher, config) simulation: it names the trace instead of
carrying its records, so worker processes rebuild it deterministically
from the catalog.  :class:`CallableJob` wraps an arbitrary thunk for
in-process execution (used by ``analysis.sweep``, whose variants are
closures).

Every job resolves to exactly one outcome: a :class:`CompletedRun`
holding its :class:`SimResult`, or a :class:`FailedRun` recording *why*
it failed (classified as trace/config/crash/timeout/worker-lost) — the
suite keeps going either way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import (
    ConfigError,
    JobTimeout,
    ReproError,
    ResourceError,
    TraceError,
)
from repro.runner.faultinject import FaultSpec
from repro.simulator.stats import SimResult


@dataclass(frozen=True)
class JobSpec:
    """One (trace, prefetcher, config) simulation, by name."""

    trace: str
    l1d: str = "none"
    l2: str = "none"
    scale: float = 0.5
    mtps: Optional[int] = None
    warmup_fraction: float = 0.2
    fault: Optional[FaultSpec] = None
    # Optional mmap-backed trace store (repro.memory.tracestore): when
    # set, the worker maps this file read-only instead of regenerating
    # the trace from the catalog.  The store holds exactly the records
    # `resolve_trace(trace, scale)` would rebuild, so it is a transport
    # detail, not an identity change — excluded from `key` like the
    # sanitizer knobs below (journals written either way interchange).
    trace_path: Optional[str] = None
    # Instrumentation/durability knobs (repro.sanitizer).  None of these
    # changes the simulation result — the sanitizer is read-only and a
    # snapshotted/resumed run is bit-identical — so they are deliberately
    # excluded from `key`: journals written before these fields existed
    # stay replayable, and a sanitized re-run can reuse a prior result.
    sanitize: bool = False
    sanitize_every: int = 64
    snapshot_every: int = 0
    snapshot_dir: Optional[str] = None
    resume_from: Optional[str] = None
    # Supervision knobs (repro.runner.supervisor).  Heartbeats are pure
    # observation — the worker writes progress pings to heartbeat_path
    # every heartbeat_every simulated accesses — so, like the sanitizer
    # fields above, they are excluded from `key`.
    heartbeat_path: Optional[str] = None
    heartbeat_every: int = 0
    # Simulator inner loop (repro.simulator.batched).  The batched engine
    # is bit-identical to the classic one (that is its contract, enforced
    # by `repro sancheck --engine`), so like the knobs above it is a
    # performance detail excluded from `key`: results cached under one
    # engine are valid under the other.
    engine: str = "classic"
    chunk_size: int = 0
    # Native-backend policy (repro.native), meaningful with
    # engine="native": auto | force | off.  Same contract as above —
    # bit-identical either way — so it is excluded from `key` too.
    native: str = "auto"

    @property
    def key(self) -> str:
        """Stable identity used by the checkpoint journal."""
        parts = [
            self.trace, self.l1d, self.l2,
            f"scale={self.scale}", f"mtps={self.mtps}",
            f"wf={self.warmup_fraction}",
        ]
        if self.fault is not None:
            parts.append(f"fault={self.fault.kind}:{self.fault.period}")
        return "|".join(parts)


@dataclass(frozen=True)
class CallableJob:
    """An arbitrary thunk with a stable key (in-process execution only)."""

    key: str
    fn: Callable[[], Any] = field(compare=False)


def run_callable(job: "CallableJob", attempt: int = 1) -> Any:
    """The ``run_fn`` matching :class:`CallableJob` jobs."""
    return job.fn()


@dataclass(frozen=True)
class TaggedResult:
    """A worker's result wrapped with the pid that produced it.

    The pool submits :func:`tag_worker` rather than the raw job
    function, so the parent learns which OS process ran each job — the
    ``worker_pid`` journal field — without touching the result payload.
    """

    worker_pid: int
    result: Any


def tag_worker(run_fn: Callable, job: Any, attempt: int) -> "TaggedResult":
    """Run ``run_fn(job, attempt)`` and tag the result with our pid."""
    return TaggedResult(worker_pid=os.getpid(), result=run_fn(job, attempt))


@dataclass
class CompletedRun:
    """A job that finished and produced a result."""

    key: str
    result: Any                 # SimResult for simulation jobs
    attempts: int = 1
    elapsed: float = 0.0
    from_journal: bool = False  # replayed from the checkpoint, not re-run
    worker_pid: Optional[int] = None
    # Lease provenance (repro.service): which lease produced this result
    # and the grant/renew/expiry history behind it.  Empty for direct
    # runner executions — schema-v3 journal fields, additive.
    lease_id: Optional[str] = None
    lineage: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return True


@dataclass
class FailedRun:
    """A job that was given up on, with its classified failure."""

    key: str
    kind: str                   # "trace"|"config"|"crash"|"timeout"|"worker-lost"|"resource"
    error_type: str
    message: str
    attempts: int = 1
    elapsed: float = 0.0
    context: Dict[str, Any] = field(default_factory=dict)
    worker_pid: Optional[int] = None
    # Lease provenance (repro.service); see CompletedRun.
    lease_id: Optional[str] = None
    lineage: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return False


@dataclass
class QuarantinedRun:
    """A job skipped because its (trace, prefetcher) circuit breaker is
    open: the group failed ``failures`` consecutive times and re-running
    it would only burn campaign budget.  A resumed campaign sends one
    half-open probe per quarantined group; on success the breaker closes
    and the group's remaining jobs run normally on the next pass."""

    key: str
    group: str                  # "trace|prefetcher" breaker identity
    failures: int               # consecutive failures that tripped it
    message: str = ""
    kind: str = "quarantined"
    error_type: str = "CircuitOpen"
    attempts: int = 0
    elapsed: float = 0.0
    context: Dict[str, Any] = field(default_factory=dict)
    worker_pid: Optional[int] = None
    from_journal: bool = False

    def __post_init__(self) -> None:
        if not self.message:
            self.message = (
                f"circuit breaker open for {self.group} after "
                f"{self.failures} consecutive failures; job skipped"
            )

    @property
    def ok(self) -> bool:
        return False


RunOutcome = Union[CompletedRun, FailedRun, QuarantinedRun]


def classify_error(exc: BaseException) -> str:
    """Map an exception to the failure taxonomy the journal records."""
    if isinstance(exc, JobTimeout):
        return "timeout"
    if isinstance(exc, ResourceError):
        return "resource"
    if isinstance(exc, TraceError):
        return "trace"
    if isinstance(exc, ConfigError):
        return "config"
    return "crash"


def failed_run_from(
    key: str, exc: BaseException, attempts: int, elapsed: float,
    kind: Optional[str] = None, worker_pid: Optional[int] = None,
) -> FailedRun:
    return FailedRun(
        key=key,
        kind=kind or classify_error(exc),
        error_type=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
        elapsed=elapsed,
        context=exc.context() if isinstance(exc, ReproError) else {},
        worker_pid=worker_pid,
    )


@dataclass
class SuiteResult:
    """All outcomes of one runner invocation, in submission order.

    ``interrupted=True`` means the campaign was drained early (graceful
    shutdown): the outcomes list covers only the jobs that finished, and
    a journal-backed resume will execute exactly the missing ones.
    """

    outcomes: List[RunOutcome] = field(default_factory=list)
    interrupted: bool = False

    @property
    def completed(self) -> List[CompletedRun]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def quarantined(self) -> List[QuarantinedRun]:
        return [o for o in self.outcomes if isinstance(o, QuarantinedRun)]

    def result(self, key: str) -> Optional[SimResult]:
        for o in self.outcomes:
            if o.key == key and o.ok:
                return o.result
        return None

    def results_by_key(self) -> Dict[str, Any]:
        return {o.key: o.result for o in self.outcomes if o.ok}

    def banner(self) -> str:
        """The "N/M completed" line every suite report leads with."""
        total = len(self.outcomes)
        done = len(self.completed)
        suffix = " [interrupted]" if self.interrupted else ""
        if done == total:
            return f"{done}/{total} jobs completed{suffix}"
        kinds: Dict[str, int] = {}
        for f in self.failures:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        detail = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return f"{done}/{total} jobs completed ({detail}){suffix}"

    def raise_if_all_failed(self) -> None:
        if self.outcomes and not self.completed:
            first = self.failures[0]
            raise ReproError(
                f"all {len(self.outcomes)} jobs failed; first: "
                f"[{first.kind}] {first.message}"
            )
