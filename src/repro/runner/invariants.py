"""Internal-consistency checks on a :class:`SimResult`.

A run that survives a fault injection (or a worker that silently
misbehaves) must still produce *coherent* statistics; these invariants
are conservation laws of the simulator's accounting:

* every counter is non-negative,
* per level, ``hits + misses == accesses`` (hits being derived,
  this is ``misses <= accesses``),
* per prefetcher, ``late <= useful`` and ``fills <= issued``,
* every useful prefetch is accounted for by an issue: summed over both
  prefetchers, ``useful - promoted <= issued + warmup carryover``
  (prefetched lines resident at the warmup reset may be demanded — and
  credited — after the counters were zeroed; MSHR promotions are
  counted separately because their origin attribution can cross
  levels),
* a run that retired instructions consumed cycles.

:func:`check_invariants` returns the list of violated invariants (empty
when consistent); the runner's worker raises ``SimulationError`` when
the list is non-empty.
"""

from __future__ import annotations

from typing import List

from repro.simulator.stats import SimResult

_COUNT_FIELDS = (
    "instructions",
    "l1d_demand_accesses", "l1d_demand_misses",
    "l2_demand_accesses", "l2_demand_misses",
    "llc_demand_accesses", "llc_demand_misses",
    "traffic_l1d_l2", "traffic_l2_llc", "traffic_llc_dram",
    "dram_reads", "dram_writes", "dram_row_hits", "dram_row_misses",
    "l1d_writebacks", "l2_writebacks", "llc_writebacks",
    "l1d_prefetch_fills", "l2_prefetch_fills", "llc_prefetch_fills",
)

_PF_FIELDS = (
    "issued", "fills", "useful", "late", "useless", "promoted",
    "dropped_translation", "dropped_duplicate", "dropped_queue_full",
    "dropped_mshr_full",
)


def check_invariants(result: SimResult) -> List[str]:
    """Return human-readable descriptions of every violated invariant."""
    violations: List[str] = []

    for name in _COUNT_FIELDS:
        if getattr(result, name) < 0:
            violations.append(f"{name} is negative ({getattr(result, name)})")
    if result.cycles < 0:
        violations.append(f"cycles is negative ({result.cycles})")

    for level in ("l1d", "l2", "llc"):
        accesses = getattr(result, f"{level}_demand_accesses")
        misses = getattr(result, f"{level}_demand_misses")
        if misses > accesses:
            violations.append(
                f"{level}: hits + misses != accesses "
                f"(misses {misses} > accesses {accesses})"
            )

    for origin in ("l1d", "l2"):
        pf = getattr(result, f"pf_{origin}")
        for name in _PF_FIELDS:
            if getattr(pf, name) < 0:
                violations.append(
                    f"pf_{origin}.{name} is negative ({getattr(pf, name)})"
                )
        if pf.late > pf.useful:
            violations.append(
                f"pf_{origin}: late ({pf.late}) > useful ({pf.useful})"
            )
        if pf.promoted > pf.useful:
            violations.append(
                f"pf_{origin}: promoted ({pf.promoted}) > useful ({pf.useful})"
            )
        if pf.fills > pf.issued:
            violations.append(
                f"pf_{origin}: fills ({pf.fills}) > issued ({pf.issued})"
            )

    # Issue accounting: only meaningful when the engine recorded the
    # warmup carryover (single-core `simulate` does; external SimResults
    # may not, in which case the bound cannot be stated exactly).
    if "pf_carryover_l1d" in result.extra and "pf_carryover_l2" in result.extra:
        carry = (result.extra["pf_carryover_l1d"]
                 + result.extra["pf_carryover_l2"])
        useful = result.pf_l1d.useful + result.pf_l2.useful
        promoted = result.pf_l1d.promoted + result.pf_l2.promoted
        issued = result.pf_l1d.issued + result.pf_l2.issued
        if useful - promoted > issued + carry:
            violations.append(
                f"useful ({useful}) - promoted ({promoted}) exceeds "
                f"issued ({issued}) + warmup carryover ({carry:.0f})"
            )

    if result.instructions > 0 and result.cycles <= 0:
        violations.append(
            f"{result.instructions} instructions retired in "
            f"{result.cycles} cycles"
        )
    return violations
