"""Batched columnar engine: batch-at-a-time execution of the demand path.

The classic engine (``simulate(..., engine="classic")``) crosses the
hierarchy once per record through virtual calls: ``issue_memory`` →
``demand_access`` → ``translate_demand`` → probe → prefetcher hooks.
Each hop is cheap; a hundred of them per record is not — dispatch
overhead, not algorithmic work, dominates the profile (see
docs/performance.md).

This module builds the batched alternative: ``make_batched_runner``
returns a span runner that slices the trace's ``array('q')`` columns
into fixed-size chunks and executes each chunk through one fused loop
in which the core model, the MMU's dTLB-hit path, the L1D probe and
demand touch, the MSHR lookup/merge ladder, the demand L2/LLC descent
and the Berti kernel hooks are all inlined over locals hoisted once per
span.  Pure counters accumulate in span-local integers and are flushed
additively when the span ends; structural state (cache sets, MSHR entry
maps, PQ service times, replacement metadata, Berti rings) is mutated
in place through the very same objects and bound methods the classic
engine uses, in the same order, so the two engines are bit-identical —
the lockstep digest (:mod:`repro.sanitizer.lockstep`) samples state at
span/chunk boundaries, where every delta has been flushed.

Batch hooks
-----------

A kernel prefetcher opts into chunk delivery by declaring
``kernel_batch_hooks = True`` in its own class body (mirroring the
``kernel_hooks`` protocol: subclasses demote unless they re-declare it)
and providing:

``on_access_batch(triples)``
    Called at every chunk boundary with the chunk's training stream —
    one ``(ip, vline, cycle)`` triple per history insert the chunk
    performed (demand misses and prefetch first-hits).  The per-access
    kernels have already consumed these inserts one at a time, so the
    hook MUST NOT mutate prefetcher state: it is an observation window
    (batch-level analyses, logging, future SoA training experiments).
    Snapshots taken after a chunk must remain byte-identical whether or
    not the hook ran.

``on_fill_batch(fills)``
    Batch twin of ``on_fill_kernel``: ``fills`` is a sequence of
    ``(vline, now, latency, ip)`` tuples.  Fill training feeds the very
    next access's prediction, so the engine never defers fills into a
    batch — the hook exists for offline/replay tooling and is pinned
    equivalent to the per-access kernel by test.

Demotion
--------

``batch_mode`` demotes (returns ``""``) whenever anything on the hot
path is not the stock implementation: a wrapped ``demand_access``
(sanitizer, lockstep capture), subclassed hierarchy/caches/MSHRs/PQ/MMU
/core (fault injection, reference engine), a non-kernel L1D prefetcher
without batch hooks, or any L2 prefetcher.  The demoted path is the
classic per-record loop split at the same span boundaries — trivially
bit-identical.  ``simulate_multicore`` always runs demoted: its
round-robin interleave resets shared LLC/DRAM statistics objects and
collects per-core results mid-loop, which is unsound while another
core's span deltas are still unflushed.
"""

from __future__ import annotations

from typing import Callable

from repro.cpu.core_model import CoreModel
from repro.cpu.mmu import MMU
from repro.errors import ReproError, SimulationError
from repro.memory.cache import Cache
from repro.memory.hierarchy import (
    LATENCY_FIELD_BITS,
    LINES_PER_PAGE_BITS,
    PAGE_OFFSET_MASK,
    Hierarchy,
    _FIFOQueue,
    same_page,
)
from repro.memory.mshr import MSHR
from repro.prefetchers.base import NoPrefetcher
from repro.core.delta_table import L1D_PREF

#: Records per chunk.  Chunks are cut relative to the span start, so the
#: snapshot/progress machinery (which splits runs into spans) keeps its
#: boundaries aligned with chunk boundaries automatically.
DEFAULT_CHUNK_SIZE = 1024


def batch_mode(hierarchy: Hierarchy, core: CoreModel) -> str:
    """Classify how far ``hierarchy`` can be batch-executed.

    Returns ``"kernel"`` (fused loop incl. Berti kernel hooks),
    ``"plain"`` (fused demand-only loop, no L1D prefetcher), or ``""``
    (demote to the per-record classic loop).  Exact-type checks mirror
    the classic engine's fast-path guards: any subclass — fault
    injectors, the sanitizer's reference engine — keeps full virtual
    dispatch.  Instrumentation that shadows ``demand_access`` with an
    instance attribute (the sanitizer, the lockstep capture) demotes
    too: the fused loop never goes through that method.
    """
    h = hierarchy
    if type(h) is not Hierarchy or "demand_access" in h.__dict__:
        return ""
    if (
        type(h.mmu) is not MMU
        or type(h.l1d) is not Cache
        or type(h.l2) is not Cache
        or type(h.llc) is not Cache
        or type(h.l1d_mshr) is not MSHR
        or type(h.l2_mshr) is not MSHR
        or type(h.pq) is not _FIFOQueue
        or type(core) is not CoreModel
    ):
        return ""
    if type(h.l2_prefetcher) is not NoPrefetcher:
        return ""
    pf = h.l1d_prefetcher
    if type(pf) is NoPrefetcher:
        return "plain"
    kern = h._l1d_kernel
    if (
        kern is not None
        and kern is pf
        and type(pf).__dict__.get("kernel_batch_hooks")
    ):
        return "kernel"
    return ""


def make_batched_runner(
    trace,
    hierarchy: Hierarchy,
    core: CoreModel,
    chunk_size: int = 0,
) -> Callable[[int, int], None]:
    """Build the batched span runner for one (trace, hierarchy, core).

    The returned ``run_span(lo, hi)`` re-validates :func:`batch_mode`
    per span (instrumentation may attach between spans — e.g. a
    sanitizer installed on resume) and dispatches to the fused loop or
    the demoted classic loop.  All statistics are fully flushed when it
    returns, so snapshots taken between spans are consistent.
    """
    chunk = chunk_size if chunk_size > 0 else DEFAULT_CHUNK_SIZE
    ips, addrs, writes, gaps, deps = trace.columns()
    # Vectorized pre-decode: line/page derived columns computed once for
    # the whole trace (numpy, cached on the trace) instead of two shifts
    # per record in the fused loop.  The native span kernel shares the
    # very same arrays by pointer.
    vlines, vpages = trace.decoded_columns()
    h = hierarchy
    trace_name = trace.name

    def _crash(exc: BaseException, lo: int, hi: int, done: int) -> SimulationError:
        return SimulationError(
            f"simulation crashed at record ~{lo + done} "
            f"({done} accesses into span [{lo}, {hi})): "
            f"{type(exc).__name__}: {exc}",
            trace=trace_name,
            prefetcher=h.l1d_prefetcher.name,
            field="record_index",
        )

    def _run_demoted(lo: int, hi: int) -> None:
        # Classic per-record loop over the same span: identical calls in
        # identical order, hence trivially bit-identical.
        demand = h.demand_access
        issue = core.issue_memory
        advance = core.advance_nonmem
        l1d_stats = h.l1d.stats
        base = l1d_stats.demand_accesses
        try:
            for ip, vaddr, is_write, gap, dep in zip(
                ips[lo:hi], addrs[lo:hi], writes[lo:hi], gaps[lo:hi],
                deps[lo:hi],
            ):
                if gap:
                    advance(gap)
                issue(demand, ip, vaddr, is_write, dep)
        except ReproError:
            raise
        except Exception as exc:
            done = l1d_stats.demand_accesses - base
            raise _crash(exc, lo, hi, done) from exc

    def _run_fused(lo: int, hi: int, kernel: bool) -> None:
        # ------------------------------------------------------------------
        # Span-level hoists.  Object identities are stable across a span:
        # `_where` dicts, set lists (mutated in place, incl. their lazy
        # materialisation), MSHR entry maps, the PQ deque, replacement
        # metadata and the Berti tables all keep their identity; only
        # plain counters are rebound, and those live in span-locals.
        # ------------------------------------------------------------------
        mmu = h.mmu
        dtlb = mmu.dtlb
        stlb = mmu.stlb
        dtlb_map = dtlb._map
        dtlb_sets = dtlb._sets
        dtlb_nsets = dtlb.num_sets
        dtlb_latency = dtlb.latency
        miss_trans_latency = dtlb_latency + stlb.latency
        stlb_lookup = stlb.lookup
        stlb_insert = stlb.insert
        dtlb_insert = dtlb.insert
        stlb_map = stlb._map
        stlb_stats = stlb.stats
        physical_page = mmu._physical_page
        mmu_stats = mmu.stats
        page_walk_latency = mmu.page_walk_latency
        translate_cold = mmu._translate_prefetch_cold
        LPB = LINES_PER_PAGE_BITS
        POM = PAGE_OFFSET_MASK

        l1d = h.l1d
        l2 = h.l2
        llc = h.llc
        l1s = l1d.stats
        l2s = l2.stats
        llcs = llc.stats
        l1d_where = l1d._where
        l2_where = l2._where
        llc_where = llc._where
        l1d_sets = l1d.sets
        l2_sets = l2.sets
        llc_sets = llc.sets
        l1d_set_mask = l1d._set_mask
        l2_set_mask = l2._set_mask
        llc_set_mask = llc._set_mask
        l1d_latency = l1d.latency
        l2_latency = l2.latency
        llc_latency = llc.latency
        l1d_lru = l1d._lru
        l2_lru = l2._lru
        llc_lru = llc._lru
        if l1d_lru is not None:
            l1d_lru_clock = l1d_lru._clock
            l1d_lru_age = l1d_lru._age
        if l2_lru is not None:
            l2_lru_clock = l2_lru._clock
            l2_lru_age = l2_lru._age
        if llc_lru is not None:
            llc_lru_clock = llc_lru._clock
            llc_lru_age = llc_lru._age
        l1d_srrip_hit = l1d._srrip_hit
        l2_srrip_hit = l2._srrip_hit
        llc_srrip_hit = llc._srrip_hit
        l1d_drrip = l1d._drrip
        l2_drrip = l2._drrip
        llc_drrip = llc._drrip
        l1d_on_hit = l1d.policy.on_hit
        l2_on_hit = l2.policy.on_hit
        llc_on_hit = llc.policy.on_hit
        l1d_fill = l1d.fill
        l2_fill = l2.fill
        llc_fill = llc.fill
        l1d_mark_dirty = l1d.mark_dirty
        handle_wb = h._handle_writeback
        credit = h._credit_useful
        dram_read = h.dram.read

        m1 = h.l1d_mshr
        m2 = h.l2_mshr
        m1_entries = m1._entries
        m2_entries = m2._entries
        m1_size = m1.size
        m2_size = m2.size
        m1_expire = m1._expire
        m2_expire = m2._expire
        m1_allocate = m1.allocate
        m2_allocate = m2.allocate
        m1_reserve = m1_size - 2

        pq = h.pq
        st = pq._service_times
        st_popleft = st.popleft
        st_append = st.append
        pq_size = pq.size
        period = 1.0 / pq.rate
        latency_cap = 1 << LATENCY_FIELD_BITS

        # Core model scalars go span-local; deques stay shared objects.
        c_instr = core._instr
        c_frontend = core._frontend
        c_retire = core._retire_frontier
        c_rob_head = core._rob_head_retire
        c_window = core._window
        c_loads = core._load_completions
        w_pop = c_window.popleft
        w_app = c_window.append
        loads_app = c_loads.append
        issue_incr = core._issue_incr
        retire_incr = core._retire_incr
        rob_size = core._rob_size
        issue_width = core.config.issue_width
        retire_width = core.config.retire_width

        if kernel:
            kern = h._l1d_kernel
            hist_insert = kern.history.insert
            delta_pfd = kern.deltas.prefetch_deltas
            search_into = kern.history.search_timely_into
            record_search = kern.deltas.record_search
            scratch = kern._scratch
            latency_mask = kern._latency_mask
            watermark = h._l1d_kern_watermark
            cross_ok = h._l1d_kern_cross_page
            key_is_ip = getattr(type(kern), "kernel_batch_key", "ip") != "page"
            on_batch = kern.on_access_batch

        # Span-local statistic deltas, flushed additively at span end.
        # Called code (fills, allocate, writebacks, eviction hooks, DRAM)
        # keeps bumping its counters directly; the two never touch the
        # same field, and nothing reads statistics mid-span in fused mode.
        d_dt_acc = d_dt_hit = 0
        d_l1_acc = d_l1_hit = d_l1_miss = d_l1_useful = d_l1_late = 0
        d_l2_acc = d_l2_hit = d_l2_miss = d_l2_useful = 0
        d_llc_acc = d_llc_hit = d_llc_miss = d_llc_useful = 0
        d_h_llc_acc = d_h_llc_miss = d_h_dram = 0
        d_t12_dem = d_t12_pf = d_t2l_dem = d_t2l_pf = 0
        d_tld_dem = d_tld_pf = 0
        d_pf_sugg = d_pf_issued = d_pf_fills = 0
        d_pf_useful = d_pf_late = d_pf_promoted = 0
        d_pf_dtrans = d_pf_ddup = d_pf_dq = d_pf_dm = 0
        d_pf2_useful = d_pf2_late = d_pf2_promoted = 0
        d_stlb_probes = d_stlb_hits = 0
        d_m1_merges = d_m2_merges = 0
        d_cross = 0

        def run_ladder(selected, ip, vline, now, mshr_below):
            # _kernel_issue_selected transcribed: translate → dedup → PQ →
            # MSHR-reserve → fill, with the prefetch-specialised
            # _access_l2/_access_llc descents inlined (the is_prefetch
            # branches are pruned).  Side effects run in the classic
            # order; counter batches flush into the span deltas.
            nonlocal d_pf_sugg, d_pf_dtrans, d_pf_ddup, d_pf_dq, d_pf_dm
            nonlocal d_pf_fills, d_pf_issued, d_stlb_probes, d_stlb_hits
            nonlocal d_t12_pf, d_t2l_pf, d_tld_pf, d_m2_merges, d_cross
            suggested = 0
            dropped_translation = 0
            dropped_duplicate = 0
            dropped_queue_full = 0
            dropped_mshr_full = 0
            fills = 0
            issued = 0
            stlb_probes = 0
            stlb_hits = 0
            tr_l1d_l2 = 0
            tr_l2_llc = 0
            pq_full = False

            for delta, status in selected:
                target = vline + delta
                if target < 0:
                    continue
                if not cross_ok and not same_page(vline, target):
                    d_cross += 1
                    continue
                fill_l1 = status == L1D_PREF and mshr_below
                suggested += 1
                # translate_prefetch, STLB-hit path inlined.
                vpage = target >> LPB
                stlb_probes += 1
                ppage = stlb_map.get(vpage)
                if ppage is None:
                    pline = translate_cold(target, vpage)
                    if pline is None:
                        dropped_translation += 1
                        continue
                else:
                    stlb_hits += 1
                    pline = (ppage << LPB) | (target & POM)
                if fill_l1:
                    if pline in l1d_where:
                        dropped_duplicate += 1
                        continue
                    # MSHR.lookup inlined, expire memoised per cycle.
                    if now != m1._last_expire:
                        if m1_entries and now >= m1._min_ready:
                            m1_expire(now)
                        else:
                            m1._last_expire = now
                    if pline in m1_entries:
                        dropped_duplicate += 1
                        continue
                    if pq_full:
                        dropped_queue_full += 1
                        continue
                    # _FIFOQueue.push inlined.
                    while st and st[0] <= now:
                        st_popleft()
                    if len(st) >= pq_size:
                        pq_full = True
                        dropped_queue_full += 1
                        continue
                    start = now
                    if st and st[-1] > start:
                        start = st[-1]
                    service = start + period
                    st_append(service)
                    issue_time = now + int(service - now)
                    # Demand-reserve check at issue time.
                    if issue_time != m1._last_expire:
                        if m1_entries and issue_time >= m1._min_ready:
                            m1_expire(issue_time)
                        else:
                            m1._last_expire = issue_time
                    if len(m1_entries) >= m1_reserve:
                        dropped_mshr_full += 1
                        continue
                    # _access_l2(is_prefetch=True) inlined.
                    way2 = l2_where.get(pline)
                    if way2 is not None:
                        sidx2 = pline & l2_set_mask
                        if l2_lru is not None:
                            clock = l2_lru_clock[sidx2] + 1
                            l2_lru_clock[sidx2] = clock
                            l2_lru_age[sidx2][way2] = clock
                        elif l2_srrip_hit is not None:
                            l2_srrip_hit[sidx2][way2] = 0
                        else:
                            l2_on_hit(sidx2, way2)
                        cl2 = l2_sets[sidx2][way2]
                        ready = issue_time + l2_latency
                        if cl2.arrival_cycle > ready:
                            ready = cl2.arrival_cycle
                    else:
                        if issue_time != m2._last_expire:
                            if m2_entries and issue_time >= m2._min_ready:
                                m2_expire(issue_time)
                            else:
                                m2._last_expire = issue_time
                        inflight2 = m2_entries.get(pline)
                        if inflight2 is not None:
                            d_m2_merges += 1
                            inflight2.merged_demands += 1
                            wait2 = inflight2.ready_cycle - issue_time
                            if wait2 < 0:
                                wait2 = 0
                            ready = issue_time + l2_latency + wait2
                        else:
                            mt2 = issue_time + l2_latency
                            tr_l2_llc += 1
                            # _access_llc(is_prefetch=True) inlined.
                            way3 = llc_where.get(pline)
                            if way3 is not None:
                                sidx3 = pline & llc_set_mask
                                if llc_lru is not None:
                                    clock = llc_lru_clock[sidx3] + 1
                                    llc_lru_clock[sidx3] = clock
                                    llc_lru_age[sidx3][way3] = clock
                                elif llc_srrip_hit is not None:
                                    llc_srrip_hit[sidx3][way3] = 0
                                else:
                                    llc_on_hit(sidx3, way3)
                                cl3 = llc_sets[sidx3][way3]
                                ready = mt2 + llc_latency
                                if cl3.arrival_cycle > ready:
                                    ready = cl3.arrival_cycle
                            else:
                                mt3 = mt2 + llc_latency
                                d_tld_pf += 1
                                ready = dram_read(pline, mt3)
                                victim3 = llc_fill(
                                    pline, now=mt3, arrival_cycle=ready,
                                    is_prefetch=True,
                                )
                                if victim3 is not None:
                                    handle_wb(llc, victim3, ready)
                            if mt2 != m2._last_expire:
                                if m2_entries and mt2 >= m2._min_ready:
                                    m2_expire(mt2)
                                else:
                                    m2._last_expire = mt2
                            if len(m2_entries) < m2_size:
                                m2_allocate(pline, mt2, ready, True, ip=ip)
                            victim2 = l2_fill(
                                pline, now=mt2, arrival_cycle=ready,
                                is_prefetch=True, ip=ip,
                            )
                            if victim2 is not None:
                                handle_wb(l2, victim2, ready)
                    latency = ready - now
                    m1_allocate(
                        pline, issue_time, ready, is_prefetch=True, ip=ip,
                        vline=target,
                    )
                    l1d_fill(
                        pline,
                        now=issue_time,
                        arrival_cycle=ready,
                        is_prefetch=True,
                        ip=ip,
                        vline=target,
                        pf_latency=(
                            latency if 0 < latency < latency_cap else 0
                        ),
                        pf_origin="l1d",
                    )
                    tr_l1d_l2 += 1
                    fills += 1
                    issued += 1
                else:
                    if pline in l2_where:
                        dropped_duplicate += 1
                        continue
                    if pq_full:
                        dropped_queue_full += 1
                        continue
                    while st and st[0] <= now:
                        st_popleft()
                    if len(st) >= pq_size:
                        pq_full = True
                        dropped_queue_full += 1
                        continue
                    start = now
                    if st and st[-1] > start:
                        start = st[-1]
                    service = start + period
                    st_append(service)
                    issue_time = now + int(service - now)
                    # L2 dedup probe after the PQ slot is consumed (same
                    # order as the call-based path).
                    if now != m2._last_expire:
                        if m2_entries and now >= m2._min_ready:
                            m2_expire(now)
                        else:
                            m2._last_expire = now
                    if pline in l2_where or pline in m2_entries:
                        dropped_duplicate += 1
                        continue
                    if issue_time != m2._last_expire:
                        if m2_entries and issue_time >= m2._min_ready:
                            m2_expire(issue_time)
                        else:
                            m2._last_expire = issue_time
                    if len(m2_entries) >= m2_size:
                        dropped_mshr_full += 1
                        continue
                    # _access_llc(is_prefetch=True) inlined.
                    now3 = issue_time + l2_latency
                    way3 = llc_where.get(pline)
                    if way3 is not None:
                        sidx3 = pline & llc_set_mask
                        if llc_lru is not None:
                            clock = llc_lru_clock[sidx3] + 1
                            llc_lru_clock[sidx3] = clock
                            llc_lru_age[sidx3][way3] = clock
                        elif llc_srrip_hit is not None:
                            llc_srrip_hit[sidx3][way3] = 0
                        else:
                            llc_on_hit(sidx3, way3)
                        cl3 = llc_sets[sidx3][way3]
                        ready = now3 + llc_latency
                        if cl3.arrival_cycle > ready:
                            ready = cl3.arrival_cycle
                    else:
                        mt3 = now3 + llc_latency
                        d_tld_pf += 1
                        ready = dram_read(pline, mt3)
                        victim3 = llc_fill(
                            pline, now=mt3, arrival_cycle=ready,
                            is_prefetch=True,
                        )
                        if victim3 is not None:
                            handle_wb(llc, victim3, ready)
                    m2_allocate(pline, issue_time, ready, True, ip=ip)
                    latency = ready - now
                    l2_fill(
                        pline,
                        now=issue_time,
                        arrival_cycle=ready,
                        is_prefetch=True,
                        ip=ip,
                        vline=target,
                        pf_latency=(
                            latency if 0 < latency < latency_cap else 0
                        ),
                        pf_origin="l1d",
                    )
                    tr_l1d_l2 += 1
                    tr_l2_llc += 1
                    fills += 1
                    issued += 1

            d_pf_sugg += suggested
            d_pf_dtrans += dropped_translation
            d_pf_ddup += dropped_duplicate
            d_pf_dq += dropped_queue_full
            d_pf_dm += dropped_mshr_full
            d_pf_fills += fills
            d_pf_issued += issued
            d_stlb_probes += stlb_probes
            d_stlb_hits += stlb_hits
            d_t12_pf += tr_l1d_l2
            d_t2l_pf += tr_l2_llc

        # ------------------------------------------------------------------
        # Fused record loop, cut into chunks for batch-hook delivery.
        # ------------------------------------------------------------------
        triples: list = []
        tri_app = triples.append
        try:
            i = lo
            while i < hi:
                j = i + chunk
                if j > hi:
                    j = hi
                for ip, vline, vpage, is_write, gap, dep in zip(
                    ips[i:j], vlines[i:j], vpages[i:j], writes[i:j],
                    gaps[i:j], deps[i:j],
                ):
                    # -- CoreModel.advance_nonmem
                    if gap > 0:
                        c_instr += gap
                        c_frontend += gap / issue_width
                        floor = c_instr / retire_width
                        if floor > c_retire:
                            c_retire = floor
                    # -- CoreModel.issue_memory (front half)
                    k_i = c_instr
                    c_instr = k_i + 1
                    c_frontend = frontend = c_frontend + issue_incr
                    horizon = k_i - rob_size
                    while c_window and c_window[0][0] <= horizon:
                        __, retired = w_pop()
                        if retired > c_rob_head:
                            c_rob_head = retired
                    issue_t = frontend if frontend > c_rob_head else c_rob_head
                    if dep > 0 and dep <= len(c_loads):
                        dep_ready = c_loads[-dep]
                        if dep_ready > issue_t:
                            issue_t = dep_ready
                    now = int(issue_t)

                    # -- Hierarchy.demand_access / MMU.translate_demand
                    # (vline/vpage arrive pre-decoded from the trace)
                    d_dt_acc += 1
                    ppage = dtlb_map.get(vpage)
                    if ppage is not None:
                        entries_d = dtlb_sets[vpage % dtlb_nsets]
                        for di, pair in enumerate(entries_d):
                            if pair[0] == vpage:
                                entries_d.append(entries_d.pop(di))
                                break
                        d_dt_hit += 1
                        pline = (ppage << LPB) | (vline & POM)
                        trans_latency = dtlb_latency
                    else:
                        trans_latency = miss_trans_latency
                        ppage = stlb_lookup(vpage)
                        if ppage is None:
                            ppage = physical_page(vpage)
                            mmu_stats.walks += 1
                            trans_latency += page_walk_latency
                            stlb_insert(vpage, ppage)
                        dtlb_insert(vpage, ppage)
                        pline = (ppage << LPB) | (vline & POM)
                    t = now + trans_latency

                    # -- L1D probe (Cache.lookup inlined)
                    d_l1_acc += 1
                    way = l1d_where.get(pline)
                    if way is not None:
                        # ------------------------------ L1D hit
                        d_l1_hit += 1
                        sidx = pline & l1d_set_mask
                        if l1d_lru is not None:
                            clock = l1d_lru_clock[sidx] + 1
                            l1d_lru_clock[sidx] = clock
                            l1d_lru_age[sidx][way] = clock
                        elif l1d_srrip_hit is not None:
                            l1d_srrip_hit[sidx][way] = 0
                        else:
                            l1d_on_hit(sidx, way)
                        cl = l1d_sets[sidx][way]
                        latency = trans_latency + l1d_latency
                        # Cache.demand_touch at t + l1d_latency.
                        residual = cl.arrival_cycle - (t + l1d_latency)
                        if residual < 0:
                            residual = 0
                        latency += residual
                        if cl.prefetched:
                            was_late = residual > 0
                            d_l1_useful += 1
                            if was_late:
                                d_l1_late += 1
                            cl.prefetched = False
                            # _credit_useful, "l1d" fast path.
                            if cl.pf_origin != "l2":
                                d_pf_useful += 1
                                if was_late:
                                    d_pf_late += 1
                            else:
                                credit("l2", was_late)
                            pf_lat_v = cl.pf_latency
                            cl.pf_latency = 0
                            if kernel:
                                # _notify_l1d_prefetch_hit: MSHR sampling
                                # (lazy-expiry side effect) + kernel.
                                if t != m1._last_expire:
                                    if m1_entries and t >= m1._min_ready:
                                        m1_expire(t)
                                    else:
                                        m1._last_expire = t
                                # on_prefetch_hit_kernel inlined.
                                key = ip if key_is_ip else vpage
                                hist_insert(key, vline, t)
                                tri_app((ip, vline, t))
                                if 0 < pf_lat_v <= latency_mask:
                                    scratch.clear()
                                    search_into(
                                        key, vline, t, pf_lat_v, scratch
                                    )
                                    record_search(key, scratch)
                        if is_write:
                            cl.dirty = True
                        if kernel:
                            # _run_l1d_prefetcher_on_access, hit=True.
                            if t != m1._last_expire:
                                if m1_entries and t >= m1._min_ready:
                                    m1_expire(t)
                                else:
                                    m1._last_expire = t
                            mshr_occ = (
                                len(m1_entries) / m1_size if m1_size else 0.0
                            )
                            while st and st[0] <= t:
                                st_popleft()
                            # on_access_kernel, hit → no insert.
                            key = ip if key_is_ip else vpage
                            selected = delta_pfd(key)
                            if selected:
                                run_ladder(
                                    selected, ip, vline, t,
                                    mshr_occ < watermark,
                                )
                    else:
                        # ------------------------------ L1D miss
                        d_l1_miss += 1
                        if l1d_drrip is not None:
                            l1d_drrip.record_miss(pline & l1d_set_mask)
                        # MSHR.lookup inlined (expire memoised).
                        if t != m1._last_expire:
                            if m1_entries and t >= m1._min_ready:
                                m1_expire(t)
                            else:
                                m1._last_expire = t
                        inflight = m1_entries.get(pline)
                        if inflight is not None:
                            # In-flight fetch of the same line: merge.
                            d_m1_merges += 1
                            inflight.merged_demands += 1
                            wait = inflight.ready_cycle - t
                            if wait < 0:
                                wait = 0
                            if inflight.is_prefetch:
                                inflight.is_prefetch = False
                                d_pf_useful += 1
                                d_pf_late += 1
                                d_pf_promoted += 1
                                if kernel:
                                    # _notify_l1d_prefetch_hit.
                                    pf_lat_v = (
                                        inflight.ready_cycle
                                        - inflight.alloc_cycle
                                    )
                                    if pf_lat_v < 1:
                                        pf_lat_v = 1
                                    if t != m1._last_expire:
                                        if m1_entries and t >= m1._min_ready:
                                            m1_expire(t)
                                        else:
                                            m1._last_expire = t
                                    key = ip if key_is_ip else vpage
                                    hist_insert(key, vline, t)
                                    tri_app((ip, vline, t))
                                    if 0 < pf_lat_v <= latency_mask:
                                        scratch.clear()
                                        search_into(
                                            key, vline, t, pf_lat_v, scratch
                                        )
                                        record_search(key, scratch)
                            if kernel:
                                # _run_l1d_prefetcher_on_access, hit=False.
                                if t != m1._last_expire:
                                    if m1_entries and t >= m1._min_ready:
                                        m1_expire(t)
                                    else:
                                        m1._last_expire = t
                                mshr_occ = (
                                    len(m1_entries) / m1_size
                                    if m1_size else 0.0
                                )
                                while st and st[0] <= t:
                                    st_popleft()
                                key = ip if key_is_ip else vpage
                                hist_insert(key, vline, t)
                                tri_app((ip, vline, t))
                                selected = delta_pfd(key)
                                if selected:
                                    run_ladder(
                                        selected, ip, vline, t,
                                        mshr_occ < watermark,
                                    )
                            latency = trans_latency + l1d_latency + wait
                        else:
                            # True miss: fetch from L2 (and below).  A
                            # full MSHR stalls the demand until an entry
                            # frees (the stall is part of the latency).
                            detect_time = t + l1d_latency
                            miss_time = detect_time
                            if miss_time != m1._last_expire:
                                if m1_entries and miss_time >= m1._min_ready:
                                    m1_expire(miss_time)
                                else:
                                    m1._last_expire = miss_time
                            if len(m1_entries) >= m1_size:
                                earliest = (
                                    m1._min_ready if m1_entries else miss_time
                                )
                                if earliest > miss_time:
                                    miss_time = earliest
                            d_t12_dem += 1
                            # _access_l2(is_prefetch=False) inlined.
                            way2 = l2_where.get(pline)
                            if way2 is not None:
                                d_l2_acc += 1
                                d_l2_hit += 1
                                sidx2 = pline & l2_set_mask
                                if l2_lru is not None:
                                    clock = l2_lru_clock[sidx2] + 1
                                    l2_lru_clock[sidx2] = clock
                                    l2_lru_age[sidx2][way2] = clock
                                elif l2_srrip_hit is not None:
                                    l2_srrip_hit[sidx2][way2] = 0
                                else:
                                    l2_on_hit(sidx2, way2)
                                cl2 = l2_sets[sidx2][way2]
                                ready = miss_time + l2_latency
                                if cl2.arrival_cycle > ready:
                                    ready = cl2.arrival_cycle
                                # L2 demand_touch (residual ≤ 0 by
                                # construction, so never late).
                                if cl2.prefetched:
                                    d_l2_useful += 1
                                    cl2.prefetched = False
                                    po = cl2.pf_origin
                                    if po == "l1d":
                                        d_pf_useful += 1
                                    elif po == "l2":
                                        credit("l2", False)
                            else:
                                d_l2_acc += 1
                                d_l2_miss += 1
                                if l2_drrip is not None:
                                    l2_drrip.record_miss(pline & l2_set_mask)
                                if miss_time != m2._last_expire:
                                    if (
                                        m2_entries
                                        and miss_time >= m2._min_ready
                                    ):
                                        m2_expire(miss_time)
                                    else:
                                        m2._last_expire = miss_time
                                inflight2 = m2_entries.get(pline)
                                if inflight2 is not None:
                                    d_m2_merges += 1
                                    inflight2.merged_demands += 1
                                    wait2 = inflight2.ready_cycle - miss_time
                                    if wait2 < 0:
                                        wait2 = 0
                                    if inflight2.is_prefetch:
                                        inflight2.is_prefetch = False
                                        d_pf2_useful += 1
                                        d_pf2_late += 1
                                        d_pf2_promoted += 1
                                    ready = miss_time + l2_latency + wait2
                                else:
                                    mt2 = miss_time + l2_latency
                                    d_t2l_dem += 1
                                    # _access_llc(is_prefetch=False).
                                    d_h_llc_acc += 1
                                    way3 = llc_where.get(pline)
                                    if way3 is not None:
                                        d_llc_acc += 1
                                        d_llc_hit += 1
                                        sidx3 = pline & llc_set_mask
                                        if llc_lru is not None:
                                            clock = llc_lru_clock[sidx3] + 1
                                            llc_lru_clock[sidx3] = clock
                                            llc_lru_age[sidx3][way3] = clock
                                        elif llc_srrip_hit is not None:
                                            llc_srrip_hit[sidx3][way3] = 0
                                        else:
                                            llc_on_hit(sidx3, way3)
                                        cl3 = llc_sets[sidx3][way3]
                                        ready = mt2 + llc_latency
                                        if cl3.arrival_cycle > ready:
                                            ready = cl3.arrival_cycle
                                        # LLC demand_touch (never late).
                                        if cl3.prefetched:
                                            d_llc_useful += 1
                                            cl3.prefetched = False
                                            po = cl3.pf_origin
                                            if po == "l1d":
                                                d_pf_useful += 1
                                            elif po == "l2":
                                                credit("l2", False)
                                    else:
                                        d_llc_acc += 1
                                        d_llc_miss += 1
                                        if llc_drrip is not None:
                                            llc_drrip.record_miss(
                                                pline & llc_set_mask
                                            )
                                        mt3 = mt2 + llc_latency
                                        d_h_llc_miss += 1
                                        d_h_dram += 1
                                        d_tld_dem += 1
                                        ready = dram_read(pline, mt3)
                                        victim3 = llc_fill(
                                            pline, now=mt3,
                                            arrival_cycle=ready,
                                            is_prefetch=False,
                                        )
                                        if victim3 is not None:
                                            handle_wb(llc, victim3, ready)
                                    if mt2 != m2._last_expire:
                                        if (
                                            m2_entries
                                            and mt2 >= m2._min_ready
                                        ):
                                            m2_expire(mt2)
                                        else:
                                            m2._last_expire = mt2
                                    if len(m2_entries) < m2_size:
                                        m2_allocate(
                                            pline, mt2, ready, False,
                                            ip=ip,
                                        )
                                    victim2 = l2_fill(
                                        pline, now=mt2,
                                        arrival_cycle=ready,
                                        is_prefetch=False, ip=ip,
                                    )
                                    if victim2 is not None:
                                        handle_wb(l2, victim2, ready)
                            m1_allocate(
                                pline, miss_time, ready, is_prefetch=False,
                                ip=ip, vline=vline,
                            )
                            victim = l1d_fill(
                                pline,
                                now=miss_time,
                                arrival_cycle=ready,
                                is_prefetch=False,
                                ip=ip,
                                vline=vline,
                            )
                            if victim is not None:
                                handle_wb(l1d, victim, ready)
                            if is_write:
                                l1d_mark_dirty(pline)
                            if kernel:
                                # _run_l1d_prefetcher_on_access, hit=False.
                                if t != m1._last_expire:
                                    if m1_entries and t >= m1._min_ready:
                                        m1_expire(t)
                                    else:
                                        m1._last_expire = t
                                mshr_occ = (
                                    len(m1_entries) / m1_size
                                    if m1_size else 0.0
                                )
                                while st and st[0] <= t:
                                    st_popleft()
                                key = ip if key_is_ip else vpage
                                hist_insert(key, vline, t)
                                tri_app((ip, vline, t))
                                selected = delta_pfd(key)
                                if selected:
                                    run_ladder(
                                        selected, ip, vline, t,
                                        mshr_occ < watermark,
                                    )
                                # on_fill_kernel inlined (demand fill).
                                fl = ready - miss_time
                                if 0 < fl <= latency_mask:
                                    scratch.clear()
                                    search_into(
                                        key, vline, miss_time, fl, scratch
                                    )
                                    record_search(key, scratch)
                            latency = (
                                trans_latency + l1d_latency
                                + (ready - detect_time)
                            )

                    # -- CoreModel.issue_memory (back half)
                    if is_write:
                        completion = issue_t + 1
                    else:
                        completion = issue_t + latency
                        loads_app(completion)
                    retire = c_retire + retire_incr
                    if completion > retire:
                        retire = completion
                    c_retire = retire
                    w_app((k_i, retire))

                # Chunk boundary: deliver the training stream.
                if kernel and triples:
                    on_batch(triples)
                    triples = []
                    tri_app = triples.append
                i = j
        except ReproError:
            raise
        except Exception as exc:
            # Span deltas are deliberately not flushed: a crashed run's
            # statistics are discarded, and stock structures never raise
            # here (fault injectors demote to the classic loop).
            raise _crash(exc, lo, hi, d_l1_acc) from exc

        # ------------------------------------------------------------------
        # Flush span deltas (additive) and write back core scalars.
        # ------------------------------------------------------------------
        dtlb_stats2 = dtlb.stats
        dtlb_stats2.accesses += d_dt_acc
        dtlb_stats2.hits += d_dt_hit
        l1s.demand_accesses += d_l1_acc
        l1s.demand_hits += d_l1_hit
        l1s.demand_misses += d_l1_miss
        l1s.useful_prefetches += d_l1_useful
        l1s.late_prefetches += d_l1_late
        l2s.demand_accesses += d_l2_acc
        l2s.demand_hits += d_l2_hit
        l2s.demand_misses += d_l2_miss
        l2s.useful_prefetches += d_l2_useful
        llcs.demand_accesses += d_llc_acc
        llcs.demand_hits += d_llc_hit
        llcs.demand_misses += d_llc_miss
        llcs.useful_prefetches += d_llc_useful
        h.llc_demand_accesses += d_h_llc_acc
        h.llc_demand_misses += d_h_llc_miss
        h.dram_demand_reads += d_h_dram
        tr12 = h.traffic_l1d_l2
        tr12.demand += d_t12_dem
        tr12.prefetch += d_t12_pf
        tr2l = h.traffic_l2_llc
        tr2l.demand += d_t2l_dem
        tr2l.prefetch += d_t2l_pf
        trld = h.traffic_llc_dram
        trld.demand += d_tld_dem
        trld.prefetch += d_tld_pf
        pfs1 = h._pf_l1d_stats
        pfs1.suggested += d_pf_sugg
        pfs1.issued += d_pf_issued
        pfs1.fills += d_pf_fills
        pfs1.useful += d_pf_useful
        pfs1.late += d_pf_late
        pfs1.promoted += d_pf_promoted
        pfs1.dropped_translation += d_pf_dtrans
        pfs1.dropped_duplicate += d_pf_ddup
        pfs1.dropped_queue_full += d_pf_dq
        pfs1.dropped_mshr_full += d_pf_dm
        pfs2 = h.pf_stats["l2"]
        pfs2.useful += d_pf2_useful
        pfs2.late += d_pf2_late
        pfs2.promoted += d_pf2_promoted
        stlb_stats.prefetch_probes += d_stlb_probes
        stlb_stats.prefetch_probe_hits += d_stlb_hits
        m1.merges += d_m1_merges
        m2.merges += d_m2_merges
        if kernel:
            kern.cross_page_suppressed += d_cross
        core._instr = c_instr
        core._frontend = c_frontend
        core._retire_frontier = c_retire
        core._rob_head_retire = c_rob_head

    def run_span(lo: int, hi: int) -> None:
        mode = batch_mode(h, core)
        if mode:
            _run_fused(lo, hi, mode == "kernel")
        else:
            _run_demoted(lo, hi)

    return run_span
