"""SimSan: runtime invariant checking for the simulation core.

An opt-in instrumentation layer that validates deep structural
invariants of the simulated hardware *while the simulation runs*,
instead of trusting post-hoc statistics checks.  Attach it with
:func:`attach_sanitizer` (or the ``--sanitize`` CLI flag); it wraps
``Hierarchy.demand_access`` and, every ``check_every`` accesses, walks
the hierarchy's structures:

* **cache** — presence-index (``_where``) ↔ way-array consistency,
  ``_valid_count`` bookkeeping, duplicate-tag/duplicate-way detection,
  prefetch metadata ranges;
* **replacement** — LRU clock uniqueness and bounds, SRRIP/DRRIP RRPV
  range, DRRIP PSEL range;
* **mshr** — occupancy bound, per-entry timestamp monotonicity
  (``alloc_cycle <= ready_cycle``), expired-entry leaks (an entry whose
  ``ready_cycle`` is at or before the last expire scan should have been
  released), and soundness of the ``_min_ready`` expire guard;
* **pq** — occupancy bound and FIFO service-time discipline;
* **berti** — delta-table tag-index consistency, coverage/counter
  bounds (``coverage <= counter <= counter_max - 1``), status validity,
  FIFO pointer ranges, and history-table ring discipline (ages strictly
  decreasing walking back from the insertion pointer) with
  hardware-width field bounds.

Checks are strictly **read-only**: they never call methods with lazy
side effects (MSHR/PQ expiry), so an instrumented run is bit-identical
to an uninstrumented one.  A violation raises a typed
:class:`~repro.errors.SanitizerError` carrying the index of the access
after which it was detected and a dump of the offending structure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.delta_table import L2_PREF_REPL, NO_PREF, DeltaTable
from repro.core.history_table import HistoryTable
from repro.errors import SanitizerError
from repro.memory.cache import Cache
from repro.memory.hierarchy import Hierarchy, _FIFOQueue
from repro.memory.mshr import MSHR
from repro.memory.replacement import (
    DRRIPPolicy,
    LRUPolicy,
    SRRIPPolicy,
)
from repro.sanitizer.config import SanitizerConfig

#: (structure name, message, dump) — one detected violation.
Violation = Tuple[str, str, Dict[str, Any]]


# ----------------------------------------------------------------------
# Per-structure checkers (read-only, usable standalone in tests)
# ----------------------------------------------------------------------

def check_cache(cache: Cache) -> List[Violation]:
    """Structural consistency of one cache's presence index and ways."""
    out: List[Violation] = []
    name = cache.name
    sets = cache.sets
    ways = cache.ways
    num_sets = cache.num_sets
    mask = cache._set_mask

    claimed: Dict[Tuple[int, int], int] = {}
    for line, way in cache._where.items():
        sidx = line & mask
        dump = {"cache": name, "line": line, "set": sidx, "way": way}
        if not 0 <= way < ways:
            out.append((name, f"_where[{line:#x}] = way {way} out of "
                        f"[0, {ways})", dump))
            continue
        ways_list = sets[sidx]
        if not ways_list:
            out.append((name, f"_where[{line:#x}] points into an "
                        f"unmaterialised set {sidx}", dump))
            continue
        cl = ways_list[way]
        if not cl.valid:
            out.append((name, f"_where[{line:#x}] points at invalid "
                        f"way {way} of set {sidx}", dump))
        elif cl.tag != line:
            out.append((name, f"_where[{line:#x}] points at way {way} "
                        f"holding tag {cl.tag:#x}",
                        {**dump, "found_tag": cl.tag}))
        prev = claimed.setdefault((sidx, way), line)
        if prev != line:
            out.append((name, f"ways aliased: lines {prev:#x} and "
                        f"{line:#x} both map to set {sidx} way {way}",
                        {**dump, "other_line": prev}))

    valid_total = 0
    for sidx in range(num_sets):
        ways_list = sets[sidx]
        if not ways_list:
            if cache._valid_count[sidx]:
                out.append((name, f"set {sidx} unmaterialised but "
                            f"_valid_count = {cache._valid_count[sidx]}",
                            {"cache": name, "set": sidx}))
            continue
        valid = 0
        seen_tags: Dict[int, int] = {}
        for way, cl in enumerate(ways_list):
            if not cl.valid:
                continue
            valid += 1
            other = seen_tags.setdefault(cl.tag, way)
            if other != way:
                out.append((name, f"duplicate tag {cl.tag:#x} in set "
                            f"{sidx} (ways {other} and {way})",
                            {"cache": name, "set": sidx, "tag": cl.tag}))
            if cache._where.get(cl.tag) != way:
                out.append((name, f"valid line {cl.tag:#x} (set {sidx} "
                            f"way {way}) missing from _where",
                            {"cache": name, "set": sidx, "way": way,
                             "tag": cl.tag}))
            if cl.pf_origin not in ("", "l1d", "l2"):
                out.append((name, f"line {cl.tag:#x} has unknown "
                            f"pf_origin {cl.pf_origin!r}",
                            {"cache": name, "tag": cl.tag,
                             "pf_origin": cl.pf_origin}))
            if cl.pf_latency < 0:
                out.append((name, f"line {cl.tag:#x} has negative "
                            f"pf_latency {cl.pf_latency}",
                            {"cache": name, "tag": cl.tag,
                             "pf_latency": cl.pf_latency}))
        if valid != cache._valid_count[sidx]:
            out.append((name, f"set {sidx}: {valid} valid ways but "
                        f"_valid_count = {cache._valid_count[sidx]}",
                        {"cache": name, "set": sidx, "valid": valid,
                         "valid_count": cache._valid_count[sidx]}))
        valid_total += valid
    if valid_total != len(cache._where):
        out.append((name, f"{valid_total} valid lines but _where has "
                    f"{len(cache._where)} entries",
                    {"cache": name, "valid": valid_total,
                     "where": len(cache._where)}))
    return out


def check_replacement(cache: Cache) -> List[Violation]:
    """Replacement-metadata consistency for one cache's policy."""
    out: List[Violation] = []
    name = f"{cache.name}.policy"
    policy = cache.policy
    if isinstance(policy, LRUPolicy):
        for sidx in range(cache.num_sets):
            ways_list = cache.sets[sidx]
            if not ways_list:
                continue
            clock = policy._clock[sidx]
            ages = policy._age[sidx]
            seen: Dict[int, int] = {}
            for way, cl in enumerate(ways_list):
                if not cl.valid:
                    continue
                age = ages[way]
                dump = {"cache": cache.name, "set": sidx, "way": way,
                        "age": age, "clock": clock}
                if age > clock:
                    out.append((name, f"set {sidx} way {way}: LRU age "
                                f"{age} ahead of set clock {clock}", dump))
                other = seen.setdefault(age, way)
                if other != way:
                    out.append((name, f"set {sidx}: LRU age {age} shared "
                                f"by ways {other} and {way} (clock "
                                f"uniqueness broken)", dump))
    if isinstance(policy, SRRIPPolicy):
        max_rrpv = SRRIPPolicy.MAX_RRPV
        for sidx in range(cache.num_sets):
            if not cache.sets[sidx]:
                continue
            for way, rrpv in enumerate(policy._rrpv[sidx]):
                if not 0 <= rrpv <= max_rrpv:
                    out.append((name, f"set {sidx} way {way}: RRPV {rrpv} "
                                f"out of [0, {max_rrpv}]",
                                {"cache": cache.name, "set": sidx,
                                 "way": way, "rrpv": rrpv}))
    if isinstance(policy, DRRIPPolicy):
        if not 0 <= policy._psel <= policy._psel_max:
            out.append((name, f"DRRIP PSEL {policy._psel} out of "
                        f"[0, {policy._psel_max}]",
                        {"cache": cache.name, "psel": policy._psel}))
    return out


def check_mshr(mshr: MSHR, name: str) -> List[Violation]:
    """Entry-leak, double-accounting, and timestamp checks for one MSHR."""
    out: List[Violation] = []
    entries = mshr._entries
    if len(entries) > mshr.size:
        out.append((name, f"{len(entries)} entries exceed capacity "
                    f"{mshr.size}",
                    {"mshr": name, "entries": len(entries),
                     "size": mshr.size}))
    last_expire = mshr._last_expire
    min_ready: Optional[int] = None
    for line, e in entries.items():
        dump = {"mshr": name, "line": line, "alloc": e.alloc_cycle,
                "ready": e.ready_cycle, "last_expire": last_expire}
        if e.line != line:
            out.append((name, f"entry keyed {line:#x} records line "
                        f"{e.line:#x}", {**dump, "entry_line": e.line}))
        if e.ready_cycle < e.alloc_cycle:
            out.append((name, f"entry {line:#x}: ready_cycle "
                        f"{e.ready_cycle} before alloc_cycle "
                        f"{e.alloc_cycle} (timestamp monotonicity)", dump))
        if e.ready_cycle <= last_expire:
            out.append((name, f"leaked entry {line:#x}: ready_cycle "
                        f"{e.ready_cycle} at or before the last expire "
                        f"scan ({last_expire})", dump))
        if e.merged_demands < 0:
            out.append((name, f"entry {line:#x}: negative merge count",
                        dump))
        if min_ready is None or e.ready_cycle < min_ready:
            min_ready = e.ready_cycle
    if min_ready is not None and mshr._min_ready > min_ready:
        # An overshooting guard would skip expiry scans that have work,
        # leaking entries and inflating occupancy — the exact corruption
        # the PR 2 fast path could introduce.
        out.append((name, f"_min_ready {mshr._min_ready} overshoots the "
                    f"earliest outstanding ready_cycle {min_ready} "
                    f"(expire guard unsound)",
                    {"mshr": name, "min_ready": mshr._min_ready,
                     "actual_min": min_ready}))
    return out


def check_pq(pq: _FIFOQueue, name: str = "pq") -> List[Violation]:
    """Occupancy bound and FIFO discipline of the prefetch queue."""
    out: List[Violation] = []
    st = pq._service_times
    if len(st) > pq.size:
        out.append((name, f"{len(st)} pending service times exceed "
                    f"capacity {pq.size}",
                    {"pq": name, "pending": len(st), "size": pq.size}))
    prev = None
    for i, t in enumerate(st):
        if prev is not None and t < prev:
            out.append((name, f"service times not FIFO: entry {i} "
                        f"({t}) earlier than entry {i - 1} ({prev})",
                        {"pq": name, "index": i, "time": t,
                         "previous": prev}))
            break
        prev = t
    return out


def check_delta_table(table: DeltaTable, name: str) -> List[Violation]:
    """Berti delta-table coverage/counter bounds and index consistency.

    Validates the kernel's columnar layout: entry columns, dense-prefix
    slot discipline, the ``_by_tag``/``by_delta`` mirrors, and — new with
    the kernelized table — that the dirty-bit–invalidated prediction
    caches agree with a from-scratch recomputation (a stale cache is
    exactly the corruption the memoisation could introduce).
    """
    out: List[Violation] = []
    cfg = table.config
    coverage_cap = (1 << cfg.coverage_bits) - 1
    n = len(table._valid)
    per_entry = cfg.deltas_per_entry
    if not 0 <= table._fifo_ptr < n:
        out.append((name, f"FIFO pointer {table._fifo_ptr} out of "
                    f"[0, {n})", {"table": name, "ptr": table._fifo_ptr}))
    for tag, e in table._by_tag.items():
        if not 0 <= e < n or not table._valid[e] or table._tags[e] != tag:
            out.append((name, f"_by_tag[{tag:#x}] points at "
                        f"{'invalid' if (0 <= e < n and not table._valid[e]) else 'mistagged'} "
                        f"entry {e}",
                        {"table": name, "tag": tag, "entry": e}))
    valid_entries = 0
    for e in range(n):
        if not table._valid[e]:
            continue
        valid_entries += 1
        tag = table._tags[e]
        counter = table._counters[e]
        count = table._slot_count[e]
        dump = {"table": name, "tag": tag, "counter": counter, "entry": e}
        if table._by_tag.get(tag) != e:
            out.append((name, f"valid entry {tag:#x} missing from "
                        f"_by_tag", dump))
        if not 0 <= counter < cfg.counter_max:
            out.append((name, f"entry {tag:#x}: search counter "
                        f"{counter} out of [0, {cfg.counter_max}) "
                        f"(phase close missed)", dump))
        if not 0 <= count <= per_entry:
            out.append((name, f"entry {tag:#x}: slot count {count} out "
                        f"of [0, {per_entry}]", dump))
            continue
        deltas = table._slot_delta[e]
        covs = table._slot_cov[e]
        statuses = table._slot_status[e]
        by_delta = table._by_delta[e]
        for i in range(count):
            sdump = {**dump, "slot": i, "delta": deltas[i],
                     "coverage": covs[i], "status": statuses[i]}
            if not 0 <= covs[i] <= coverage_cap:
                out.append((name, f"entry {tag:#x} slot {i}: "
                            f"coverage {covs[i]} out of "
                            f"[0, {coverage_cap}]", sdump))
            elif covs[i] > counter:
                out.append((name, f"entry {tag:#x} slot {i}: "
                            f"coverage {covs[i]} exceeds the "
                            f"phase's search counter {counter}", sdump))
            if not NO_PREF <= statuses[i] <= L2_PREF_REPL:
                out.append((name, f"entry {tag:#x} slot {i}: "
                            f"unknown status {statuses[i]}", sdump))
            if by_delta.get(deltas[i]) != i:
                out.append((name, f"entry {tag:#x} slot {i}: "
                            f"delta {deltas[i]} not mirrored in "
                            f"by_delta", sdump))
        if len(by_delta) != count:
            out.append((name, f"entry {tag:#x}: {count} valid "
                        f"slots but by_delta holds {len(by_delta)}",
                        {**dump, "valid_slots": count,
                         "by_delta": len(by_delta)}))
        # The lazy victim heap may hold stale pairs, but the *current*
        # pair of every replacement-candidate slot must be present —
        # a missing pair silently protects the slot from eviction.
        heap_pairs = set(table._evict_heap[e])
        for i in range(count):
            st = statuses[i]
            if (st == NO_PREF or st == L2_PREF_REPL) and \
                    (covs[i], i) not in heap_pairs:
                out.append((name, f"entry {tag:#x} slot {i}: "
                            f"replacement candidate missing from the "
                            f"victim heap",
                            {**dump, "slot": i, "coverage": covs[i],
                             "status": st}))
        out.extend(_check_delta_caches(table, e, name, dump))
    if valid_entries != len(table._by_tag):
        out.append((name, f"{valid_entries} valid entries but _by_tag "
                    f"holds {len(table._by_tag)}",
                    {"table": name, "valid": valid_entries,
                     "by_tag": len(table._by_tag)}))
    return out


def _check_delta_caches(
    table: DeltaTable, e: int, name: str, dump: Dict[str, Any]
) -> List[Violation]:
    """A populated prediction cache must equal a fresh recomputation."""
    out: List[Violation] = []
    cfg = table.config
    count = table._slot_count[e]
    deltas = table._slot_delta[e]
    covs = table._slot_cov[e]
    statuses = table._slot_status[e]
    cached = table._pf_cache[e]
    if cached is not None:
        expected = [
            (deltas[i], statuses[i])
            for i in range(count)
            if statuses[i] != NO_PREF
        ]
        expected.sort(key=lambda ds: ds[1] != 1)  # L1D_PREF first
        expected = expected[: cfg.max_prefetch_deltas]
        if not table._warmed[e]:
            out.append((name, f"entry {dump['tag']:#x}: pf_cache "
                        f"populated before the first phase completed",
                        dump))
        elif cached != expected:
            out.append((name, f"entry {dump['tag']:#x}: stale pf_cache "
                        f"(dirty-bit invalidation missed)",
                        {**dump, "cached": list(cached),
                         "expected": expected}))
    warm = table._warm_cache[e]
    if warm is not None:
        counter = table._counters[e]
        if table._warmed[e] or counter < cfg.warmup_min_searches:
            out.append((name, f"entry {dump['tag']:#x}: warm_cache "
                        f"populated outside the warmup window", dump))
        else:
            threshold = cfg.warmup_watermark * counter
            expected = [
                (deltas[i], 1)  # L1D_PREF
                for i in range(count)
                if covs[i] >= threshold
            ][: cfg.max_prefetch_deltas]
            if warm != expected:
                out.append((name, f"entry {dump['tag']:#x}: stale "
                            f"warm_cache (counter invalidation missed)",
                            {**dump, "cached": list(warm),
                             "expected": expected}))
    return out


def check_reference_delta_table(table: Any, name: str) -> List[Violation]:
    """The original object-per-slot layout (reference engine only)."""
    out: List[Violation] = []
    cfg = table.config
    coverage_cap = (1 << cfg.coverage_bits) - 1
    n = len(table._entries)
    if not 0 <= table._fifo_ptr < n:
        out.append((name, f"FIFO pointer {table._fifo_ptr} out of "
                    f"[0, {n})", {"table": name, "ptr": table._fifo_ptr}))
    for tag, entry in table._by_tag.items():
        if not entry.valid or entry.tag != tag:
            out.append((name, f"_by_tag[{tag:#x}] points at "
                        f"{'invalid' if not entry.valid else 'mistagged'} "
                        f"entry (tag {entry.tag:#x})",
                        {"table": name, "tag": tag,
                         "entry_tag": entry.tag, "valid": entry.valid}))
    valid_entries = 0
    for entry in table._entries:
        if not entry.valid:
            continue
        valid_entries += 1
        dump = {"table": name, "tag": entry.tag, "counter": entry.counter}
        if table._by_tag.get(entry.tag) is not entry:
            out.append((name, f"valid entry {entry.tag:#x} missing from "
                        f"_by_tag", dump))
        if not 0 <= entry.counter < cfg.counter_max:
            out.append((name, f"entry {entry.tag:#x}: search counter "
                        f"{entry.counter} out of [0, {cfg.counter_max}) "
                        f"(phase close missed)", dump))
        valid_slots = 0
        for i, slot in enumerate(entry.slots):
            if not slot.valid:
                continue
            valid_slots += 1
            sdump = {**dump, "slot": i, "delta": slot.delta,
                     "coverage": slot.coverage, "status": slot.status}
            if not 0 <= slot.coverage <= coverage_cap:
                out.append((name, f"entry {entry.tag:#x} slot {i}: "
                            f"coverage {slot.coverage} out of "
                            f"[0, {coverage_cap}]", sdump))
            elif slot.coverage > entry.counter:
                out.append((name, f"entry {entry.tag:#x} slot {i}: "
                            f"coverage {slot.coverage} exceeds the "
                            f"phase's search counter {entry.counter}",
                            sdump))
            if not NO_PREF <= slot.status <= L2_PREF_REPL:
                out.append((name, f"entry {entry.tag:#x} slot {i}: "
                            f"unknown status {slot.status}", sdump))
            if entry.by_delta.get(slot.delta) is not slot:
                out.append((name, f"entry {entry.tag:#x} slot {i}: "
                            f"delta {slot.delta} not mirrored in "
                            f"by_delta", sdump))
        if len(entry.by_delta) != valid_slots:
            out.append((name, f"entry {entry.tag:#x}: {valid_slots} valid "
                        f"slots but by_delta holds {len(entry.by_delta)}",
                        {**dump, "valid_slots": valid_slots,
                         "by_delta": len(entry.by_delta)}))
    if valid_entries != len(table._by_tag):
        out.append((name, f"{valid_entries} valid entries but _by_tag "
                    f"holds {len(table._by_tag)}",
                    {"table": name, "valid": valid_entries,
                     "by_tag": len(table._by_tag)}))
    return out


def check_history_table(table: HistoryTable, name: str) -> List[Violation]:
    """Berti history-table FIFO-ring discipline and field widths.

    Validates the kernel's flat columnar rings, including the IP-tag
    skip masks: every mask bit must point at a way holding that tag and
    every occupied way must be covered by exactly its tag's mask.
    """
    out: List[Violation] = []
    cfg = table.config
    ways = cfg.history_ways
    tags = table._tags
    for sidx in range(cfg.history_sets):
        base = sidx * ways
        ptr = table._fifo_ptr[sidx]
        clock = table._fifo_clock[sidx]
        if not 0 <= ptr < ways:
            out.append((name, f"set {sidx}: FIFO pointer {ptr} out of "
                        f"[0, {ways})", {"table": name, "set": sidx,
                                         "ptr": ptr}))
            continue
        prev_order = None
        gap_seen = False
        max_order = 0
        for i in range(1, ways + 1):
            way = (ptr - i) % ways
            idx = base + way
            if tags[idx] < 0:
                gap_seen = True
                continue
            order = table._orders[idx]
            dump = {"table": name, "set": sidx, "way": way, "order": order}
            if gap_seen:
                # The ring fills contiguously from the pointer; a way
                # *older* than an empty way means the FIFO order broke.
                out.append((name, f"set {sidx}: occupied way behind an "
                            f"empty way (ring discipline broken)", dump))
                break
            if prev_order is not None and order >= prev_order:
                out.append((name, f"set {sidx}: insertion order not "
                            f"strictly decreasing walking back from the "
                            f"pointer ({order} after {prev_order})",
                            {**dump, "previous": prev_order}))
                break
            prev_order = order
            max_order = max(max_order, order)
            if tags[idx] > table._tag_mask:
                out.append((name, f"set {sidx}: ip_tag {tags[idx]:#x} "
                            f"wider than the hardware field", dump))
            if table._lines[idx] > table._line_mask or table._lines[idx] < 0:
                out.append((name, f"set {sidx}: line "
                            f"{table._lines[idx]:#x} wider than the "
                            f"hardware field", dump))
            if table._tss[idx] > table._ts_mask or table._tss[idx] < 0:
                out.append((name, f"set {sidx}: timestamp "
                            f"{table._tss[idx]} wider than the hardware "
                            f"field", dump))
        if max_order > clock:
            out.append((name, f"set {sidx}: newest order {max_order} "
                        f"ahead of the set clock {clock}",
                        {"table": name, "set": sidx,
                         "max_order": max_order, "clock": clock}))
        # Skip-chain ↔ ring consistency: the chains are pure acceleration
        # state, so any drift silently changes search results.  Expected:
        # for each tag, the (line, ts) pairs of its ways, oldest first.
        chains = table._chains[sidx]
        expected: Dict[int, List] = {}
        for i in range(ways, 0, -1):  # oldest way first
            idx = base + (ptr - i) % ways
            t = tags[idx]
            if t >= 0:
                expected.setdefault(t, []).append(
                    (table._lines[idx], table._tss[idx])
                )
        actual = {t: list(dq) for t, dq in chains.items()}
        if actual != expected:
            out.append((name, f"set {sidx}: IP-tag skip chains disagree "
                        f"with the ring contents",
                        {"table": name, "set": sidx,
                         "chains": actual, "expected": expected}))
    return out


def check_reference_history_table(table: Any, name: str) -> List[Violation]:
    """The original tuple-row layout (reference engine only)."""
    out: List[Violation] = []
    ways = table.config.history_ways
    for sidx, rows in enumerate(table._sets):
        ptr = table._fifo_ptr[sidx]
        clock = table._fifo_clock[sidx]
        if not 0 <= ptr < ways:
            out.append((name, f"set {sidx}: FIFO pointer {ptr} out of "
                        f"[0, {ways})", {"table": name, "set": sidx,
                                         "ptr": ptr}))
            continue
        prev_order = None
        gap_seen = False
        max_order = 0
        for i in range(1, ways + 1):
            row = rows[(ptr - i) % ways]
            if row is None:
                gap_seen = True
                continue
            ip_tag, line, ts, order = row
            dump = {"table": name, "set": sidx, "row": (ptr - i) % ways,
                    "order": order}
            if gap_seen:
                out.append((name, f"set {sidx}: occupied way behind an "
                            f"empty way (ring discipline broken)", dump))
                break
            if prev_order is not None and order >= prev_order:
                out.append((name, f"set {sidx}: insertion order not "
                            f"strictly decreasing walking back from the "
                            f"pointer ({order} after {prev_order})",
                            {**dump, "previous": prev_order}))
                break
            prev_order = order
            max_order = max(max_order, order)
            if ip_tag > table._tag_mask or ip_tag < 0:
                out.append((name, f"set {sidx}: ip_tag {ip_tag:#x} wider "
                            f"than the hardware field", dump))
            if line > table._line_mask or line < 0:
                out.append((name, f"set {sidx}: line {line:#x} wider "
                            f"than the hardware field", dump))
            if ts > table._ts_mask or ts < 0:
                out.append((name, f"set {sidx}: timestamp {ts} wider "
                            f"than the hardware field", dump))
        if max_order > clock:
            out.append((name, f"set {sidx}: newest order {max_order} "
                        f"ahead of the set clock {clock}",
                        {"table": name, "set": sidx,
                         "max_order": max_order, "clock": clock}))
    return out


def check_berti(pf: Any, name: str) -> List[Violation]:
    """Berti-table checks for any prefetcher exposing history/deltas.

    Dispatches on the concrete table class: the kernel layouts get the
    columnar checkers (including cache-consistency), the reference
    engine's object layouts get the original checkers.
    """
    from repro.core.reference_tables import (
        ReferenceDeltaTable,
        ReferenceHistoryTable,
    )

    out: List[Violation] = []
    deltas = getattr(pf, "deltas", None)
    history = getattr(pf, "history", None)
    if isinstance(deltas, DeltaTable):
        out.extend(check_delta_table(deltas, f"{name}.deltas"))
    elif isinstance(deltas, ReferenceDeltaTable):
        out.extend(check_reference_delta_table(deltas, f"{name}.deltas"))
    if isinstance(history, HistoryTable):
        out.extend(check_history_table(history, f"{name}.history"))
    elif isinstance(history, ReferenceHistoryTable):
        out.extend(check_reference_history_table(
            history, f"{name}.history"))
    return out


def check_hierarchy(
    hierarchy: Hierarchy,
    families: Optional[frozenset] = None,
) -> List[Violation]:
    """Run every enabled invariant family over one hierarchy."""
    fams = families if families is not None else frozenset(
        {"cache", "replacement", "mshr", "pq", "berti"}
    )
    out: List[Violation] = []
    caches = (hierarchy.l1d, hierarchy.l2, hierarchy.llc)
    if "cache" in fams:
        for cache in caches:
            out.extend(check_cache(cache))
    if "replacement" in fams:
        for cache in caches:
            out.extend(check_replacement(cache))
    if "mshr" in fams:
        for mshr, mname in (
            (hierarchy.l1d_mshr, "l1d_mshr"),
            (hierarchy.l2_mshr, "l2_mshr"),
            (hierarchy.llc_mshr, "llc_mshr"),
        ):
            out.extend(check_mshr(mshr, mname))
    if "pq" in fams:
        out.extend(check_pq(hierarchy.pq))
    if "berti" in fams:
        out.extend(check_berti(hierarchy.l1d_prefetcher, "l1d_prefetcher"))
        out.extend(check_berti(hierarchy.l2_prefetcher, "l2_prefetcher"))
    return out


# ----------------------------------------------------------------------
# The attachable sanitizer
# ----------------------------------------------------------------------

class Sanitizer:
    """Wraps a hierarchy's demand path with periodic invariant checks.

    The wrapper is installed as an *instance* attribute shadowing
    ``Hierarchy.demand_access``, so the engine's hoisted callback (and
    the multicore loop's per-record attribute lookup) both route through
    it without any change to the hot path of uninstrumented runs.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: Optional[SanitizerConfig] = None,
        trace: Optional[str] = None,
        start_index: int = 0,
    ) -> None:
        self.hierarchy = hierarchy
        self.config = config or SanitizerConfig()
        self.trace = trace
        self.access_index = start_index
        self.checks_run = 0
        self._countdown = self.config.check_every
        self._inner = hierarchy.demand_access

    def install(self) -> "Sanitizer":
        self.hierarchy.demand_access = self._wrapped  # type: ignore[method-assign]
        return self

    def uninstall(self) -> None:
        self.hierarchy.__dict__.pop("demand_access", None)

    def _wrapped(self, ip: int, vaddr: int, now: int,
                 is_write: bool = False) -> int:
        latency = self._inner(ip, vaddr, now, is_write)
        self.access_index += 1
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.config.check_every
            self.check_now()
        return latency

    def check_now(self) -> None:
        """Validate all enabled families; raise on the first violation."""
        self.checks_run += 1
        violations = check_hierarchy(self.hierarchy, self.config.families)
        if not violations:
            return
        structure, message, dump = violations[0]
        if len(violations) > 1:
            message += f" (+{len(violations) - 1} more violations)"
        raise SanitizerError(
            message,
            trace=self.trace,
            prefetcher=self.hierarchy.l1d_prefetcher.name,
            access_index=self.access_index,
            structure=structure,
            dump=dump if self.config.dump_structures else {},
        )


def attach_sanitizer(
    hierarchy: Hierarchy,
    config: Optional[SanitizerConfig] = None,
    trace: Optional[str] = None,
    start_index: int = 0,
) -> Sanitizer:
    """Install a :class:`Sanitizer` on ``hierarchy``; returns it."""
    return Sanitizer(hierarchy, config, trace, start_index).install()


def sanitizer_post_build(
    config: Optional[SanitizerConfig] = None,
    trace: Optional[str] = None,
):
    """A ``post_build`` hook attaching the sanitizer (for ``simulate``)."""
    def hook(hierarchy: Hierarchy) -> None:
        attach_sanitizer(hierarchy, config, trace)
    return hook
