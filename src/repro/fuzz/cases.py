"""Replayable fuzz cases: the atom the whole subsystem moves around.

A :class:`FuzzCase` is a *self-contained, replayable* unit of work: the
explicit trace records (not a generator spec — a shrunk case must stay
byte-reproducible even if a generator's arithmetic changes), the
configuration vector the oracle ran it under, and provenance describing
where it came from.  Its ``case_id`` is content-derived (SHA-256 of the
canonical JSON of records + config), so two runs that generate the same
case agree on its identity, shrinking produces a *new* identity, and a
corpus file that was hand-edited no longer matches its name.

Case files are JSON documents written atomically; loading one performs
a full schema check and raises the typed
:class:`~repro.errors.FuzzError` on any malformation — the fuzzer's own
artifacts are held to the same standard it enforces on the simulator's
persisted formats.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import BertiConfig
from repro.durability import atomic_write_json
from repro.errors import ConfigError, FuzzError
from repro.prefetchers.registry import make_prefetcher

__all__ = [
    "CASE_SCHEMA",
    "FuzzCase",
    "case_factory",
    "load_case",
]

CASE_SCHEMA = 1

#: Config keys a case may carry; anything else is a schema violation.
_CONFIG_KEYS = {
    "l1d", "l2", "chunk_size", "warmup_fraction", "berti",
    "plant_divergence", "expect", "native_demote_at",
}


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


@dataclass
class FuzzCase:
    """One adversarial (trace, config) pair with a content-derived id."""

    family: str
    seed: int
    #: Explicit ``[ip, vaddr, is_write, gap, dep]`` rows.
    records: List[List[int]]
    #: Oracle configuration: prefetcher names, chunk size, warmup
    #: fraction, BertiConfig field overrides, optional plant index, and
    #: ``expect`` (``"run"`` — legs must agree; ``"reject"`` — every
    #: engine must refuse with a typed error).
    config: Dict[str, Any] = field(default_factory=dict)
    provenance: str = ""
    #: Set on corpus sentinels that *should* fail: replay asserts the
    #: finding's bucket signature matches instead of asserting success.
    expect_finding: Optional[str] = None

    # ------------------------------------------------------------------

    @property
    def case_id(self) -> str:
        blob = _canonical({"records": self.records, "config": self.config})
        return "fz-" + hashlib.sha256(blob.encode("ascii")).hexdigest()[:12]

    @property
    def expect(self) -> str:
        return self.config.get("expect", "run")

    def trace(self):
        """Materialise the records as a simulator :class:`Trace`."""
        from repro.workloads.trace import Trace

        t = Trace(self.case_id)
        t.suite = "fuzz"
        t.description = f"fuzz case, family {self.family}"
        t.extend([(r[0], r[1], bool(r[2]), r[3], r[4])
                  for r in self.records])
        return t

    def berti_config(self) -> Optional[BertiConfig]:
        """The case's BertiConfig, or ``None`` for registry defaults.

        Overrides are validated by ``BertiConfig.__post_init__`` — the
        generators only emit *valid* vectors, so a :class:`ConfigError`
        here means the case file was corrupted or hand-edited.
        """
        overrides = self.config.get("berti")
        if not overrides:
            return None
        return BertiConfig(**overrides)

    def make(self) -> Callable:
        """Prefetcher factory honouring the case's Berti overrides."""
        return case_factory(self.berti_config())

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "schema": CASE_SCHEMA,
            "case_id": self.case_id,
            "family": self.family,
            "seed": self.seed,
            "records": self.records,
            "config": self.config,
            "provenance": self.provenance,
        }
        if self.expect_finding is not None:
            doc["expect_finding"] = self.expect_finding
        return doc

    def save(self, path) -> Path:
        path = Path(path)
        atomic_write_json(path, self.to_dict())
        return path


def case_factory(berti: Optional[BertiConfig]) -> Callable:
    """A registry-compatible factory with Berti's geometry swapped out."""
    if berti is None:
        return make_prefetcher

    def make(name: str):
        if name == "berti":
            from repro.core.berti import BertiPrefetcher

            return BertiPrefetcher(berti)
        return make_prefetcher(name)

    return make


def _fail(path, message: str) -> FuzzError:
    return FuzzError(f"case file {path}: {message}", field="fuzz_case")


def load_case(path) -> FuzzCase:
    """Parse + schema-check a case file; typed errors only."""
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise _fail(path, f"cannot read: {exc}") from exc
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise _fail(path, f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise _fail(path, f"top level is {type(doc).__name__}, not an object")
    if doc.get("schema") != CASE_SCHEMA:
        raise _fail(path, f"unsupported schema {doc.get('schema')!r} "
                          f"(this build reads {CASE_SCHEMA})")
    records = doc.get("records")
    if not isinstance(records, list):
        raise _fail(path, "records is not a list")
    for i, rec in enumerate(records):
        if (not isinstance(rec, list) or len(rec) != 5
                or not all(isinstance(v, int) for v in rec)):
            raise _fail(path, f"record {i} is not a 5-int row: {rec!r}")
    config = doc.get("config", {})
    if not isinstance(config, dict):
        raise _fail(path, "config is not an object")
    unknown = set(config) - _CONFIG_KEYS
    if unknown:
        raise _fail(path, f"unknown config keys {sorted(unknown)}")
    case = FuzzCase(
        family=str(doc.get("family", "unknown")),
        seed=int(doc.get("seed", 0)),
        records=records,
        config=config,
        provenance=str(doc.get("provenance", "")),
        expect_finding=doc.get("expect_finding"),
    )
    try:
        case.berti_config()
    except (ConfigError, TypeError) as exc:
        raise _fail(path, f"invalid berti overrides: {exc}") from exc
    stored = doc.get("case_id")
    if stored is not None and stored != case.case_id:
        raise _fail(path, f"content hash mismatch: file named {stored!r} "
                          f"but its content hashes to {case.case_id!r} "
                          f"(hand-edited case?)")
    return case
