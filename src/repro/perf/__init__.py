"""Performance measurement: profiling hooks and the microbenchmark suite.

Two halves, both serving the "fast enough for large sweeps" goal
(ROADMAP):

* :mod:`repro.perf.profiling` — a thin cProfile harness behind the CLI
  ``--profile`` flag, for finding where a simulation run spends time.
* :mod:`repro.perf.bench` — the records/sec microbenchmark suite behind
  ``benchmarks/perf/bench_simcore.py``, which writes the
  ``BENCH_simcore.json`` trajectory artifact and gates CI on
  regressions against a committed baseline.
"""

from repro.perf.bench import (
    BenchCase,
    BenchResult,
    calibrate_host,
    check_regression,
    default_cases,
    load_report,
    run_case,
    run_suite,
    write_report,
)
from repro.perf.profiling import (
    format_top_functions,
    profile_call,
    top_functions,
)

__all__ = [
    "BenchCase",
    "BenchResult",
    "calibrate_host",
    "check_regression",
    "default_cases",
    "load_report",
    "run_case",
    "run_suite",
    "write_report",
    "format_top_functions",
    "profile_call",
    "top_functions",
]
