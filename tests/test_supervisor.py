"""Tests for the campaign supervisor (PR 4).

Covers the four tentpole behaviours — heartbeat liveness, resource-aware
degradation, circuit breakers with half-open probes on resume, and
graceful signal-driven shutdown — each made deterministic by injecting
scripted clocks, scripted ``/proc`` readers, or real fork children.
"""

import json
import multiprocessing
import os
import signal
import sys
import time

import pytest

from repro.errors import ConfigError
from repro.runner import (
    CampaignSupervisor,
    ExperimentRunner,
    FaultSpec,
    JobSpec,
    Journal,
    QuarantinedRun,
    ResourceMonitor,
    ResourcePolicy,
    RunnerConfig,
    SupervisorConfig,
)

TRACE = "lbm_s-2676B"
TRACE2 = "mcf_s-1554B"
SCALE = 0.05

needs_fork = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="fork + POSIX signals required",
)


def fast_sup(**overrides) -> SupervisorConfig:
    base = dict(heartbeat_every=200, heartbeat_timeout=30.0,
                poll_interval=0.05, handle_signals=False)
    base.update(overrides)
    return SupervisorConfig(**base)


def make_group_jobs(n=3, fault=None, trace=TRACE, l1d="none"):
    """n jobs in the same (trace, l1d) breaker group, distinct keys."""
    return [
        JobSpec(trace=trace, l1d=l1d, scale=SCALE, fault=fault,
                warmup_fraction=0.2 + 0.01 * i)
        for i in range(n)
    ]


class TestConfig:
    def test_supervisor_needs_a_pool(self):
        with pytest.raises(ConfigError) as exc:
            CampaignSupervisor(RunnerConfig(workers=0))
        assert exc.value.field == "workers"

    def test_bad_quarantine_after(self):
        with pytest.raises(ConfigError):
            SupervisorConfig(quarantine_after=0)

    def test_bad_heartbeat_timeout(self):
        with pytest.raises(ConfigError):
            SupervisorConfig(heartbeat_timeout=0)

    def test_bad_deadline_factor(self):
        with pytest.raises(ConfigError):
            SupervisorConfig(deadline_factor=0.5)


class TestDefaultPathUnchanged:
    def test_supervised_results_bit_identical_to_plain(self, tmp_path):
        jobs = [JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE),
                JobSpec(trace=TRACE2, l1d="ip_stride", scale=SCALE)]
        plain = ExperimentRunner(RunnerConfig(workers=0)).run(jobs)
        supervised = CampaignSupervisor(
            RunnerConfig(workers=2, journal_path=tmp_path / "j.jsonl"),
            fast_sup(),
        ).run(jobs)
        assert not supervised.failures
        for job in jobs:
            assert (supervised.result(job.key).to_dict()
                    == plain.result(job.key).to_dict()), job.key


class TestCircuitBreaker:
    def test_retry_storm_trips_breaker_and_quarantines(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        jobs = make_group_jobs(4, fault=FaultSpec(kind="crash", period=3))
        runner = CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, journal_path=journal),
            fast_sup(quarantine_after=2),
        )
        suite = runner.run(jobs)

        failed = [o for o in suite.failures
                  if not isinstance(o, QuarantinedRun)]
        quarantined = suite.quarantined
        assert len(failed) == 2        # exactly K strikes burned workers
        assert len(quarantined) == 2   # the rest skipped by the breaker
        for q in quarantined:
            assert q.kind == "quarantined"
            assert q.group == f"{TRACE}|none"
        assert "2 quarantined" in suite.banner()

        # Quarantined outcomes are journaled as typed records.
        records = Journal(journal).load()
        q_records = [r for r in records.values()
                     if r.get("status") == "quarantined"]
        assert len(q_records) == 2
        assert all(r["failures"] >= 2 for r in q_records)

    def test_success_resets_the_strike_count(self, tmp_path):
        # fail, fail, succeed, fail, fail: never 3 *consecutive*
        # failures → the breaker must stay closed (workers=1 keeps the
        # completion order sequential and deterministic).
        jobs = (make_group_jobs(2, fault=FaultSpec(kind="crash")) +
                [JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                         warmup_fraction=0.3)] +
                make_group_jobs(2, fault=FaultSpec(kind="crash", period=5)))
        runner = CampaignSupervisor(
            RunnerConfig(workers=1, retries=0,
                         journal_path=tmp_path / "j.jsonl"),
            fast_sup(quarantine_after=3),
        )
        suite = runner.run(jobs)
        assert not suite.quarantined
        assert len(suite.completed) == 1  # the clean job in the middle

    def test_half_open_probe_on_resume_closes_breaker(self, tmp_path):
        """Run 1 quarantines the group; the resumed run admits one probe,
        the probe succeeds (flaky passes on its retry), the breaker
        closes, and every remaining job completes."""
        journal = tmp_path / "j.jsonl"
        jobs = make_group_jobs(
            4, fault=FaultSpec(kind="flaky", fail_attempts=1))

        first = CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, journal_path=journal),
            fast_sup(quarantine_after=1),
        ).run(jobs)
        assert len(first.quarantined) == 3  # job 1 tripped it immediately

        resumed = CampaignSupervisor(
            RunnerConfig(workers=1, retries=1, backoff_base=0.01,
                         journal_path=journal, resume=True),
            fast_sup(quarantine_after=1),
        )
        suite = resumed.run(jobs)
        assert len(suite.completed) == len(jobs)
        assert not suite.quarantined
        assert resumed._breakers[f"{TRACE}|none"].state == "closed"

    def test_failed_probe_requarantines_without_burning_the_group(
            self, tmp_path):
        journal = tmp_path / "j.jsonl"
        jobs = make_group_jobs(3, fault=FaultSpec(kind="crash", period=3))

        CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, journal_path=journal),
            fast_sup(quarantine_after=1),
        ).run(jobs)

        resumed = CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, journal_path=journal,
                         resume=True),
            fast_sup(quarantine_after=1),
        )
        suite = resumed.run(jobs)
        # One probe failed for real; everything else went straight back
        # to quarantine instead of re-running a known-bad config.
        real_failures = [o for o in suite.failures
                         if not isinstance(o, QuarantinedRun)]
        assert len(real_failures) == 1
        assert len(suite.quarantined) == 2
        assert resumed._breakers[f"{TRACE}|none"].state == "open"


class TestHeartbeatLiveness:
    def test_hung_worker_preempted_by_heartbeat_not_wall_clock(self):
        wall_budget = 300.0
        job = JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                      fault=FaultSpec(kind="hang", hang_seconds=600.0))
        started = time.monotonic()
        suite = CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, timeout=wall_budget),
            fast_sup(heartbeat_timeout=1.0),
        ).run([job])
        took = time.monotonic() - started

        [failed] = suite.failures
        assert failed.error_type == "HeartbeatTimeout"
        assert failed.kind == "timeout"
        assert took < wall_budget / 10  # liveness, not the wall clock

    def test_healthy_jobs_survive_supervision(self, tmp_path):
        jobs = [JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE)]
        suite = CampaignSupervisor(
            RunnerConfig(workers=1, timeout=300.0),
            fast_sup(heartbeat_every=100, heartbeat_timeout=5.0),
        ).run(jobs)
        assert not suite.failures


class TestResourceDegradation:
    def _scripted(self, values, default):
        calls = {"n": 0}

        def reader(*_args):
            calls["n"] += 1
            idx = calls["n"] - 1
            return values[idx] if idx < len(values) else default
        return reader

    def test_memory_pressure_degrades_then_restores(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        sup = fast_sup()
        # Plenty for 2 samples, starved for 4, then plenty again.
        monitor = ResourceMonitor(
            sup.policy,
            mem_reader=self._scripted(
                [4096.0] * 2 + [32.0] * 4, 4096.0),
            disk_reader=lambda path: 65536.0,
        )
        jobs = [JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                        warmup_fraction=0.2 + 0.01 * i,
                        fault=FaultSpec(kind="hang", hang_seconds=0.2))
                for i in range(4)]
        runner = CampaignSupervisor(
            RunnerConfig(workers=2, timeout=120.0, journal_path=journal),
            sup, monitor=monitor,
        )
        suite = runner.run(jobs)
        assert len(suite.completed) == 4  # degradation is graceful

        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        kinds = [e["event"] for e in manifest["events"]]
        assert "degrade" in kinds and "restore" in kinds
        assert manifest["workers_target_final"] == 2  # fully restored
        degrade = next(e for e in manifest["events"]
                       if e["event"] == "degrade")
        assert degrade["workers_target"] == 1  # pool was halved

    def test_full_disk_buffers_journal_until_it_clears(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        sup = fast_sup()
        # Disk reads (tick samples AND journal-guard checks share the
        # reader) report "full" for the first 20 calls — roughly the
        # first second of the campaign — so the first job's append is
        # guaranteed to be refused, then the disk "clears".
        monitor = ResourceMonitor(
            sup.policy,
            mem_reader=lambda: 65536.0,
            disk_reader=self._scripted([1.0] * 20, 65536.0),
        )
        jobs = [JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                        warmup_fraction=0.2 + 0.01 * i) for i in range(3)]
        runner = CampaignSupervisor(
            RunnerConfig(workers=1, timeout=120.0, journal_path=journal),
            sup, monitor=monitor,
        )
        suite = runner.run(jobs)
        assert len(suite.completed) == 3
        # Every outcome made it to disk once the guard cleared — degraded,
        # never lost — and the refusal is on record.
        records = Journal(journal).load()
        assert {j.key for j in jobs} <= set(records)
        assert not runner._journal_backlog
        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        kinds = [e["event"] for e in manifest["events"]]
        assert "journal-degraded" in kinds

    def test_rss_cap_preempts_fat_worker(self, tmp_path):
        from repro.runner.resources import process_rss_mb

        # Fork shares pages with this (possibly fat) pytest process, so
        # anchor the cap to our own RSS: only the balloon can exceed it.
        base = process_rss_mb(os.getpid()) or 128.0
        sup = fast_sup(policy=ResourcePolicy(
            max_worker_rss_mb=base + 128.0))
        monitor = ResourceMonitor(
            sup.policy,
            mem_reader=lambda: 65536.0,
            disk_reader=lambda path: 65536.0,
        )
        job = JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                      fault=FaultSpec(kind="balloon", balloon_mb=256,
                                      hang_seconds=600.0))
        suite = CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, timeout=600.0),
            sup, monitor=monitor,
        ).run([job])
        [failed] = suite.failures
        assert failed.kind == "resource"
        assert failed.error_type == "ResourceError"


class TestClockSkew:
    def test_forward_jump_does_not_expire_healthy_jobs(self, tmp_path):
        from repro.runner.chaos import SkewedClock

        clock = SkewedClock(jump=120.0, after=40)
        jobs = [JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                        fault=FaultSpec(kind="hang", hang_seconds=1.0))]
        runner = CampaignSupervisor(
            RunnerConfig(workers=1, timeout=30.0,
                         journal_path=tmp_path / "j.jsonl"),
            fast_sup(heartbeat_every=0, skew_threshold=30.0),
            now_fn=clock,
        )
        suite = runner.run(jobs)
        assert clock.jumped
        assert not suite.failures
        kinds = [e["event"] for e in runner._events]
        assert "clock-skew" in kinds


class TestManifest:
    def test_manifest_written_next_to_journal(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        jobs = [JobSpec(trace=TRACE, l1d="none", scale=SCALE)]
        CampaignSupervisor(
            RunnerConfig(workers=1, journal_path=journal), fast_sup(),
        ).run(jobs)
        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        assert manifest["schema"] == 1
        assert manifest["interrupted"] is False
        assert manifest["hard_killed"] is False
        assert manifest["counts"] == {"ok": 1}
        assert manifest["quarantined_groups"] == []


# ----------------------------------------------------------------------
# Graceful shutdown (fork children so signals stay contained)
# ----------------------------------------------------------------------

def _drain_child(journal_str, hb_dir_str, hang_seconds):
    """Supervised campaign; exits 0 iff a drain left a resumable state."""
    jobs = [JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                    warmup_fraction=0.2 + 0.01 * i,
                    fault=FaultSpec(kind="hang", hang_seconds=hang_seconds))
            for i in range(4)]
    runner = CampaignSupervisor(
        RunnerConfig(workers=1, retries=0, timeout=1200.0,
                     journal_path=journal_str),
        SupervisorConfig(heartbeat_every=200, heartbeat_timeout=600.0,
                         poll_interval=0.05, heartbeat_dir=hb_dir_str,
                         handle_signals=True),
    )
    suite = runner.run(jobs)
    ok = suite.interrupted and 1 <= len(suite.outcomes) < 4
    os._exit(0 if ok else 7)


def _wait_for_heartbeat(hb_dir, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(hb_dir.glob("*.json")):
            return True
        time.sleep(0.02)
    return False


def _wait_for_death(proc, timeout):
    deadline = time.monotonic() + timeout
    while proc.is_alive() and time.monotonic() < deadline:
        time.sleep(0.05)
    return not proc.is_alive()


@needs_fork
class TestGracefulShutdown:
    def test_first_sigint_drains_to_a_resumable_journal(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        hb_dir = tmp_path / "hb"
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_drain_child,
                           args=(str(journal), str(hb_dir), 0.4))
        proc.start()
        try:
            assert _wait_for_heartbeat(hb_dir), "campaign never started"
            os.kill(proc.pid, signal.SIGINT)
            assert _wait_for_death(proc, 60.0), "drain never finished"
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join()
        assert proc.exitcode == 0  # drained: partial but consistent

        # The journal is parseable and a plain resume finishes the rest.
        records = Journal(journal).load()
        assert 1 <= len(records) < 4
        jobs = [JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                        warmup_fraction=0.2 + 0.01 * i,
                        fault=FaultSpec(kind="hang", hang_seconds=0.4))
                for i in range(4)]
        executed = []

        def counting(job, attempt):
            executed.append(job.key)
            from repro.runner.worker import run_job
            return run_job(job, attempt)

        resumed = ExperimentRunner(
            RunnerConfig(workers=0, retries=0, journal_path=journal,
                         resume=True)
        ).run(jobs, run_fn=counting)
        assert len(resumed.completed) == 4
        assert set(executed) == {j.key for j in jobs} - set(records)

        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        assert manifest["interrupted"] is True
        assert manifest["hard_killed"] is False

    def test_second_sigint_hard_kills_within_bounded_grace(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        hb_dir = tmp_path / "hb"
        ctx = multiprocessing.get_context("fork")
        # Jobs hang ~forever: a drain can never finish on its own.
        proc = ctx.Process(target=_drain_child,
                           args=(str(journal), str(hb_dir), 600.0))
        proc.start()
        try:
            assert _wait_for_heartbeat(hb_dir), "campaign never started"
            os.kill(proc.pid, signal.SIGINT)   # drain (blocks forever)
            time.sleep(1.0)
            os.kill(proc.pid, signal.SIGINT)   # hard kill
            died = _wait_for_death(proc, 15.0)
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join()
        assert died, "second SIGINT did not kill within the 15s grace"
        assert proc.exitcode not in (0, None)

        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        assert manifest["hard_killed"] is True


# ----------------------------------------------------------------------
# Half-open probe audit trail + throughput edge cases (PR 6)
# ----------------------------------------------------------------------


class TestProbeAudit:
    def test_closed_probe_recorded_with_release_and_verdict(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        jobs = make_group_jobs(
            4, fault=FaultSpec(kind="flaky", fail_attempts=1))
        CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, journal_path=journal),
            fast_sup(quarantine_after=1),
        ).run(jobs)

        resumed = CampaignSupervisor(
            RunnerConfig(workers=1, retries=1, backoff_base=0.01,
                         journal_path=journal, resume=True),
            fast_sup(quarantine_after=1),
        )
        resumed.run(jobs)
        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        [probe] = manifest["quarantine_probes"]
        assert probe["group"] == f"{TRACE}|none"
        assert probe["outcome"] == "closed"
        assert isinstance(probe["released_at"], float)
        assert probe["resolved_at"] >= probe["released_at"]
        # The event stream carries the same transition for debugging.
        kinds = [e["event"] for e in manifest["events"]]
        assert "breaker-probe" in kinds
        assert "breaker-probe-result" in kinds

    def test_failed_probe_recorded_as_reopened(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        jobs = make_group_jobs(3, fault=FaultSpec(kind="crash", period=3))
        CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, journal_path=journal),
            fast_sup(quarantine_after=1),
        ).run(jobs)

        CampaignSupervisor(
            RunnerConfig(workers=1, retries=0, journal_path=journal,
                         resume=True),
            fast_sup(quarantine_after=1),
        ).run(jobs)
        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        [probe] = manifest["quarantine_probes"]
        assert probe["outcome"] == "reopened"
        assert probe["group"] == f"{TRACE}|none"

    def test_runs_without_probes_emit_an_empty_list(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        CampaignSupervisor(
            RunnerConfig(workers=1, journal_path=journal), fast_sup(),
        ).run([JobSpec(trace=TRACE, l1d="none", scale=SCALE)])
        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        assert manifest["quarantine_probes"] == []


class TestThroughputEdges:
    def test_zero_wall_time_emits_zero_not_a_crash(self):
        sup = CampaignSupervisor(RunnerConfig(workers=1), fast_sup())
        sup._now = lambda: 100.0
        sup._campaign_started = 100.0   # zero elapsed wall time
        sup._records_done = 500
        block = sup._throughput()
        assert block["campaign_seconds"] == 0.0
        assert block["records_per_sec"] == 0.0
        assert block["records_per_sec_busy"] == 0.0
        assert block["records_simulated"] == 500.0

    def test_unstarted_campaign_reports_zero_wall(self):
        sup = CampaignSupervisor(RunnerConfig(workers=1), fast_sup())
        assert sup._campaign_started is None
        block = sup._throughput()
        assert block["campaign_seconds"] == 0.0
        assert block["records_per_sec"] == 0.0

    def test_engine_breakdown_in_manifest(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        jobs = [
            JobSpec(trace=TRACE, l1d="none", scale=SCALE,
                    engine="batched", chunk_size=256),
            JobSpec(trace=TRACE, l1d="berti", scale=SCALE),
        ]
        CampaignSupervisor(
            RunnerConfig(workers=1, journal_path=journal), fast_sup(),
        ).run(jobs)
        manifest = json.loads(
            (tmp_path / "j.jsonl.manifest.json").read_text())
        tp = manifest["throughput"]
        assert set(tp["engines"]) == {"classic", "batched"}
        assert tp["engines"]["batched"] > 0
        assert tp["engines"]["classic"] > 0
        assert tp["chunk_sizes"] == [256]
