"""Unit tests for the simple baseline prefetchers (IP-stride, next-line,
BOP)."""

import pytest

from repro.prefetchers.base import FILL_L1, AccessInfo, FillInfo, NoPrefetcher
from repro.prefetchers.bop import BOPPrefetcher
from repro.prefetchers.ip_stride import IPStridePrefetcher
from repro.prefetchers.next_line import NextLinePrefetcher


def acc(line, ip=0x400, hit=False, now=0):
    return AccessInfo(ip=ip, line=line, hit=hit, prefetch_hit=False, now=now)


class TestNoPrefetcher:
    def test_emits_nothing(self):
        pf = NoPrefetcher()
        assert pf.on_access(acc(1)) == []
        assert pf.storage_bits() == 0


class TestNextLine:
    def test_prefetches_next(self):
        pf = NextLinePrefetcher()
        reqs = pf.on_access(acc(100))
        assert [r.line for r in reqs] == [101]

    def test_degree(self):
        pf = NextLinePrefetcher(degree=3)
        assert [r.line for r in pf.on_access(acc(10))] == [11, 12, 13]


class TestIPStride:
    def test_requires_confidence(self):
        pf = IPStridePrefetcher()
        assert pf.on_access(acc(0)) == []
        assert pf.on_access(acc(2)) == []       # first stride observed
        assert pf.on_access(acc(4)) == []       # conf 1
        assert pf.on_access(acc(6)) != []       # conf 2 -> prefetch

    def test_prefetch_targets_follow_stride(self):
        pf = IPStridePrefetcher(degree=2)
        for line in (0, 3, 6, 9):
            reqs = pf.on_access(acc(line))
        targets = [r.line for r in reqs]
        assert targets == [9 + 3 * 2, 9 + 3 * 3]

    def test_stride_change_resets_confidence(self):
        pf = IPStridePrefetcher()
        for line in (0, 2, 4, 6):
            pf.on_access(acc(line))
        assert pf.on_access(acc(11)) == []  # stride changed to 5
        assert pf.on_access(acc(16)) == []  # conf rebuilding

    def test_ips_tracked_separately(self):
        pf = IPStridePrefetcher()
        for line in (0, 2, 4, 6):
            pf.on_access(acc(line, ip=0x100))
        assert pf.on_access(acc(50, ip=0x200)) == []

    def test_capacity_lru_eviction(self):
        pf = IPStridePrefetcher(entries=2)
        for ip in (1, 2, 3):
            pf.on_access(acc(0, ip=ip))
        assert len(pf._table) == 2
        assert 1 not in pf._table

    def test_zero_stride_ignored(self):
        pf = IPStridePrefetcher()
        for __ in range(5):
            pf.on_access(acc(7))
        # repeated same-line accesses never build stride confidence
        assert pf.on_access(acc(7)) == []

    def test_storage_positive(self):
        assert 0 < IPStridePrefetcher().storage_kb() < 1.0


class TestBOP:
    def test_learns_dominant_offset(self):
        pf = BOPPrefetcher()
        # Feed fills then accesses exhibiting offset +8.
        for i in range(3000):
            line = i * 8
            pf.on_fill(FillInfo(line=line, now=i, latency=10,
                                was_prefetch=False))
            pf.on_access(acc(line + 8, hit=False, now=i))
        assert pf.best_offset == 8

    def test_prefetches_best_offset(self):
        pf = BOPPrefetcher()
        pf.best_offset = 16
        reqs = pf.on_access(acc(100, hit=True))
        assert [r.line for r in reqs] == [116]

    def test_turns_off_on_bad_score(self):
        pf = BOPPrefetcher()
        import random
        rng = random.Random(0)
        for i in range(6000):
            pf.on_fill(FillInfo(line=rng.randrange(10**7), now=i,
                                latency=10, was_prefetch=False))
            pf.on_access(acc(rng.randrange(10**7), hit=False, now=i))
        assert not pf._prefetch_on

    def test_rr_table_bounded(self):
        pf = BOPPrefetcher(rr_entries=16)
        for i in range(100):
            pf.on_fill(FillInfo(line=i * 1000, now=i, latency=1,
                                was_prefetch=False))
        assert len(pf._rr) <= 16

    def test_reset(self):
        pf = BOPPrefetcher()
        pf.best_offset = 99
        pf.reset()
        assert pf.best_offset == 1 and pf._prefetch_on
