"""Multi-Lookahead Offset Prefetching (MLOP) — Shakerinava et al., DPC-3.

MLOP extends BOP by scoring every candidate offset at every *lookahead*
level simultaneously, instead of testing one offset per access.  An
access map records which lines were touched recently and *when* (by
access index); an offset *d* earns a point at lookahead level *k* when
the line ``X − d`` was accessed at least *k* accesses before *X* — i.e.
a prefetch with offset *d* issued *k* accesses early would have covered
*X*.  After an update period the best offset of every lookahead level is
selected, and each access issues one prefetch per level (up to the
degree), giving MLOP multi-degree coverage that plain BOP lacks.

Like BOP, MLOP works on the *global* access stream — the property the
paper identifies as its weakness on per-IP delta patterns (mcf) and
interleaved irregular IPs (GAP), and its strength on CactuBSSN-style
globally-strided interleaves.

Configuration follows the paper's Table III: 128-entry access-map table,
500-access update period, degree 16.
"""

from __future__ import annotations

from typing import Dict, List

from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)


class MLOPPrefetcher(Prefetcher):
    """Global multi-lookahead offset selection."""

    name = "mlop"
    level = "l1d"

    def __init__(
        self,
        max_offset: int = 32,
        num_lookaheads: int = 16,
        update_period: int = 500,
        amt_entries: int = 128,
        score_threshold: float = 0.20,
    ) -> None:
        self.max_offset = max_offset
        self.num_lookaheads = num_lookaheads
        self.update_period = update_period
        self.amt_entries = amt_entries
        self.score_threshold = score_threshold

        self.offsets = [d for d in range(-max_offset, max_offset + 1) if d != 0]
        self._offset_index = {d: i for i, d in enumerate(self.offsets)}
        # line -> access index of the most recent touch (bounded FIFO).
        self._access_map: Dict[int, int] = {}
        self._access_index = 0
        # scores[lookahead][offset_idx]
        self._scores = [
            [0] * len(self.offsets) for _ in range(num_lookaheads)
        ]
        self._updates_this_period = 0
        # One selected offset per lookahead level (0 = none).
        self.selected: List[int] = [0] * num_lookaheads

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        line = access.line
        self._access_index += 1
        idx = self._access_index

        # Score offsets: which (offset, lookahead) pairs would have
        # predicted this access?
        if not access.hit or access.prefetch_hit:
            amap = self._access_map
            for d in self.offsets:
                then = amap.get(line - d)
                if then is None:
                    continue
                distance = idx - then
                levels = min(distance, self.num_lookaheads)
                col = self._offset_index[d]
                for k in range(levels):
                    self._scores[k][col] += 1
            self._updates_this_period += 1
            if self._updates_this_period >= self.update_period:
                self._select()

        # Record this access in the map (FIFO-bounded).
        self._access_map.pop(line, None)
        self._access_map[line] = idx
        if len(self._access_map) > self.amt_entries:
            del self._access_map[next(iter(self._access_map))]

        # Issue one prefetch per lookahead level's selected offset.
        requests: List[PrefetchRequest] = []
        seen = set()
        for k, d in enumerate(self.selected):
            if d == 0:
                continue
            target = line + d
            if target in seen:
                continue
            seen.add(target)
            # Deeper lookaheads fill only to L2 to limit L1D pollution.
            fill = FILL_L1 if k < 4 else FILL_L2
            requests.append(PrefetchRequest(line=target, fill_level=fill))
        return requests

    def _select(self) -> None:
        """End of update period: pick the best offset per lookahead."""
        threshold = self.score_threshold * self._updates_this_period
        for k in range(self.num_lookaheads):
            row = self._scores[k]
            best_col = max(range(len(row)), key=row.__getitem__)
            self.selected[k] = (
                self.offsets[best_col] if row[best_col] >= threshold else 0
            )
            self._scores[k] = [0] * len(self.offsets)
        self._updates_this_period = 0

    def storage_bits(self) -> int:
        # AMT: 128 entries x (24-bit line + 16-bit index); score matrix:
        # lookaheads x offsets x 10-bit counters; selected offsets.
        return (
            self.amt_entries * (24 + 16)
            + self.num_lookaheads * len(self.offsets) * 10
            + self.num_lookaheads * 7
        )

    def reset(self) -> None:
        self._access_map.clear()
        self._access_index = 0
        self._scores = [
            [0] * len(self.offsets) for _ in range(self.num_lookaheads)
        ]
        self._updates_this_period = 0
        self.selected = [0] * self.num_lookaheads
