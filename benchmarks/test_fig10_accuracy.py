"""Figure 10: L1D prefetch accuracy, split into timely and late useful
prefetches.

Paper reference: Berti ~87.2 % useful (almost all timely), MLOP ~62.4 %,
IPCP ~50.6 %; MLOP and IPCP produce a significant late fraction, Berti's
late fraction is tiny.
"""

from common import gap_traces, once, run_matrix, save_report, spec_traces

from repro.analysis.report import format_table

NAMES = ["mlop", "ipcp", "berti"]


def test_fig10_accuracy_timeliness(benchmark):
    def compute():
        rows = []
        for suite, traces in (("SPEC17", spec_traces()), ("GAP", gap_traces())):
            matrix = run_matrix(traces, NAMES)
            for name in NAMES:
                rs = [matrix[t.name][name] for t in traces]
                rs = [r for r in rs if r.pf_l1d.resolved > 0]
                if not rs:
                    rows.append([suite, name, 0.0, 0.0, 0.0])
                    continue
                acc = sum(r.pf_l1d.accuracy for r in rs) / len(rs)
                timely = sum(r.pf_l1d.timely_fraction for r in rs) / len(rs)
                late = sum(r.pf_l1d.late_fraction for r in rs) / len(rs)
                rows.append([suite, name, acc, timely, late])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig10_accuracy",
        format_table(
            ["suite", "prefetcher", "accuracy", "timely", "late"],
            rows,
            title=(
                "Figure 10 — L1D accuracy split timely/late\n"
                "(paper: Berti 87.2% vs MLOP 62.4% vs IPCP 50.6%;"
                " Berti almost all timely)"
            ),
        ),
    )

    by = {(s, n): (a, t, l) for s, n, a, t, l in rows}
    for suite in ("SPEC17", "GAP"):
        accs = {n: by[(suite, n)][0] for n in NAMES}
        assert accs["berti"] == max(accs.values()), (suite, accs)
    # Berti's late fraction is small relative to its useful prefetches.
    acc, timely, late = by[("SPEC17", "berti")]
    assert late < acc * 0.5
    assert timely > late
