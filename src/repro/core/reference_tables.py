"""Virtual-dispatch reference implementations of Berti's tables.

The kernelized :class:`~repro.core.history_table.HistoryTable` and
:class:`~repro.core.delta_table.DeltaTable` store their state in flat
preallocated arrays for speed.  The classes here are the *original*
object-per-entry implementations, preserved verbatim so the differential
lockstep oracle (``repro sancheck``) can drive the whole Berti training
and prediction path through an independently-written twin: the sanitizer
swaps these in for the reference engine (see
:mod:`repro.sanitizer.reference`), and any behavioural drift in the
kernels shows up as a bit-level divergence.

They expose exactly the public API the kernels expose — ``insert`` /
``search_timely`` / ``occupancy`` / ``reset`` and ``record_search`` /
``prefetch_deltas`` / ``entry_snapshot`` / ``reset`` — so
:class:`~repro.core.berti.BertiPrefetcher`'s virtual hooks run unchanged
against either implementation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import BertiConfig
from repro.core.delta_table import L1D_PREF, L2_PREF, L2_PREF_REPL, NO_PREF

# Entries are stored as (ip_tag, line, timestamp, order) tuples — or None
# while the way is empty.
_Row = Tuple[int, int, int, int]


class ReferenceHistoryTable:
    """IP-indexed access history: the original tuple-row implementation."""

    def __init__(self, config: BertiConfig | None = None) -> None:
        self.config = config or BertiConfig()
        cfg = self.config
        self._sets: List[List[Optional[_Row]]] = [
            [None] * cfg.history_ways for _ in range(cfg.history_sets)
        ]
        self._fifo_clock = [0] * cfg.history_sets
        self._fifo_ptr = [0] * cfg.history_sets  # next way to replace
        self._ts_mask = (1 << cfg.timestamp_bits) - 1
        self._line_mask = (1 << cfg.history_line_bits) - 1
        self._tag_mask = (1 << cfg.history_ip_tag_bits) - 1
        self.inserts = 0
        self.searches = 0

    # ------------------------------------------------------------------

    def _set_index(self, ip: int) -> int:
        # XOR-fold the IP before indexing: x86 instruction addresses have
        # strongly biased low bits, so raw modulo would pile every IP of
        # an aligned code region into one set.
        folded = ip ^ (ip >> 3) ^ (ip >> 7)
        return folded % self.config.history_sets

    def _ip_tag(self, ip: int) -> int:
        return (ip // self.config.history_sets) & self._tag_mask

    def _ts_age(self, now_ts: int, then_ts: int) -> int:
        """Wraparound-aware ``now - then`` over the timestamp width."""
        return (now_ts - then_ts) & self._ts_mask

    # ------------------------------------------------------------------

    def insert(self, ip: int, line: int, now: int) -> None:
        """Record an access (demand miss or first hit on a prefetch)."""
        self.inserts += 1
        sidx = self._set_index(ip)
        # FIFO replacement: a circular pointer over the ways.
        ptr = self._fifo_ptr[sidx]
        self._fifo_ptr[sidx] = (ptr + 1) % self.config.history_ways
        clock = self._fifo_clock[sidx] + 1
        self._fifo_clock[sidx] = clock
        self._sets[sidx][ptr] = (
            self._ip_tag(ip), line & self._line_mask, now & self._ts_mask,
            clock,
        )

    def search_timely(self, ip: int, line: int, demand_time: int, latency: int) -> List[int]:
        """Timely local deltas for an access to ``line`` by ``ip``."""
        self.searches += 1
        cfg = self.config
        tag = self._ip_tag(ip)
        now_ts = demand_time & self._ts_mask
        line_masked = line & self._line_mask
        half_range = 1 << (cfg.timestamp_bits - 1)

        line_mask = self._line_mask
        line_bits = cfg.history_line_bits
        sign_bit = 1 << (line_bits - 1)
        delta_lo = -(1 << (cfg.delta_bits - 1))
        delta_hi = (1 << (cfg.delta_bits - 1)) - 1
        ts_mask = self._ts_mask

        # FIFO insertion makes the ring order the age order: walking the
        # ways backwards from the insertion pointer visits entries
        # youngest-first.  A None way means the ring has not wrapped yet,
        # and every way older than it is also empty.
        sidx = self._set_index(ip)
        ways = self._sets[sidx]
        nways = len(ways)
        ptr = self._fifo_ptr[sidx]
        max_deltas = cfg.max_deltas_per_search
        deltas: List[int] = []
        for i in range(1, nways + 1):
            e = ways[(ptr - i) % nways]
            if e is None:
                break
            if e[0] != tag:
                continue
            age = (now_ts - e[2]) & ts_mask
            # Ages beyond half the timestamp range are ambiguous under
            # wraparound; hardware treats them as stale.  Ages below the
            # latency are too recent: a prefetch would have been late.
            if age >= half_range or age < latency:
                continue
            delta = (line_masked - e[1]) & line_mask
            if delta & sign_bit:
                delta -= 1 << line_bits
            if delta == 0 or delta < delta_lo or delta > delta_hi:
                continue
            deltas.append(delta)
            if len(deltas) >= max_deltas:
                break
        return deltas

    def occupancy(self) -> int:
        return sum(e is not None for ways in self._sets for e in ways)

    def reset(self) -> None:
        cfg = self.config
        self._sets = [
            [None] * cfg.history_ways for _ in range(cfg.history_sets)
        ]
        self._fifo_clock = [0] * cfg.history_sets
        self._fifo_ptr = [0] * cfg.history_sets
        self.inserts = 0
        self.searches = 0


class _DeltaSlot:
    __slots__ = ("valid", "delta", "coverage", "status")

    def __init__(self) -> None:
        self.valid = False
        self.delta = 0
        self.coverage = 0
        self.status = NO_PREF


class _Entry:
    __slots__ = (
        "valid", "tag", "counter", "slots", "order", "warmed_up",
        "by_delta", "pf_cache",
    )

    def __init__(self, num_deltas: int) -> None:
        self.valid = False
        self.tag = 0
        self.counter = 0
        self.slots = [_DeltaSlot() for _ in range(num_deltas)]
        self.order = 0
        self.warmed_up = False  # first learning phase completed
        # delta -> occupied slot, mirroring the valid slots.
        self.by_delta: dict = {}
        # Memoised prefetch_deltas() result for warmed-up entries.
        self.pf_cache: Optional[List[Tuple[int, int]]] = None


class ReferenceDeltaTable:
    """Per-IP delta coverage: the original object-per-slot implementation."""

    def __init__(self, config: BertiConfig | None = None) -> None:
        self.config = config or BertiConfig()
        cfg = self.config
        self._entries = [
            _Entry(cfg.deltas_per_entry) for _ in range(cfg.delta_table_entries)
        ]
        self._by_tag: dict = {}  # tag -> _Entry, for O(1) lookup
        self._fifo_clock = 0
        self._fifo_ptr = 0
        self._tag_mask = (1 << cfg.delta_tag_bits) - 1
        self.phase_completions = 0
        self.discarded_deltas = 0

    # ------------------------------------------------------------------

    def _tag_of(self, ip: int) -> int:
        """10-bit IP hash (folded XOR, cheap in hardware)."""
        h = ip
        h ^= h >> 10
        h ^= h >> 20
        return h & self._tag_mask

    def _find(self, tag: int) -> Optional[_Entry]:
        return self._by_tag.get(tag)

    def _allocate(self, tag: int) -> _Entry:
        # FIFO replacement: a circular pointer over the entries.
        victim = self._entries[self._fifo_ptr]
        self._fifo_ptr = (self._fifo_ptr + 1) % len(self._entries)
        if victim.valid:
            self._by_tag.pop(victim.tag, None)
        self._fifo_clock += 1
        victim.valid = True
        victim.tag = tag
        victim.counter = 0
        victim.order = self._fifo_clock
        victim.warmed_up = False
        victim.by_delta.clear()
        victim.pf_cache = None
        for slot in victim.slots:
            slot.valid = False
            slot.delta = 0
            slot.coverage = 0
            slot.status = NO_PREF
        self._by_tag[tag] = victim
        return victim

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def record_search(self, ip: int, timely_deltas: List[int]) -> None:
        """Accumulate one history-search result for ``ip``."""
        cfg = self.config
        tag = self._tag_of(ip)
        entry = self._find(tag)
        if entry is None:
            entry = self._allocate(tag)

        entry.counter += 1
        coverage_cap = (1 << cfg.coverage_bits) - 1
        by_delta = entry.by_delta
        for delta in timely_deltas:
            slot = by_delta.get(delta)
            if slot is not None:
                if slot.coverage < coverage_cap:
                    slot.coverage += 1
                continue
            slot = self._victim_slot(entry)
            if slot is None:
                self.discarded_deltas += 1
                continue
            if slot.valid:
                del by_delta[slot.delta]
                if slot.status != NO_PREF:
                    # Evicting a prefetching (L2_PREF_REPL) slot changes
                    # the selected set for warmed-up entries.
                    entry.pf_cache = None
            slot.valid = True
            slot.delta = delta
            slot.coverage = 1
            slot.status = NO_PREF
            by_delta[delta] = slot

        if entry.counter >= cfg.counter_max:
            self._close_phase(entry)

    @staticmethod
    def _victim_slot(entry: _Entry) -> Optional[_DeltaSlot]:
        """Slot for a newly seen delta: an empty slot, else the
        lowest-coverage slot whose status allows replacement."""
        empty = next((s for s in entry.slots if not s.valid), None)
        if empty is not None:
            return empty
        candidates = [
            s for s in entry.slots if s.status in (NO_PREF, L2_PREF_REPL)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.coverage)

    def _close_phase(self, entry: _Entry) -> None:
        """Counter overflowed: assign statuses, reset for the next phase."""
        cfg = self.config
        self.phase_completions += 1
        high = cfg.high_watermark * cfg.counter_max
        medium = cfg.medium_watermark * cfg.counter_max
        repl = cfg.repl_watermark * cfg.counter_max

        promoted = 0
        # Consider highest-coverage deltas first so the 12-delta bound
        # keeps the best ones.
        for slot in sorted(
            (s for s in entry.slots if s.valid),
            key=lambda s: s.coverage,
            reverse=True,
        ):
            if slot.coverage > high and promoted < cfg.max_prefetch_deltas:
                slot.status = L1D_PREF
                promoted += 1
            elif slot.coverage > medium and promoted < cfg.max_prefetch_deltas:
                slot.status = L2_PREF_REPL if slot.coverage < repl else L2_PREF
                promoted += 1
            else:
                slot.status = NO_PREF
            slot.coverage = 0
        entry.counter = 0
        entry.warmed_up = True
        entry.pf_cache = None  # statuses changed: recompute on next access

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def prefetch_deltas(self, ip: int) -> List[Tuple[int, int]]:
        """Deltas to prefetch for ``ip`` as ``(delta, status)`` pairs."""
        cfg = self.config
        entry = self._find(self._tag_of(ip))
        if entry is None:
            return []
        if entry.warmed_up:
            selected = entry.pf_cache
            if selected is None:
                selected = [
                    (s.delta, s.status)
                    for s in entry.slots
                    if s.valid and s.status != NO_PREF
                ]
                # High-coverage deltas first: under PQ pressure the queue
                # sheds the low-coverage tail, not the best predictions.
                selected.sort(key=lambda ds: ds[1] != L1D_PREF)
                selected = selected[: cfg.max_prefetch_deltas]
                entry.pf_cache = selected
            return selected
        if entry.counter < cfg.warmup_min_searches:
            return []
        threshold = cfg.warmup_watermark * entry.counter
        return [
            (s.delta, L1D_PREF)
            for s in entry.slots
            if s.valid and s.coverage >= threshold
        ][: cfg.max_prefetch_deltas]

    def entry_snapshot(self, ip: int) -> List[Tuple[int, int, int]]:
        """(delta, coverage, status) triples for inspection/tests."""
        entry = self._find(self._tag_of(ip))
        if entry is None:
            return []
        return [
            (s.delta, s.coverage, s.status) for s in entry.slots if s.valid
        ]

    def reset(self) -> None:
        cfg = self.config
        self._entries = [
            _Entry(cfg.deltas_per_entry) for _ in range(cfg.delta_table_entries)
        ]
        self._by_tag = {}
        self._fifo_clock = 0
        self._fifo_ptr = 0
        self.phase_completions = 0
        self.discarded_deltas = 0
