"""Content-addressed, checksum-verified result cache.

The campaign service memoizes every finished simulation under a
**content key**: the SHA-256 of the job's trace identity (the digest of
its mapped ``.trc`` store when one is used, else the deterministic
catalog identity) combined with the canonicalized system/prefetcher
configuration.  Two submissions that would simulate the same bytes with
the same knobs share one cache entry — that is what makes duplicate
submission idempotent and large sweeps recoverable.

Entries are single JSON files written atomically (temp + fsync +
rename) carrying a CRC32 over the canonical payload encoding.  **Every
read re-verifies the checksum**; an entry that fails is *quarantined* —
renamed aside with a ``.quarantined-N`` suffix for post-mortem, never
deleted, and above all never served — and the typed
:class:`~repro.errors.CacheCorruption` tells the scheduler to recompute.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import CacheCorruption
from repro.service.wal import canonical_json, crc32_of

__all__ = ["ResultCache", "content_key"]


def content_key(trace_digest: str, config: Dict[str, Any]) -> str:
    """SHA-256 content hash of one (trace identity, canonical config).

    ``config`` must already be a plain JSON-able dict (the daemon
    canonicalizes the :class:`~repro.runner.jobs.JobSpec` knobs that
    change simulation output — prefetchers, scale, mtps, warmup — plus
    the resolved SystemConfig/BertiConfig field values, so a config
    default bump changes the key instead of serving stale results).
    """
    blob = canonical_json({"trace": trace_digest, "config": config})
    return hashlib.sha256(blob.encode("ascii")).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` entries, verified on every read."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _entry(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        return self._entry(key).exists()

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically store ``payload`` under ``key`` with its CRC32.

        Re-putting a key overwrites — simulation is deterministic, so a
        recompute writes identical bytes and the overwrite is harmless
        (this is how a quarantined entry heals).
        """
        path = self._entry(key)
        body = canonical_json(
            {"key": key, "crc": crc32_of(payload), "payload": payload}
        )
        fd, tmp = tempfile.mkstemp(dir=str(self.root), prefix=".cache-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="ascii") as fh:
                fh.write(body)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified payload for ``key``, or ``None`` if absent.

        Raises :class:`~repro.errors.CacheCorruption` — after moving the
        entry to quarantine — when the stored CRC does not match the
        payload bytes; the caller must recompute, never serve.
        """
        path = self._entry(key)
        try:
            raw = path.read_text(encoding="ascii")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, UnicodeDecodeError) as exc:
            raise self._quarantine(key, f"unreadable entry: {exc}")
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise self._quarantine(key, f"entry is not JSON: {exc}")
        if (not isinstance(entry, dict) or entry.get("key") != key
                or "payload" not in entry):
            raise self._quarantine(key, "entry body does not match its key")
        if not isinstance(entry["payload"], dict):
            raise self._quarantine(
                key,
                f"payload is a {type(entry['payload']).__name__}, "
                f"not a result object",
            )
        if entry.get("crc") != crc32_of(entry["payload"]):
            raise self._quarantine(
                key,
                f"checksum mismatch (stored {entry.get('crc')}, "
                f"recomputed {crc32_of(entry['payload'])})",
            )
        self.hits += 1
        return entry["payload"]

    def _quarantine(self, key: str, reason: str) -> CacheCorruption:
        """Move the bad entry aside; returns the error to raise."""
        path = self._entry(key)
        n = 0
        dest = path.with_name(f"{path.name}.quarantined-{n}")
        while dest.exists():
            n += 1
            dest = path.with_name(f"{path.name}.quarantined-{n}")
        try:
            os.replace(path, dest)
        except OSError:
            dest = None  # entry vanished mid-read; nothing to preserve
        self.quarantined += 1
        return CacheCorruption(
            f"result-cache entry {key[:12]}… failed verification "
            f"({reason}); "
            + (f"quarantined to {dest.name}, " if dest else "")
            + "recomputing instead of serving",
            field="result_cache",
        )

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "entries": sum(1 for p in self.root.glob("*.json")),
        }
