"""HTTP transports for the fleet: one real, one deterministically hostile.

Every fleet HTTP path — the submitting client and the remote agent
alike — goes through a :class:`Transport`: a single ``send(method,
path, payload)`` call that either returns ``(status, retry_after,
body)`` or raises a typed :class:`~repro.errors.TransportError`.
:class:`HTTPTransport` is the stdlib implementation the CLI uses;
:class:`FaultyTransport` wraps any transport with the seeded network
faults the chaos harness injects:

* **drop** — the request fails *before* delivery (the server never saw
  it) or *after* (the server acted, the response was lost — the classic
  at-least-once duplication hazard);
* **duplicate** — the request is delivered twice back to back;
* **reorder** — the request is delivered, and a stale duplicate of it
  is re-delivered just before the *next* send — out-of-order duplicate
  delivery, the hazard retries plus routing flaps create;
* **partition** — a counter window (or a scenario-controlled toggle)
  during which every request fails without delivery;
* **delay / slow network** — a deterministic sleep before delivery,
  optionally jittered by the seeded RNG.

Faults select by 1-based request counter (exact, for scenarios), by
path substring (exact, independent of thread interleaving), or by
seeded probability (``random.Random(seed)`` — two transports with the
same seed and call sequence fault identically).  Nothing here reads a
wall clock to *decide* anything: a failing chaos run replays exactly.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import TransportError

__all__ = ["FaultPlan", "FaultyTransport", "HTTPTransport",
           "parse_retry_after"]


def parse_retry_after(value) -> Optional[float]:
    """A finite, non-negative ``Retry-After`` value, else ``None``.

    Defensive by contract: a malformed, non-numeric, negative, or
    non-finite header must *never* raise (or sleep forever) — the caller
    falls back to its own computed backoff instead.
    """
    if value is None:
        return None
    try:
        parsed = float(str(value).strip())
    except (TypeError, ValueError):
        return None
    if parsed != parsed or parsed in (float("inf"), float("-inf")):
        return None  # NaN / infinite: a hint nobody should sleep on
    return max(0.0, parsed)


class HTTPTransport:
    """One JSON request/response over a fresh stdlib HTTP connection.

    Raises :class:`~repro.errors.TransportError` for every socket-level
    failure, so no bare ``OSError``/``ConnectionError`` ever escapes the
    transport layer.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def send(self, method: str, path: str,
             payload: Optional[Dict[str, Any]] = None
             ) -> Tuple[int, Optional[float], Dict[str, Any]]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers = {"Content-Type": "application/json",
                           "Content-Length": str(len(body))}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            retry_after = parse_retry_after(
                response.getheader("Retry-After"))
            try:
                decoded = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                decoded = {"message": raw[:200].decode("utf-8", "replace")}
            return response.status, retry_after, decoded
        except (ConnectionError, socket.timeout, socket.gaierror,
                http.client.HTTPException, OSError) as exc:
            raise TransportError(
                f"{method} {path} to {self.host}:{self.port} failed: "
                f"{type(exc).__name__}: {exc}",
            ) from exc
        finally:
            conn.close()


@dataclass(frozen=True)
class FaultPlan:
    """Which requests fault, and how — counters, paths, probabilities.

    Counter fields are 1-based request indices on the wrapping
    transport; ``*_paths`` fields match any request whose path contains
    the substring (robust against thread interleaving); ``*_rate``
    fields draw from the seeded RNG per request.
    """

    seed: int = 0
    drop_requests: Sequence[int] = ()       # fail, server never sees it
    drop_responses: Sequence[int] = ()      # server acts, response lost
    duplicates: Sequence[int] = ()          # delivered twice back to back
    reorders: Sequence[int] = ()            # stale dup before next send
    partitions: Sequence[Tuple[int, int]] = ()  # [start, end) counters down
    drop_request_paths: Sequence[str] = ()
    drop_response_paths: Sequence[str] = ()
    duplicate_paths: Sequence[str] = ()
    reorder_paths: Sequence[str] = ()
    block_paths: Sequence[str] = ()         # scenario gate: fail while set
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay: float = 0.0                      # slow network: sleep per send
    delay_jitter: float = 0.0               # + seeded uniform [0, jitter)


@dataclass
class TransportStats:
    """Observability counters the scenarios assert against."""

    sent: int = 0
    delivered: int = 0
    dropped_requests: int = 0
    dropped_responses: int = 0
    duplicated: int = 0
    reordered: int = 0
    partitioned: int = 0


class FaultyTransport:
    """A transport that perturbs delivery according to a `FaultPlan`.

    Thread-safe (agents send from pool + heartbeat threads); the fault
    decision and counters are taken under a lock, the wrapped delivery
    itself is not (each inner send is an independent connection).
    ``set_partitioned(True)`` is the scenario-controlled master switch:
    every request fails without delivery until it is cleared, exactly
    like a severed link.
    """

    def __init__(self, inner, plan: Optional[FaultPlan] = None,
                 sleep_fn=time.sleep) -> None:
        self.inner = inner
        self.plan = plan or FaultPlan()
        self.stats = TransportStats()
        self._sleep = sleep_fn
        self._rng = random.Random(self.plan.seed)
        self._lock = threading.Lock()
        self._partitioned = False
        self._blocked = set(self.plan.block_paths)
        self._stale: List[Tuple[str, str, Optional[Dict[str, Any]]]] = []

    # ------------------------------------------------------------------
    # Scenario controls
    # ------------------------------------------------------------------

    def set_partitioned(self, partitioned: bool) -> None:
        with self._lock:
            self._partitioned = partitioned

    def unblock(self, fragment: str) -> None:
        """Lift a ``block_paths`` gate (scenario sequencing)."""
        with self._lock:
            self._blocked.discard(fragment)

    # ------------------------------------------------------------------

    def _decide(self, n: int, path: str) -> Dict[str, bool]:
        plan = self.plan
        in_partition = self._partitioned or any(
            start <= n < end for start, end in plan.partitions
        ) or any(frag in path for frag in self._blocked)
        roll = self._rng.random() if (plan.drop_rate
                                      or plan.duplicate_rate) else 1.0
        return {
            "partition": in_partition,
            "drop_request": (n in plan.drop_requests
                             or any(f in path
                                    for f in plan.drop_request_paths)
                             or roll < plan.drop_rate),
            "drop_response": (n in plan.drop_responses
                              or any(f in path
                                     for f in plan.drop_response_paths)),
            "duplicate": (n in plan.duplicates
                          or any(f in path for f in plan.duplicate_paths)
                          or (plan.duplicate_rate
                              and roll < plan.duplicate_rate)),
            "reorder": (n in plan.reorders
                        or any(f in path for f in plan.reorder_paths)),
        }

    def send(self, method: str, path: str,
             payload: Optional[Dict[str, Any]] = None
             ) -> Tuple[int, Optional[float], Dict[str, Any]]:
        with self._lock:
            self.stats.sent += 1
            n = self.stats.sent
            fate = self._decide(n, path)
            stale = None
            if not fate["partition"] and not fate["drop_request"] \
                    and self._stale:
                stale = self._stale.pop(0)
            delay = self.plan.delay
            if delay and self.plan.delay_jitter:
                delay += self._rng.random() * self.plan.delay_jitter

        if fate["partition"]:
            with self._lock:
                self.stats.partitioned += 1
            raise TransportError(
                f"{method} {path}: network partitioned (injected)",
            )
        if fate["drop_request"]:
            with self._lock:
                self.stats.dropped_requests += 1
            raise TransportError(
                f"{method} {path}: request dropped before delivery "
                f"(injected)",
            )
        if stale is not None:
            # Out-of-order duplicate: a held copy of an *earlier* request
            # lands just before this one.  Its response is discarded —
            # the original caller got theirs long ago.
            with self._lock:
                self.stats.reordered += 1
            try:
                self.inner.send(*stale)
            except TransportError:
                pass  # the stale copy vanishing is within its rights
        if delay:
            self._sleep(delay)

        result = self.inner.send(method, path, payload)
        with self._lock:
            self.stats.delivered += 1
        if fate["duplicate"]:
            with self._lock:
                self.stats.duplicated += 1
                self.stats.delivered += 1
            result = self.inner.send(method, path, payload)
        if fate["reorder"]:
            with self._lock:
                self._stale.append((method, path, payload))
        if fate["drop_response"]:
            with self._lock:
                self.stats.dropped_responses += 1
            raise TransportError(
                f"{method} {path}: response lost after delivery "
                f"(injected); the server may have acted",
            )
        return result
