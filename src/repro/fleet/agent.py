"""The remote worker agent behind ``repro agent``.

A :class:`FleetAgent` turns any host into extra campaign capacity: it
registers with a campaign daemon (:mod:`repro.service`), pulls leased
jobs over the same HTTP/JSON API the submitting client uses, verifies
each job's trace-store interchange file against the ``sha256:`` digest
the lease promised *before* executing a single access, runs the job
through the local worker, and delivers the result — all while a
renewal thread heartbeats its held leases so the daemon knows the
work is alive.

The failure contract is the whole point:

* **agent dies (SIGKILL)** — renewals stop; the daemon's monitor
  declares the agent dead, force-expires its leases, and the epoch/
  lease machinery requeues the jobs exactly once.
* **network partition** — every send raises a typed
  :class:`~repro.errors.TransportError`; the agent backs off and keeps
  trying.  Meanwhile the daemon reaps it and requeues; when the
  partition heals the agent's next contact *rejoins* it, and any
  result it still delivers for a lost lease takes the daemon's
  late-result path (first result wins, never two records).
* **daemon restarts** — the in-memory registry died with it, so the
  agent's id now answers 410; the agent re-registers and continues.
* **digest mismatch** — the trace store's bytes are not the bytes the
  scheduler hashed at submission; the agent refuses the job with a
  typed :class:`~repro.errors.DigestMismatch` payload instead of
  poisoning the result cache with stats from the wrong input.

All HTTP goes through the injected transport
(:mod:`repro.fleet.transport`), which is exactly where the chaos
harness swaps in its deterministic fault injector.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional

from repro.errors import DigestMismatch, ReproError, ServiceError
from repro.runner import worker as runner_worker
from repro.runner.jobs import classify_error

__all__ = ["FleetAgent"]


class FleetAgent:
    """One remote worker process: register, lease, verify, run, report."""

    def __init__(
        self,
        host: str,
        port: int,
        pool: int = 1,
        name: str = "",
        run_fn=None,
        transport=None,
        poll: float = 0.2,
        retries: int = 5,
        backoff_base: float = 0.1,
        jitter_seed: Optional[int] = None,
        sleep_fn=time.sleep,
    ) -> None:
        from repro.service.client import ServiceClient

        self.name = name or f"agent-{socket.gethostname()}"
        self.pool = max(1, int(pool))
        self.poll = poll
        self.client = ServiceClient(
            host, port, retries=retries, backoff_base=backoff_base,
            jitter_seed=jitter_seed, sleep_fn=sleep_fn,
            transport=transport,
        )
        self._run_fn = run_fn or runner_worker.run_job
        self._sleep = sleep_fn
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._held: Dict[str, str] = {}   # lease_id -> content_key
        self._lost: set = set()           # lease ids the daemon disowned
        self.agent_id: Optional[str] = None
        self.lease_duration = 30.0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_refused = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self) -> str:
        response = self.client.request("POST", "/v1/agents", {
            "name": self.name,
            "host": socket.gethostname(),
            "pool": self.pool,
        })
        with self._lock:
            self.agent_id = response["agent"]
            self.lease_duration = float(
                response.get("lease_duration", 30.0))
        return response["agent"]

    def _agent_request(self, action: str,
                       payload: Dict[str, Any]) -> Dict[str, Any]:
        """An agent-scoped request, transparently re-registering on 410.

        A 410 means the daemon restarted and its registry forgot us —
        the held leases died with the old epoch (the recovery orphaned
        them), so they are dropped before carrying on under the new id.
        """
        with self._lock:
            agent_id = self.agent_id
        if agent_id is None:
            agent_id = self.register()
        try:
            return self.client.request(
                "POST", f"/v1/agents/{agent_id}/{action}", payload)
        except ServiceError as exc:
            if exc.status != 410:
                raise
            with self._lock:
                self._lost.update(self._held)
                self._held.clear()
            agent_id = self.register()
            return self.client.request(
                "POST", f"/v1/agents/{agent_id}/{action}", payload)

    # ------------------------------------------------------------------
    # The work loop
    # ------------------------------------------------------------------

    def _verify_digest(self, spec, promised: Optional[str]) -> None:
        """Refuse to run bytes that do not hash to the promised digest."""
        if not promised or not promised.startswith("sha256:"):
            return  # catalog identity: nothing on disk to verify
        if not spec.trace_path:
            return
        from repro.memory.tracestore import file_digest

        actual = file_digest(spec.trace_path)
        if actual != promised:
            raise DigestMismatch(
                f"trace store {spec.trace_path} hashes to {actual}, "
                f"lease promised {promised}; refusing to execute",
                trace=spec.trace, agent=self.agent_id,
            )

    def _run_one(self, entry: Dict[str, Any]) -> None:
        from repro.service.daemon import spec_from_dict

        lease_id = entry["lease_id"]
        spec = spec_from_dict(entry["spec"])
        report: Dict[str, Any] = {
            "lease_id": lease_id,
            "content_key": entry["content_key"],
            "attempt": entry.get("attempt", 1),
        }
        try:
            self._verify_digest(spec, entry.get("trace_digest"))
            result = self._run_fn(spec, entry.get("attempt", 1))
            payload = (result.to_dict()
                       if hasattr(result, "to_dict") else result)
            report.update(status="ok", result=payload)
        except DigestMismatch as exc:
            report.update(status="refused", error={
                "error_type": type(exc).__name__, "kind": "trace",
                "message": str(exc),
            })
        except ReproError as exc:
            report.update(status="failed", error={
                "error_type": type(exc).__name__,
                "kind": classify_error(exc), "message": str(exc),
            })
        except Exception as exc:  # noqa: BLE001 — isolation point
            report.update(status="failed", error={
                "error_type": type(exc).__name__, "kind": "crash",
                "message": f"{type(exc).__name__}: {exc}",
            })
        try:
            response = self._agent_request("result", report)
        finally:
            with self._lock:
                self._held.pop(lease_id, None)
                self._lost.discard(lease_id)
        if response.get("recorded"):
            counter = {"ok": "jobs_done", "failed": "jobs_failed",
                       "refused": "jobs_refused"}[report["status"]]
            with self._lock:
                setattr(self, counter, getattr(self, counter) + 1)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                response = self._agent_request("lease", {"max": 1})
            except ServiceError:
                # Daemon unreachable (partition, restart window): back
                # off a beat and try again; the daemon requeues our
                # leases if we stay gone too long.
                self._sleep(self.poll)
                continue
            leases = response.get("leases", [])
            if not leases:
                # Nothing pending — or the daemon is draining us or has
                # quarantined us; either way, idle-poll until told more.
                self._stop.wait(self.poll)
                continue
            for entry in leases:
                with self._lock:
                    self._held[entry["lease_id"]] = entry["content_key"]
                try:
                    self._run_one(entry)
                except ServiceError:
                    # Result delivery failed even after retries (e.g. a
                    # partition): the attempt is lost, but the daemon's
                    # monitor requeues the lease — the worker thread
                    # must survive to lease again after the heal.
                    continue

    def _renew_loop(self) -> None:
        while not self._stop.wait(max(0.05, self.lease_duration / 3.0)):
            with self._lock:
                held = [l for l in self._held if l not in self._lost]
            if not held:
                continue
            try:
                response = self._agent_request("renew", {"leases": held})
            except ServiceError:
                continue  # partitioned: the daemon's monitor takes over
            lost = response.get("lost", [])
            if lost:
                with self._lock:
                    # The daemon disowned these (expiry/requeue); any
                    # result we still deliver will be dropped late.
                    self._lost.update(lost)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.agent_id is None:
            self.register()
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"fleet-worker-{i}", daemon=True)
            for i in range(self.pool)
        ]
        self._threads.append(
            threading.Thread(target=self._renew_loop,
                             name="fleet-renew", daemon=True))
        for thread in self._threads:
            thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def drain(self) -> None:
        """Ask the daemon to stop leasing to us, then stop locally."""
        try:
            self._agent_request("drain", {})
        except ServiceError:
            pass  # unreachable daemon will reap us anyway
        self.stop()

    def run_forever(self, handle_signals: bool = True) -> None:
        """Blocking entry point for ``repro agent``."""
        import signal

        self.start()
        done = threading.Event()
        if handle_signals:
            def on_term(signum, frame):
                done.set()

            signal.signal(signal.SIGTERM, on_term)
            signal.signal(signal.SIGINT, on_term)
        try:
            while not done.wait(timeout=0.5):
                pass
        finally:
            self.drain()
