"""Tests for the host-level chaos harness (``repro chaos``).

Each scenario is self-verifying (it returns a list of invariant
violations), so the tests assert the harness itself: scenarios pass on a
healthy tree, the journal checker actually catches corruption, and the
CLI exit codes behave.
"""

import json
import sys

import pytest

from repro.runner.chaos import (
    QUICK_SCENARIOS,
    SCENARIOS,
    SkewedClock,
    run_chaos,
    verify_journal,
)

needs_linux = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="/proc probes + fork + POSIX signals required",
)


class TestVerifyJournal:
    def test_clean_journal_passes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"key": "a", "status": "ok", "result": 1}) + "\n"
            + json.dumps({"key": "b", "status": "failed"}) + "\n"
        )
        assert verify_journal(path) == []

    def test_torn_tail_tolerated_but_torn_middle_is_not(self, tmp_path):
        ok = json.dumps({"key": "a", "status": "ok", "result": 1})
        tail_torn = tmp_path / "tail.jsonl"
        tail_torn.write_text(ok + "\n" + '{"key": "b", "sta')
        assert verify_journal(tail_torn) == []

        mid_torn = tmp_path / "mid.jsonl"
        mid_torn.write_text('{"key": "b", "sta' + "\n" + ok + "\n")
        problems = verify_journal(mid_torn)
        assert problems and "not at EOF" in problems[0]

    def test_duplicate_ok_records_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        rec = json.dumps({"key": "a", "status": "ok", "result": 1})
        path.write_text(rec + "\n" + rec + "\n")
        problems = verify_journal(path)
        assert problems and "duplicate" in problems[0]

    def test_missing_journal_reported(self, tmp_path):
        assert verify_journal(tmp_path / "nope.jsonl")


class TestSkewedClock:
    def test_jumps_once_after_n_calls(self):
        clock = SkewedClock(jump=100.0, after=3)
        before = [clock() for _ in range(3)]
        after = [clock() for _ in range(3)]
        assert clock.jumped
        assert after[0] - before[-1] > 99.0
        # Monotonic before and after the jump.
        assert sorted(before + after) == before + after


class TestHarness:
    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_chaos(scenarios=["no-such-scenario"], workdir=tmp_path)

    def test_quick_is_a_subset_of_all(self):
        assert set(QUICK_SCENARIOS) <= set(SCENARIOS)


@needs_linux
class TestScenarios:
    """The real thing: every chaos scenario must pass on this tree."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_passes(self, name, tmp_path):
        [result] = run_chaos(scenarios=[name], workdir=tmp_path)
        assert result.passed, "\n".join(result.problems)


@needs_linux
class TestCLI:
    def test_chaos_quick_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["chaos", "--quick", "--workdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "8/8 scenarios passed" in out

    def test_unknown_scenario_exits_two(self, tmp_path):
        from repro.cli import main

        assert main(["chaos", "--scenario", "bogus",
                     "--workdir", str(tmp_path)]) == 2
