#!/usr/bin/env python3
"""Look inside Berti: watch the history table and table of deltas learn.

Feeds the paper's own example patterns (§II-B) directly through Berti's
hooks and dumps the internal state after training:

* lbm's +1,+2,+1,+2 alternation — IP-stride learns nothing, Berti finds
  the 100 %-coverage local deltas +3 and +6;
* mcf's irregular descending sequence −1,−5,−2,−1,−4,−1 — the stride is
  inconsistent but delta −13 (the period sum) and friends have full
  coverage.

Run:  python examples/inspect_berti.py
"""

from repro.core.berti import BertiPrefetcher
from repro.core.delta_table import STATUS_NAMES
from repro.prefetchers.base import AccessInfo, FillInfo


def feed(pf, ip, strides, count=200, period=500, latency=120):
    """Drive a miss stream with the given stride sequence through Berti's
    training hooks (miss -> fill with measured latency)."""
    line = 1 << 16
    for i in range(count):
        now = i * period
        pf.on_access(AccessInfo(ip=ip, line=line, hit=False,
                                prefetch_hit=False, now=now))
        pf.on_fill(FillInfo(line=line, now=now + latency, latency=latency,
                            was_prefetch=False, ip=ip))
        line += strides[i % len(strides)]


def dump(pf, ip, title):
    print(f"\n{title}")
    print(f"  history entries for IP: {pf.history.occupancy()} total")
    snap = pf.deltas.entry_snapshot(ip)
    print(f"  table of deltas (delta, coverage-in-phase, status):")
    for delta, coverage, status in sorted(snap, key=lambda x: -abs(x[0]))[:10]:
        print(f"    {delta:+5d}  cov={coverage:2d}  {STATUS_NAMES[status]}")
    selected = pf.deltas.prefetch_deltas(ip)
    print(f"  -> prefetching deltas: "
          f"{[(d, STATUS_NAMES[s]) for d, s in selected]}")


def main() -> None:
    print("Berti internals on the paper's §II-B example patterns")

    pf = BertiPrefetcher()
    feed(pf, ip=0x401CB0, strides=[1, 2])
    dump(pf, 0x401CB0, "lbm IP 0x401cb0: strides +1,+2,+1,+2 ...")

    pf2 = BertiPrefetcher()
    feed(pf2, ip=0x402DC7, strides=[-1, -5, -2, -1, -4, -1])
    dump(pf2, 0x402DC7, "mcf IP 0x402dc7: strides -1,-5,-2,-1,-4,-1 ...")

    print("\nNote: an IP-stride prefetcher sees no constant stride in either"
          "\npattern and never gains confidence; Berti's timely local deltas"
          "\ncover both (the paper's motivation for local-delta prefetching).")


if __name__ == "__main__":
    main()
