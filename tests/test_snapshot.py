"""Crash-durable snapshot / bit-identical resume tests.

``simulate_with_snapshots`` must equal ``simulate`` exactly — with
checkpointing enabled, resumed from any checkpoint (including one
inside the warmup window), or resumed from a directory.  Corrupt,
truncated, foreign, or mismatched snapshots are rejected with a typed
:class:`SnapshotError` before any simulation state is touched.
"""

import json
import os

import pytest

from repro.errors import ConfigError, SnapshotError
from repro.prefetchers.registry import make_prefetcher
from repro.sanitizer import SanitizerConfig
from repro.sanitizer.lockstep import quick_trace
from repro.sanitizer.snapshot import (
    latest_snapshot,
    load_snapshot,
    simulate_with_snapshots,
    snapshot_path,
    trace_digest,
)
from repro.simulator.engine import simulate


RECORDS = 1200  # warmup_end = 240 → snap-00000200 falls inside warmup


@pytest.fixture(scope="module")
def trace():
    return quick_trace(RECORDS, "snap_trace")


@pytest.fixture(scope="module")
def baseline(trace):
    return simulate(
        trace, l1d_prefetcher=make_prefetcher("berti")
    ).to_dict()


@pytest.fixture
def ckpt_dir(tmp_path, trace):
    """A directory of checkpoints every 200 records (one mid-warmup)."""
    d = tmp_path / "ckpts"
    d.mkdir()
    simulate_with_snapshots(
        trace, l1d_prefetcher=make_prefetcher("berti"),
        snapshot_every=200, snapshot_dir=str(d),
    )
    return d


class TestBitIdenticalResume:
    def test_plain_call_matches_simulate(self, trace, baseline):
        res = simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti")
        )
        assert res.to_dict() == baseline

    def test_snapshotting_run_matches_simulate(self, trace, baseline,
                                               ckpt_dir):
        # The fixture already ran with snapshot_every=200; verify the
        # checkpoints exist and re-run to get the result itself.
        written = sorted(p.name for p in ckpt_dir.iterdir()
                         if p.suffix == ".ckpt")
        assert written == [f"snap-{i:08d}.ckpt"
                           for i in range(200, RECORDS, 200)]
        res = simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            snapshot_every=200, snapshot_dir=str(ckpt_dir),
        )
        assert res.to_dict() == baseline

    @pytest.mark.parametrize("index", [200, 400, 1000])
    def test_resume_from_each_checkpoint(self, trace, baseline, ckpt_dir,
                                         index):
        # index=200 resumes from *inside* the warmup window (end = 240):
        # the warmup-boundary reset must replay on the resumed side too.
        res = simulate_with_snapshots(
            trace, resume_from=snapshot_path(str(ckpt_dir), index)
        )
        assert res.to_dict() == baseline

    def test_resume_from_directory_uses_latest(self, trace, baseline,
                                               ckpt_dir):
        assert latest_snapshot(str(ckpt_dir)).endswith("snap-00001000.ckpt")
        res = simulate_with_snapshots(trace, resume_from=str(ckpt_dir))
        assert res.to_dict() == baseline

    def test_resumed_run_with_sanitizer_matches(self, trace, baseline,
                                                ckpt_dir):
        res = simulate_with_snapshots(
            trace, resume_from=str(ckpt_dir),
            sanitize=SanitizerConfig(check_every=32),
        )
        assert res.to_dict() == baseline

    def test_snapshot_dir_created_if_missing(self, trace, baseline,
                                             tmp_path):
        d = tmp_path / "not" / "yet" / "there"
        res = simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            snapshot_every=500, snapshot_dir=str(d),
        )
        assert res.to_dict() == baseline
        assert latest_snapshot(str(d)) is not None

    def test_no_temp_files_left_behind(self, ckpt_dir):
        leftovers = [p for p in ckpt_dir.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestRejection:
    """Every malformed snapshot fails loudly with SnapshotError."""

    def _one(self, ckpt_dir, index=400):
        return snapshot_path(str(ckpt_dir), index)

    def test_corrupt_payload_rejected(self, trace, ckpt_dir):
        path = self._one(ckpt_dir)
        blob = bytearray(open(path, "rb").read())
        blob[-3] ^= 0xFF  # flip one payload bit
        open(path, "wb").write(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            load_snapshot(path, trace=trace)

    def test_truncated_payload_rejected(self, trace, ckpt_dir):
        path = self._one(ckpt_dir)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError, match="truncated"):
            load_snapshot(path, trace=trace)

    def test_missing_header_rejected(self, trace, ckpt_dir):
        path = self._one(ckpt_dir)
        open(path, "wb").write(b"no newline so no header at all")
        with pytest.raises(SnapshotError, match="no header"):
            load_snapshot(path, trace=trace)

    def test_wrong_magic_rejected(self, trace, ckpt_dir):
        path = self._one(ckpt_dir)
        header, payload = open(path, "rb").read().split(b"\n", 1)
        meta = json.loads(header)
        meta["magic"] = "other-tool"
        open(path, "wb").write(
            json.dumps(meta).encode() + b"\n" + payload
        )
        with pytest.raises(SnapshotError, match="not a repro snapshot"):
            load_snapshot(path, trace=trace)

    def test_future_version_rejected(self, trace, ckpt_dir):
        path = self._one(ckpt_dir)
        header, payload = open(path, "rb").read().split(b"\n", 1)
        meta = json.loads(header)
        meta["version"] = 99
        open(path, "wb").write(
            json.dumps(meta).encode() + b"\n" + payload
        )
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(path, trace=trace)

    def test_wrong_trace_rejected(self, ckpt_dir):
        with pytest.raises(SnapshotError, match="trace"):
            load_snapshot(self._one(ckpt_dir), trace=quick_trace(600))

    def test_wrong_prefetcher_rejected(self, trace, ckpt_dir):
        with pytest.raises(SnapshotError, match="prefetcher"):
            simulate_with_snapshots(
                trace, l1d_prefetcher=make_prefetcher("bop"),
                resume_from=self._one(ckpt_dir),
            )

    def test_empty_directory_rejected(self, trace, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshots"):
            simulate_with_snapshots(trace, resume_from=str(tmp_path))

    def test_snapshot_every_requires_dir(self, trace):
        with pytest.raises(ConfigError, match="snapshot_dir"):
            simulate_with_snapshots(trace, snapshot_every=100)

    def test_negative_interval_rejected(self, trace):
        with pytest.raises(ConfigError, match="snapshot_every"):
            simulate_with_snapshots(trace, snapshot_every=-1)


class TestTraceDigest:
    def test_digest_is_content_addressed(self):
        a = quick_trace(600)
        b = quick_trace(600)
        assert trace_digest(a) == trace_digest(b)
        assert trace_digest(a) != trace_digest(quick_trace(900))
