"""Tests for the campaign service (PR 6, ``repro.service``).

Unit-level coverage of every durability primitive — the CRC-framed
torn-tail-healing WAL, the checksum-verified result cache with
quarantine, the lease table with exactly-once requeue — plus the
scheduler itself (idempotent submission, backpressure, cancellation,
WAL-replay recovery) and the retrying HTTP client.  Whole-system crash
behaviour (SIGKILL, disconnects, corruption under load) lives in the
chaos harness (``repro chaos``, tests/test_chaos.py); these tests pin
the contracts each piece honours on its own, with injected clocks and
run functions so nothing here depends on timing.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    CacheCorruption,
    ConfigError,
    LeaseExpired,
    ServiceError,
)
from repro.runner.jobs import JobSpec
from repro.service import (
    CampaignService,
    ServiceClient,
    ServiceConfig,
    canonical_json,
    crc32_of,
    read_endpoint,
)
from repro.service.daemon import (
    canonical_job_config,
    job_content_key,
    spec_from_dict,
    spec_to_dict,
    trace_digest,
)
from repro.service.leases import Lease, LeaseTable
from repro.service.resultcache import ResultCache, content_key
from repro.service.wal import ServiceWAL

TRACE = "lbm_s-2676B"
TRACE2 = "mcf_s-1554B"


# ----------------------------------------------------------------------
# Test doubles
# ----------------------------------------------------------------------


class FakeClock:
    """Injected monotonic clock: time moves only when told to."""

    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def fake_run(spec: JobSpec, attempt: int = 1) -> dict:
    """Deterministic stand-in for the simulation worker."""
    return {"trace": spec.trace, "l1d": spec.l1d, "attempt_seen": attempt}


def make_service(tmp_path, run_fn=fake_run, clock=None, **overrides):
    cfg = dict(state_dir=tmp_path / "state", workers=1,
               lease_duration=30.0, lease_poll=0.05)
    cfg.update(overrides)
    return CampaignService(ServiceConfig(**cfg), now_fn=clock or FakeClock(),
                           run_fn=run_fn)


def run_next(service) -> None:
    """Execute exactly one pending job inline (no worker threads)."""
    job = service._next_job()
    assert job is not None, "no pending job to run"
    lease = service.leases.lease_for(job.content_key)
    error = None
    result = None
    try:
        result = service._run_fn(job.spec, lease.attempt)
    except Exception as exc:  # noqa: BLE001 — mirrors the worker loop
        error = {"error_type": type(exc).__name__, "kind": "crash",
                 "message": str(exc)}
    service._record_attempt(job, lease.lease_id, lease.attempt,
                            result, error)


def run_all(service) -> None:
    while any(service._jobs[k].status == "pending"
              for k in service._pending):
        run_next(service)


def submit_specs(service, specs, idempotency_key=""):
    payload = {"jobs": [spec_to_dict(s) for s in specs]}
    if idempotency_key:
        payload["idempotency_key"] = idempotency_key
    return service.submit(payload)


SPECS = [JobSpec(trace=TRACE, l1d="none", scale=0.03),
         JobSpec(trace=TRACE2, l1d="berti", scale=0.03)]


# ----------------------------------------------------------------------
# WAL: framing, healing, refusal
# ----------------------------------------------------------------------


class TestServiceWAL:
    def records(self, n=3):
        return [{"type": "campaign", "cid": f"c{i}"} for i in range(n)]

    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "service.wal"
        wal = ServiceWAL(path)
        for rec in self.records():
            wal.append(rec)
        wal.close()
        assert ServiceWAL(path).replay() == self.records()

    def test_seq_is_strictly_monotonic_on_disk(self, tmp_path):
        wal = ServiceWAL(tmp_path / "w.wal")
        for rec in self.records():
            wal.append(rec)
        wal.close()
        frames = [json.loads(line)
                  for line in (tmp_path / "w.wal").read_text().splitlines()]
        assert [f["seq"] for f in frames] == [1, 2, 3]
        assert all(f["crc"] == crc32_of(f["rec"]) for f in frames)

    def test_appends_after_replay_extend_the_sequence(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = ServiceWAL(path)
        wal.append({"type": "epoch", "epoch": 1})
        wal.close()
        resumed = ServiceWAL(path)
        resumed.replay()
        assert resumed.append({"type": "epoch", "epoch": 2}) == 2
        resumed.close()
        assert len(ServiceWAL(path).replay()) == 2

    def test_torn_tail_healed_at_every_byte_offset(self, tmp_path):
        """SIGKILL mid-append tears the final record at an arbitrary
        byte.  Every possible tear must heal to the last good record —
        replay returns the intact prefix and truncates the file so the
        next append starts a clean line."""
        path = tmp_path / "w.wal"
        wal = ServiceWAL(path)
        for rec in self.records(3):
            wal.append(rec)
        wal.close()
        raw = path.read_bytes()
        # Byte offset where the final frame starts.
        tail_start = raw.rindex(b"\n", 0, len(raw) - 1) + 1
        for cut in range(tail_start, len(raw)):
            torn = tmp_path / f"torn-{cut}.wal"
            torn.write_bytes(raw[:cut])
            replayed = ServiceWAL(torn).replay()
            if cut == len(raw) - 1:
                # Only the newline is gone: the final record is intact
                # and must survive.
                assert replayed == self.records(3), f"tear at byte {cut}"
            else:
                assert replayed == self.records(2), f"tear at byte {cut}"
                assert torn.read_bytes() == raw[:tail_start], \
                    f"tear at byte {cut} not healed"

    def test_healed_wal_accepts_new_appends(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = ServiceWAL(path)
        for rec in self.records(2):
            wal.append(rec)
        wal.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])  # tear the tail
        resumed = ServiceWAL(path)
        assert resumed.replay() == self.records(1)
        resumed.append({"type": "drain", "epoch": 1})
        resumed.close()
        assert ServiceWAL(path).replay() == (
            self.records(1) + [{"type": "drain", "epoch": 1}]
        )

    def test_corruption_before_eof_is_refused(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = ServiceWAL(path)
        for rec in self.records(3):
            wal.append(rec)
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b'{"garbage": true}\n' + lines[2])
        with pytest.raises(ServiceError, match="corrupt before EOF"):
            ServiceWAL(path).replay()

    def test_bitflip_mid_file_is_refused(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = ServiceWAL(path)
        for rec in self.records(3):
            wal.append(rec)
        wal.close()
        raw = bytearray(path.read_bytes())
        # Flip one byte inside the *first* record's payload: still JSON-
        # parseable garbage or a CRC mismatch — either way not at EOF.
        target = raw.index(b"c0")
        raw[target] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ServiceError, match="refusing to guess"):
            ServiceWAL(path).replay()

    def test_seq_gap_mid_file_is_refused(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = ServiceWAL(path)
        for rec in self.records(3):
            wal.append(rec)
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + lines[2] + lines[1])  # 1, 3, 2
        with pytest.raises(ServiceError, match="corrupt"):
            ServiceWAL(path).replay()

    def test_replay_after_append_is_a_bug(self, tmp_path):
        wal = ServiceWAL(tmp_path / "w.wal")
        wal.append({"type": "epoch", "epoch": 1})
        with pytest.raises(ServiceError, match="before the first append"):
            wal.replay()
        wal.close()

    def test_canonical_json_is_deterministic(self):
        a = canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]})
        b = canonical_json({"a": [2, {"c": 4, "d": 3}], "b": 1})
        assert a == b
        assert " " not in a
        assert crc32_of({"x": 1}) == crc32_of({"x": 1})
        assert crc32_of({"x": 1}) != crc32_of({"x": 2})


# ----------------------------------------------------------------------
# Result cache: verification + quarantine
# ----------------------------------------------------------------------


class TestResultCache:
    def test_put_get_roundtrip_counts_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", {"cycles": 42})
        assert cache.get("k1") == {"cycles": 42}
        assert cache.get("missing") is None
        assert cache.stats() == {"hits": 1, "misses": 1, "quarantined": 0,
                                 "entries": 1}

    def test_corrupt_entry_quarantined_never_served(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put("k1", {"cycles": 42})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CacheCorruption, match="recomputing"):
            cache.get("k1")
        assert not path.exists()  # moved aside, not readable as an entry
        quarantined = list((tmp_path / "cache").glob("*.quarantined-*"))
        assert len(quarantined) == 1  # preserved for post-mortem
        assert cache.quarantined == 1
        assert cache.get("k1") is None  # now a plain miss

    def test_reput_heals_a_quarantined_key(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = cache.put("k1", {"cycles": 42})
        path.write_bytes(b"not json at all")
        with pytest.raises(CacheCorruption):
            cache.get("k1")
        cache.put("k1", {"cycles": 42})
        assert cache.get("k1") == {"cycles": 42}

    def test_repeat_corruption_gets_distinct_quarantine_names(
            self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for _ in range(2):
            path = cache.put("k1", {"cycles": 42})
            path.write_bytes(b"garbage")
            with pytest.raises(CacheCorruption):
                cache.get("k1")
        suffixes = sorted(p.name.rsplit("-", 1)[1] for p in
                          (tmp_path / "cache").glob("*.quarantined-*"))
        assert suffixes == ["0", "1"]

    def test_entry_swapped_between_keys_is_rejected(self, tmp_path):
        # A valid entry served under the wrong key is corruption too:
        # the body carries its own key and must match the filename.
        cache = ResultCache(tmp_path / "cache")
        a = cache.put("aaaa", {"cycles": 1})
        b = cache.put("bbbb", {"cycles": 2})
        b.write_bytes(a.read_bytes())
        with pytest.raises(CacheCorruption, match="does not match its key"):
            cache.get("bbbb")

    def test_reput_is_atomic_overwrite(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", {"cycles": 1})
        cache.put("k1", {"cycles": 2})
        assert cache.get("k1") == {"cycles": 2}
        assert cache.stats()["entries"] == 1


# ----------------------------------------------------------------------
# Content identity
# ----------------------------------------------------------------------


class TestContentKey:
    def test_identity_fields_change_the_key(self):
        base = JobSpec(trace=TRACE, l1d="berti", scale=0.1)
        assert job_content_key(base) == job_content_key(
            JobSpec(trace=TRACE, l1d="berti", scale=0.1))
        for variant in (
            JobSpec(trace=TRACE2, l1d="berti", scale=0.1),
            JobSpec(trace=TRACE, l1d="ip_stride", scale=0.1),
            JobSpec(trace=TRACE, l1d="berti", scale=0.2),
            JobSpec(trace=TRACE, l1d="berti", scale=0.1, mtps=1600),
            JobSpec(trace=TRACE, l1d="berti", scale=0.1,
                    warmup_fraction=0.5),
        ):
            assert job_content_key(variant) != job_content_key(base)

    def test_observation_knobs_do_not_change_the_key(self):
        # Heartbeats/sanitizer flags are observation, not identity —
        # mirrors their exclusion from JobSpec.key.
        base = JobSpec(trace=TRACE, l1d="berti", scale=0.1)
        tapped = JobSpec(trace=TRACE, l1d="berti", scale=0.1,
                         sanitize=True, heartbeat_every=100,
                         heartbeat_path="/tmp/hb.json")
        assert job_content_key(tapped) == job_content_key(base)

    def test_store_backed_jobs_hash_the_file_bytes(self, tmp_path):
        import hashlib

        store = tmp_path / "t.trc"
        store.write_bytes(b"trace bytes")
        spec = JobSpec(trace=TRACE, scale=0.1, trace_path=str(store))
        expected = "sha256:" + hashlib.sha256(b"trace bytes").hexdigest()
        assert trace_digest(spec) == expected
        assert trace_digest(JobSpec(trace=TRACE, scale=0.1)) == (
            f"catalog:{TRACE}:scale=0.1"
        )

    def test_config_resolution_lands_in_the_hash(self):
        # The DRAM rate resolves into actual SystemConfig field values,
        # so an mtps submission knob cannot collide with the default.
        base = canonical_job_config(JobSpec(trace=TRACE))
        fast = canonical_job_config(JobSpec(trace=TRACE, mtps=1600))
        assert fast["system"]["dram"] != base["system"]["dram"]
        assert "berti" in base and "job" in base

    def test_content_key_is_sha256_of_canonical_blob(self):
        key = content_key("sha256:abc", {"x": 1})
        assert len(key) == 64 and int(key, 16) >= 0
        assert key == content_key("sha256:abc", {"x": 1})
        assert key != content_key("sha256:abd", {"x": 1})

    def test_spec_dict_roundtrip_and_rejection(self):
        spec = SPECS[0]
        assert spec_from_dict(spec_to_dict(spec)) == spec
        with pytest.raises(ServiceError) as exc:
            spec_from_dict({"l1d": "berti"})  # no trace: malformed
        assert exc.value.status == 400


# ----------------------------------------------------------------------
# Lease table
# ----------------------------------------------------------------------


class TestLeaseTable:
    def test_grant_renew_release_lineage(self):
        table = LeaseTable(duration=10.0, epoch=1)
        lease = table.grant("job-a", attempt=1, now=100.0)
        assert lease.lease_id == "L1-1"
        assert lease.expires_at == 110.0
        table.renew(lease.lease_id, now=105.0, seq=7)
        assert lease.expires_at == 115.0 and lease.last_seq == 7
        table.release(lease.lease_id, "ok")
        events = [e["event"] for e in table.lineage("job-a")]
        assert events == ["grant", "renew", "ok"]
        assert not table.live()

    def test_one_live_lease_per_job(self):
        table = LeaseTable(duration=10.0)
        table.grant("job-a", attempt=1, now=0.0)
        with pytest.raises(LeaseExpired, match="grant refused"):
            table.grant("job-a", attempt=2, now=1.0)

    def test_renew_of_dead_lease_is_a_noop(self):
        table = LeaseTable(duration=10.0)
        table.renew("L1-99", now=0.0)  # must not raise or create state
        assert not table.live()

    def test_expiry_by_clock(self):
        table = LeaseTable(duration=10.0)
        lease = table.grant("job-a", attempt=1, now=0.0)
        assert table.expire(now=9.9) == []
        dead = table.expire(now=10.0)
        assert [d.lease_id for d in dead] == [lease.lease_id]
        [expiry] = [e for e in table.lineage("job-a")
                    if e["event"] == "expired"]
        assert expiry["reason"] == "no heartbeat before expiry"

    def test_dead_epoch_expires_immediately(self):
        # An epoch-1 lease surviving into an epoch-2 table models the
        # post-SIGKILL replay: its worker is provably dead, so expiry
        # must not wait out the clock.
        table = LeaseTable(duration=1e9, epoch=2)
        stale = Lease(lease_id="L1-1", job_key="job-a", attempt=1,
                      epoch=1, granted_at=0.0, expires_at=1e9)
        table._live["L1-1"] = stale
        table._by_job["job-a"] = "L1-1"
        dead = table.expire(now=0.0)
        assert [d.job_key for d in dead] == ["job-a"]
        [expiry] = [e for e in table.lineage("job-a")
                    if e["event"] == "expired"]
        assert expiry["reason"] == "daemon epoch lost"

    def test_requeue_budget_is_exactly_once_per_expiry(self):
        table = LeaseTable(duration=10.0, max_requeues=1)
        table.grant("job-a", attempt=1, now=0.0)
        table.expire(now=10.0)
        assert table.may_requeue("job-a")    # first expiry: requeue
        table.grant("job-a", attempt=2, now=20.0)
        table.expire(now=30.0)
        assert not table.may_requeue("job-a")  # budget spent: give up
        err = table.expiry_error("job-a")
        assert isinstance(err, LeaseExpired)
        assert "lost 2 leases" in str(err)

    def test_completed_job_is_never_requeued(self):
        table = LeaseTable(duration=10.0)
        lease = table.grant("job-a", attempt=1, now=0.0)
        table.release(lease.lease_id, "ok")
        assert not table.may_requeue("job-a")

    def test_late_result_release_returns_none(self):
        table = LeaseTable(duration=10.0)
        lease = table.grant("job-a", attempt=1, now=0.0)
        table.expire(now=10.0)
        assert table.release(lease.lease_id, "ok") is None
        table.record_late_result("job-a", lease.lease_id)
        assert table.lineage("job-a")[-1]["event"] == "late-result"

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            LeaseTable(duration=0.0)


# ----------------------------------------------------------------------
# Scheduler: submission, idempotency, backpressure, recovery
# ----------------------------------------------------------------------


class TestServiceConfig:
    @pytest.mark.parametrize("bad", [
        dict(workers=0), dict(lease_duration=0.0), dict(lease_poll=0.0),
        dict(max_queue=0), dict(max_requeues=-1),
    ])
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ConfigError):
            ServiceConfig(**bad)


class TestSubmission:
    def test_malformed_payloads_rejected(self, tmp_path):
        service = make_service(tmp_path)
        for payload in ({}, {"jobs": []}, {"jobs": "nope"},
                        {"jobs": ["not-an-object"]},
                        {"jobs": [{"l1d": "berti"}]}):
            with pytest.raises(ServiceError) as exc:
                service.submit(payload)
            assert exc.value.status == 400, payload

    def test_submit_compute_fetch(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, SPECS)
        assert resp["created"] and resp["cache_hits"] == 0
        assert resp["total"] == 2 and resp["state"] == "running"
        run_all(service)
        results = service.results(resp["campaign"])
        assert results["state"] == "done"
        assert [r["status"] for r in results["results"]] == ["ok", "ok"]
        assert results["results"][0]["result"]["trace"] == TRACE

    def test_duplicate_jobs_in_one_submission_compute_once(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, [SPECS[0], SPECS[0]])
        assert resp["total"] == 2  # both entries answered...
        run_all(service)
        assert service.jobs_computed == 1  # ...from one computation
        assert service.results(resp["campaign"])["state"] == "done"

    def test_resubmission_is_idempotent(self, tmp_path):
        service = make_service(tmp_path)
        first = submit_specs(service, SPECS)
        again = submit_specs(service, SPECS)
        assert again["campaign"] == first["campaign"]
        assert not again["created"]
        run_all(service)
        done = submit_specs(service, SPECS)
        assert done["cache_hits"] == 2 and done["all_cached"]
        assert service.jobs_computed == 2  # nothing recomputed

    def test_distinct_idempotency_keys_share_results(self, tmp_path):
        service = make_service(tmp_path)
        first = submit_specs(service, SPECS, idempotency_key="alpha")
        run_all(service)
        second = submit_specs(service, SPECS, idempotency_key="beta")
        assert second["campaign"] != first["campaign"]
        assert second["created"] and second["all_cached"]
        assert service.jobs_computed == 2  # cache served the second

    def test_job_order_does_not_change_the_campaign_id(self, tmp_path):
        service = make_service(tmp_path)
        first = submit_specs(service, SPECS)
        flipped = submit_specs(service, list(reversed(SPECS)))
        assert flipped["campaign"] == first["campaign"]

    def test_backpressure_refuses_with_retry_after(self, tmp_path):
        service = make_service(tmp_path, max_queue=1, retry_after=2.5)
        submit_specs(service, [SPECS[0]])
        with pytest.raises(ServiceError) as exc:
            submit_specs(service, [SPECS[1],
                                   JobSpec(trace=TRACE, l1d="berti",
                                           scale=0.07)])
        assert exc.value.status == 429
        assert exc.value.retry_after == 2.5

    def test_cached_jobs_bypass_backpressure(self, tmp_path):
        service = make_service(tmp_path, max_queue=1)
        submit_specs(service, [SPECS[0]])
        run_all(service)
        # The queue is empty again and these keys are cached: a huge
        # resubmission under a new idempotency key must not 429.
        resp = submit_specs(service, [SPECS[0]], idempotency_key="again")
        assert resp["all_cached"]

    def test_failures_are_never_memoized(self, tmp_path):
        calls = {"n": 0}

        def flaky(spec, attempt):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient blow-up")
            return fake_run(spec, attempt)

        service = make_service(tmp_path, run_fn=flaky)
        first = submit_specs(service, [SPECS[0]])
        run_all(service)
        results = service.results(first["campaign"])
        [failed] = results["results"]
        assert failed["status"] == "failed"
        assert failed["error"]["kind"] == "crash"
        # A fresh submission buys a fresh attempt — no negative caching.
        retry = submit_specs(service, [SPECS[0]], idempotency_key="retry")
        assert not retry["all_cached"]
        run_all(service)
        assert service.results(
            retry["campaign"])["results"][0]["status"] == "ok"

    def test_results_before_done_is_409(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, SPECS)
        with pytest.raises(ServiceError) as exc:
            service.results(resp["campaign"])
        assert exc.value.status == 409

    def test_unknown_campaign_is_404(self, tmp_path):
        service = make_service(tmp_path)
        for call in (service.status, service.results, service.cancel):
            with pytest.raises(ServiceError) as exc:
                call("c0000000000000000")
            assert exc.value.status == 404

    def test_cancel_stops_pending_but_spares_shared_jobs(self, tmp_path):
        service = make_service(tmp_path)
        both = submit_specs(service, SPECS)
        solo = submit_specs(service, [SPECS[0]], idempotency_key="solo")
        cancelled = service.cancel(both["campaign"])
        assert cancelled["state"] == "cancelled"
        # SPECS[0] is still wanted by the solo campaign; SPECS[1] is not.
        keys = [job_content_key(s) for s in SPECS]
        assert service._jobs[keys[0]].status == "pending"
        assert service._jobs[keys[1]].status == "cancelled"
        with pytest.raises(ServiceError, match="cancelled"):
            service.results(both["campaign"])
        run_all(service)
        assert service.results(solo["campaign"])["state"] == "done"

    def test_drain_refuses_submissions(self, tmp_path):
        service = make_service(tmp_path)
        service.drain()
        with pytest.raises(ServiceError) as exc:
            submit_specs(service, SPECS)
        assert exc.value.status == 503

    def test_status_reports_lease_and_lineage(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, [SPECS[0]])
        job = service._next_job()  # grant the lease, don't run yet
        status = service.status(resp["campaign"])
        [entry] = status["jobs"]
        assert entry["status"] == "leased"
        assert entry["lease"]["lease_id"] == job.lease_id
        assert entry["lineage"][0]["event"] == "grant"
        assert status["counts"] == {"leased": 1}

    def test_healthz_counters(self, tmp_path):
        service = make_service(tmp_path)
        submit_specs(service, SPECS)
        run_all(service)
        health = service.healthz()
        assert health["ok"] and health["epoch"] == 1
        assert health["queue_depth"] == 0
        assert health["jobs_computed"] == 2
        assert health["campaigns"] == 1
        assert health["cache"]["entries"] == 2

    def test_corrupt_cache_entry_requeues_on_fetch(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, SPECS)
        run_all(service)
        key = job_content_key(SPECS[0])
        entry = service.cache._entry(key)
        entry.write_bytes(b"rotted")
        with pytest.raises(ServiceError, match="recomputed") as exc:
            service.results(resp["campaign"])
        assert exc.value.status == 409
        run_all(service)  # the healed recompute
        results = service.results(resp["campaign"])
        assert all(r["status"] == "ok" for r in results["results"])
        assert service.cache.quarantined == 1


class TestRecovery:
    def test_restart_resumes_queue_and_results(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, SPECS)
        run_next(service)  # finish exactly one of the two jobs
        reference = service.cache.get(job_content_key(SPECS[0]))
        service.wal.close()

        resumed = make_service(tmp_path)
        assert resumed.epoch == 2
        keys = [job_content_key(s) for s in SPECS]
        assert resumed._jobs[keys[0]].status == "done"
        assert resumed._jobs[keys[1]].status == "pending"
        assert list(resumed._pending) == [keys[1]]
        run_all(resumed)
        results = resumed.results(resp["campaign"])
        assert results["state"] == "done"
        assert results["results"][0]["result"] == reference

    def test_open_lease_is_orphaned_and_requeued_once(self, tmp_path):
        service = make_service(tmp_path)
        submit_specs(service, [SPECS[0]])
        service._next_job()     # lease granted, worker "dies" here
        service.wal.close()

        resumed = make_service(tmp_path)
        key = job_content_key(SPECS[0])
        assert resumed._jobs[key].status == "pending"
        expiries = [r for r in ServiceWAL(
            resumed.state_dir / "service.wal").replay()
            if r.get("type") == "lease-expired"]
        assert len(expiries) == 1
        assert expiries[0]["reason"] == "daemon epoch lost"
        assert expiries[0]["requeued"] is True
        resumed.wal.close()

    def test_cancellation_survives_replay(self, tmp_path):
        service = make_service(tmp_path)
        resp = submit_specs(service, SPECS)
        service.cancel(resp["campaign"])
        service.wal.close()
        resumed = make_service(tmp_path)
        assert resumed._campaigns[resp["campaign"]].state == "cancelled"
        assert not resumed._pending
        resumed.wal.close()

    def test_idempotency_survives_replay(self, tmp_path):
        service = make_service(tmp_path)
        first = submit_specs(service, SPECS)
        run_all(service)
        service.wal.close()
        resumed = make_service(tmp_path)
        again = submit_specs(resumed, SPECS)
        assert again["campaign"] == first["campaign"]
        assert not again["created"]
        assert again["all_cached"]
        resumed.wal.close()


class TestLeaseExpiryInService:
    def test_expired_lease_requeues_then_fails_on_budget(self, tmp_path):
        clock = FakeClock()
        service = make_service(tmp_path, clock=clock, lease_duration=10.0,
                               max_requeues=1)
        resp = submit_specs(service, [SPECS[0]])
        key = job_content_key(SPECS[0])

        def expire_once():
            service._next_job()  # worker takes the lease and stalls
            clock.advance(11.0)
            now = clock()
            with service._lock:
                for lease in service.leases.expire(now):
                    job = service._jobs[lease.job_key]
                    requeue = service.leases.may_requeue(lease.job_key)
                    if requeue:
                        job.status = "pending"
                        service._pending.append(lease.job_key)
                    else:
                        exc = service.leases.expiry_error(lease.job_key)
                        job.status = "failed"
                        job.error = {"error_type": type(exc).__name__,
                                     "kind": "timeout",
                                     "message": str(exc)}
                        for cid in job.campaigns:
                            service._refresh_campaign(
                                service._campaigns[cid])

        expire_once()
        assert service._jobs[key].status == "pending"  # first: requeued
        expire_once()
        assert service._jobs[key].status == "failed"   # second: give up
        results = service.results(resp["campaign"])
        [failed] = results["results"]
        assert failed["status"] == "failed"
        assert failed["error"]["kind"] == "timeout"


# ----------------------------------------------------------------------
# Client: endpoint discovery, retry, backoff
# ----------------------------------------------------------------------


class TestReadEndpoint:
    def test_missing_endpoint_hints_at_serve(self, tmp_path):
        with pytest.raises(ServiceError, match="repro serve") as exc:
            read_endpoint(tmp_path)
        assert exc.value.status == 503

    def test_unreadable_endpoint_is_500(self, tmp_path):
        (tmp_path / "endpoint.json").write_text("{broken")
        with pytest.raises(ServiceError) as exc:
            read_endpoint(tmp_path)
        assert exc.value.status == 500

    def test_roundtrip(self, tmp_path):
        (tmp_path / "endpoint.json").write_text(
            json.dumps({"host": "127.0.0.1", "port": 8123, "pid": 1}))
        assert read_endpoint(tmp_path) == ("127.0.0.1", 8123)


def scripted_client(responses, **kwargs):
    """A ServiceClient whose transport replays a scripted sequence and
    whose sleeps are recorded instead of slept."""
    sleeps = []
    client = ServiceClient("127.0.0.1", 1, jitter_seed=7,
                           sleep_fn=sleeps.append, **kwargs)
    script = iter(responses)

    def fake_once(method, path, payload):
        item = next(script)
        if isinstance(item, Exception):
            raise item
        return item

    client._once = fake_once
    return client, sleeps


class TestClientRetry:
    def test_retries_transient_statuses_then_succeeds(self):
        client, sleeps = scripted_client([
            (503, 0.2, {"message": "draining"}),
            (429, None, {"message": "queue full"}),
            (200, None, {"ok": True}),
        ], retries=5)
        assert client.request("GET", "/v1/healthz") == {"ok": True}
        assert client.attempts_made == 3
        assert len(sleeps) == 2
        assert sleeps[0] == 0.2  # Retry-After wins over backoff

    def test_connection_errors_retry_too(self):
        client, sleeps = scripted_client([
            ConnectionRefusedError("nobody home"),
            (200, None, {"ok": True}),
        ], retries=2)
        assert client.request("GET", "/v1/healthz") == {"ok": True}
        assert len(sleeps) == 1

    def test_application_errors_do_not_retry(self):
        client, sleeps = scripted_client([
            (404, None, {"message": "unknown campaign"}),
        ], retries=5)
        with pytest.raises(ServiceError, match="unknown campaign") as exc:
            client.request("GET", "/v1/campaigns/cdead")
        assert exc.value.status == 404
        assert client.attempts_made == 1 and not sleeps

    def test_bounded_attempts_then_typed_failure(self):
        client, sleeps = scripted_client(
            [(503, None, {"message": "down"})] * 10, retries=2)
        with pytest.raises(ServiceError, match="after 3 attempts"):
            client.request("GET", "/v1/healthz")
        assert client.attempts_made == 3
        assert len(sleeps) == 2  # no sleep before the final raise

    def test_backoff_is_exponential_capped_and_jittered(self):
        client, sleeps = scripted_client(
            [(503, None, {})] * 8, retries=7,
            backoff_base=0.1, backoff_cap=1.0)
        with pytest.raises(ServiceError):
            client.request("GET", "/v1/healthz")
        raw = [0.1 * 2 ** i for i in range(7)]
        for got, base in zip(sleeps, raw):
            capped = min(1.0, base)
            assert 0.5 * capped <= got < 1.5 * capped
        # The cap bites: late sleeps never exceed 1.5 * cap.
        assert max(sleeps) < 1.5

    def test_jitter_is_deterministic_per_seed(self):
        a, sa = scripted_client([(503, None, {})] * 3, retries=2)
        b, sb = scripted_client([(503, None, {})] * 3, retries=2)
        for c in (a, b):
            with pytest.raises(ServiceError):
                c.request("GET", "/v1/healthz")
        assert sa == sb  # same seed, same schedule


# ----------------------------------------------------------------------
# HTTP API end to end (loopback, fake run_fn: fast and deterministic)
# ----------------------------------------------------------------------


@pytest.fixture()
def live_service(tmp_path):
    # start() launches the HTTP thread, the lease monitor, and the
    # configured worker pool — the same wiring ``repro serve`` uses.
    service = make_service(tmp_path)
    service.start()
    try:
        yield service
    finally:
        service.stop(timeout=10.0)


class TestHTTPRoundTrip:
    def test_submit_poll_fetch_over_http(self, live_service, tmp_path):
        host, port = live_service.address
        assert read_endpoint(tmp_path / "state") == (host, port)
        client = ServiceClient(host, port, retries=3, jitter_seed=1)
        resp = client.submit([spec_to_dict(s) for s in SPECS])
        assert resp["created"]
        final = client.poll(resp["campaign"], interval=0.05, timeout=30.0)
        assert final["state"] == "done"
        results = client.results(resp["campaign"])
        assert [r["status"] for r in results["results"]] == ["ok", "ok"]
        health = client.healthz()
        assert health["ok"] and health["jobs_computed"] == 2

    def test_unknown_routes_and_campaigns_are_404(self, live_service):
        host, port = live_service.address
        client = ServiceClient(host, port, retries=3)
        with pytest.raises(ServiceError) as exc:
            client.request("GET", "/v1/nope")
        assert exc.value.status == 404
        with pytest.raises(ServiceError) as exc:
            client.status("c0000000000000000")
        assert exc.value.status == 404
        assert client.attempts_made == 2  # neither error was retried

    def test_bad_json_body_is_400(self, live_service):
        import http.client

        host, port = live_service.address
        conn = http.client.HTTPConnection(host, port, timeout=10.0)
        try:
            conn.request("POST", "/v1/campaigns", body=b"{not json",
                         headers={"Content-Length": "9"})
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()
