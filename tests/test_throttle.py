"""Unit tests for the FDP throttle wrapper."""

import pytest

from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)
from repro.prefetchers.next_line import NextLinePrefetcher
from repro.prefetchers.throttle import _LEVELS, FDPThrottle


def acc(line, hit=False):
    return AccessInfo(ip=0x1, line=line, hit=hit, prefetch_hit=False, now=0)


class _Flood(Prefetcher):
    name = "flood"

    def on_access(self, access):
        return [PrefetchRequest(line=access.line + k, fill_level=FILL_L1)
                for k in range(1, 17)]


class TestFiltering:
    def test_caps_requests_per_level(self):
        t = FDPThrottle(_Flood(), start_level=0)
        assert len(t.on_access(acc(0))) == _LEVELS[0][0]
        t._level = 4
        assert len(t.on_access(acc(100))) == _LEVELS[4][0]

    def test_conservative_levels_demote_l1_fills(self):
        t = FDPThrottle(_Flood(), start_level=0)
        reqs = t.on_access(acc(0))
        assert all(r.fill_level == FILL_L2 for r in reqs)

    def test_aggressive_levels_keep_l1_fills(self):
        t = FDPThrottle(_Flood(), start_level=4)
        reqs = t.on_access(acc(0))
        assert any(r.fill_level == FILL_L1 for r in reqs)

    def test_name_reflects_inner(self):
        assert FDPThrottle(NextLinePrefetcher()).name == "fdp(next_line)"


class TestFeedbackLoop:
    def _run_epoch(self, t, useful_ratio):
        """Issue one epoch's worth of prefetches with a given outcome."""
        issued = 0
        line = 0
        while issued < FDPThrottle.EPOCH:
            reqs = t.on_access(acc(line))
            for r in reqs:
                if issued * 1.0 / FDPThrottle.EPOCH < useful_ratio:
                    t.on_prefetch_hit(acc(r.line), pf_latency=10)
                else:
                    t.on_evict(r.line, was_useful=False)
                issued += 1
            line += 100

    def test_low_accuracy_backs_off(self):
        t = FDPThrottle(_Flood(), start_level=3)
        self._run_epoch(t, useful_ratio=0.1)
        assert t.aggressiveness < 3

    def test_high_accuracy_holds_or_grows(self):
        t = FDPThrottle(_Flood(), start_level=2)
        self._run_epoch(t, useful_ratio=0.95)
        assert t.aggressiveness >= 2

    def test_level_bounded(self):
        t = FDPThrottle(_Flood(), start_level=0)
        for __ in range(3):
            self._run_epoch(t, useful_ratio=0.0)
        assert t.aggressiveness == 0
        t2 = FDPThrottle(_Flood(), start_level=len(_LEVELS) - 1)
        # All useful but late: pressure upward, stays at max.
        issued = 0
        line = 0
        while issued < FDPThrottle.EPOCH:
            for r in t2.on_access(acc(line)):
                t2.on_prefetch_hit(acc(r.line), pf_latency=0)  # late
                issued += 1
            line += 100
        assert t2.aggressiveness == len(_LEVELS) - 1

    def test_reset(self):
        t = FDPThrottle(_Flood(), start_level=4)
        self._run_epoch(t, useful_ratio=0.0)
        t.reset()
        assert t.aggressiveness == 2
        assert t.level_changes == 0


class TestStorage:
    def test_storage_adds_counters(self):
        inner = NextLinePrefetcher()
        t = FDPThrottle(inner)
        assert t.storage_bits() > inner.storage_bits()
