"""Unit tests for the DRAM model."""

import pytest

from repro.memory.dram import DRAM, DRAMConfig


class TestTiming:
    def test_first_access_is_row_miss(self):
        d = DRAM()
        done = d.read(0, now=0)
        cfg = d.config
        expected_min = cfg.trcd_cycles + cfg.tcas_cycles
        assert done >= expected_min
        assert d.stats.row_misses == 1

    def test_same_row_hits(self):
        d = DRAM()
        d.read(0, 0)
        before = d.stats.row_hits
        d.read(1, 1000)  # same 4 KB row
        assert d.stats.row_hits == before + 1

    def test_row_hit_faster_than_miss(self):
        d = DRAM()
        t_miss = d.read(0, 0) - 0
        t_hit = d.read(1, 10_000) - 10_000
        assert t_hit < t_miss

    def test_row_conflict_slowest(self):
        cfg = DRAMConfig(banks=1)
        d = DRAM(cfg)
        d.read(0, 0)
        lines_per_row = cfg.row_size_bytes // 64
        t_conflict = d.read(lines_per_row, 10_000) - 10_000
        t_hit = d.read(lines_per_row + 1, 20_000) - 20_000
        assert d.stats.row_conflicts >= 1
        assert t_conflict > t_hit

    def test_row_hits_pipeline_at_burst_rate(self):
        """Back-to-back row hits should stream near the bus rate, not
        serialise at CAS latency (the bug class that throttled all
        prefetching in early development)."""
        d = DRAM()
        d.read(0, 0)
        t1 = d.read(1, 500)
        t2 = d.read(2, 500)
        per_line = t2 - t1
        assert per_line <= d.config.transfer_cycles_per_line + 1


class TestBandwidth:
    def test_transfer_cycles_scale_with_mtps(self):
        fast = DRAMConfig(mtps=6400)
        slow = DRAMConfig(mtps=1600)
        assert slow.transfer_cycles_per_line == pytest.approx(
            4 * fast.transfer_cycles_per_line
        )

    def test_bus_serialises_concurrent_reads(self):
        d = DRAM()
        # Saturate: many reads at the same instant to different banks.
        dones = sorted(d.read(i * 64, 0) for i in range(16))
        gaps = [b - a for a, b in zip(dones, dones[1:])]
        assert min(gaps) >= int(d.config.transfer_cycles_per_line) - 1

    def test_slower_dram_longer_completion(self):
        fast = DRAM(DRAMConfig(mtps=6400))
        slow = DRAMConfig(mtps=1600)
        d_slow = DRAM(slow)
        done_fast = max(fast.read(i * 64, 0) for i in range(32))
        done_slow = max(d_slow.read(i * 64, 0) for i in range(32))
        assert done_slow > done_fast


class TestWrites:
    def test_writes_are_buffered(self):
        d = DRAM()
        d.write(0, 0)
        assert d.stats.writes == 1
        assert len(d._pending_writes) == 1

    def test_write_queue_drains_at_capacity(self):
        d = DRAM()
        for i in range(d.config.write_queue):
            d.write(i, 0)
        assert len(d._pending_writes) == 0

    def test_reads_trigger_drain_above_watermark(self):
        d = DRAM()
        watermark = int(d.config.write_queue * d.config.write_watermark)
        for i in range(watermark):
            d.write(i, 0)
        d.read(1000, 0)
        assert len(d._pending_writes) == 0


class TestStats:
    def test_avg_read_latency(self):
        d = DRAM()
        d.read(0, 0)
        assert d.stats.avg_read_latency > 0

    def test_reset_clears_state(self):
        d = DRAM()
        d.read(0, 0)
        d.write(5, 0)
        d.reset()
        assert d.stats.reads == 0
        assert d._banks[0].open_row == -1
        # After reset a fresh read is a row miss again.
        d.read(0, 0)
        assert d.stats.row_misses == 1
