"""Tests for the command-line interface."""

import pytest

from repro.cli import all_trace_names, build_parser, main, resolve_trace
from repro.errors import TraceError


class TestResolveTrace:
    def test_spec_trace(self):
        t = resolve_trace("mcf_s-1554B", 0.1)
        assert t.name == "mcf_s-1554B"

    def test_gap_trace(self):
        t = resolve_trace("bfs-kron", 0.05)
        assert t.name == "bfs-kron"

    def test_cloudsuite_trace(self):
        t = resolve_trace("cassandra", 0.1)
        assert t.name == "cassandra"

    def test_unknown_raises_typed_error(self):
        with pytest.raises(TraceError):
            resolve_trace("not-a-trace", 0.1)

    def test_unknown_trace_exit_code(self, capsys):
        assert main(["trace-info", "--trace", "not-a-trace"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_all_names_resolve(self):
        for name in all_trace_names():
            assert resolve_trace(name, 0.02) is not None


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--trace", "x"])
        assert args.l1d == "berti" and args.l2 == "none"

    def test_suite_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suite", "--suite", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "berti" in out and "mcf_s-1554B" in out

    def test_trace_info(self, capsys):
        assert main(["trace-info", "--trace", "lbm_s-2676B",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "records:" in out

    def test_run(self, capsys):
        assert main(["run", "--trace", "lbm_s-2676B", "--l1d", "berti",
                     "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "accuracy" in out

    def test_run_with_mtps(self, capsys):
        assert main(["run", "--trace", "lbm_s-2676B", "--l1d", "ip_stride",
                     "--scale", "0.05", "--mtps", "1600"]) == 0

    def test_compare(self, capsys):
        assert main(["compare", "--trace", "lbm_s-2676B",
                     "--l1d", "ip_stride,berti", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs ip_stride" in out

    def test_storage(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "2.55" in out
