"""Prefetcher interface shared by Berti and all baselines.

The simulator notifies a prefetcher through ChampSim-style hooks.  L1D
prefetchers observe **virtual** line addresses and the demanding IP; L2
prefetchers observe **physical** line addresses (plus the IP, which the
modified ChampSim forwards).  A hook may return prefetch suggestions; the
engine then handles translation (STLB probe for L1D prefetchers), prefetch
queue capacity, dedup against cache contents and in-flight misses, and
issue.

Fill levels mirror the paper's watermark tiers: ``FILL_L1`` fills the line
into every level down to L1D, ``FILL_L2`` stops at L2, ``FILL_LLC`` stops
at the LLC (Berti disables this tier but the mechanism exists).
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import List, Optional

FILL_L1 = 1
FILL_L2 = 2
FILL_LLC = 3


@dataclass(slots=True)
class PrefetchRequest:
    """A suggestion emitted by a prefetcher hook.

    ``line`` is in the address space the prefetcher trains on (virtual for
    L1D prefetchers, physical for L2 prefetchers).
    """

    line: int
    fill_level: int = FILL_L1
    # Metadata for SPP-style lookahead/filter bookkeeping.
    confidence: float = 1.0


@dataclass(slots=True)
class AccessInfo:
    """Everything a hook may want to know about one cache access."""

    ip: int
    line: int                 # line address in the prefetcher's address space
    hit: bool
    prefetch_hit: bool        # hit on a line brought in by a prefetch
    now: int
    is_write: bool = False
    mshr_occupancy: float = 0.0   # fraction of MSHR entries in flight
    pq_occupancy: float = 0.0


@dataclass(slots=True)
class FillInfo:
    """Notification that a line was installed in the prefetcher's cache."""

    line: int
    now: int
    latency: int              # measured fetch latency (MSHR/PQ timestamps)
    was_prefetch: bool
    ip: int = 0


class Prefetcher(ABC):
    """Base class: all hooks default to no-ops so subclasses override only
    what they need."""

    #: human-readable identifier used by the registry and reports
    name = "none"
    #: "l1d" or "l2" — which cache's events this prefetcher observes
    level = "l1d"
    #: Kernel-protocol opt-in.  A prefetcher that declares
    #: ``kernel_hooks = True`` **in its own class body** promises
    #: allocation-free mirrors of the hooks — ``on_access_kernel(ip,
    #: line, hit, now) -> list[(delta, status)]``, ``on_fill_kernel(line,
    #: now, latency, ip)``, ``on_prefetch_hit_kernel(ip, line, now,
    #: pf_latency)`` — with behaviour bit-identical to the virtual
    #: protocol, and no ``cycle`` override.  The hierarchy checks
    #: ``type(pf).__dict__`` (not inheritance), so any subclass — fault
    #: injectors, the lockstep reference engine — automatically falls
    #: back to the virtual hooks unless it re-declares the flag.
    kernel_hooks = False

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        """Called on every demand access to the cache (hit or miss)."""
        return []

    def on_fill(self, fill: FillInfo) -> List[PrefetchRequest]:
        """Called when a line is installed (demand or prefetch fill)."""
        return []

    def on_prefetch_hit(self, access: AccessInfo, pf_latency: int) -> None:
        """First demand hit to a line brought in by a prefetch.

        ``pf_latency`` is the stored per-line fetch latency (Berti's 12-bit
        field); zero means the measurement overflowed.
        """

    def on_evict(self, line: int, was_useful: bool) -> None:
        """A line tracked by this prefetcher was evicted."""

    def cycle(self, now: int) -> List[PrefetchRequest]:
        """Optional per-access housekeeping hook (degree pacing etc.)."""
        return []

    def storage_bits(self) -> int:
        """Hardware budget of the prefetcher's tables, in bits."""
        return 0

    def storage_kb(self) -> float:
        return self.storage_bits() / 8 / 1024

    def reset(self) -> None:
        """Clear all learned state (between warmup phases of experiments)."""


class NoPrefetcher(Prefetcher):
    """The no-prefetching baseline used to normalise traffic and energy."""

    name = "none"

    def storage_bits(self) -> int:
        return 0
