"""Multi-host worker fleet: remote agents for the campaign daemon.

The fleet extends the single-host scheduler (:mod:`repro.service`)
across machines: ``repro agent`` runs a :class:`~repro.fleet.agent.
FleetAgent` on any host that can reach the daemon, pulling leased jobs
over HTTP with trace-store paths as the interchange format (verified
by ``sha256:`` digest before execution) and streaming results back
under heartbeat-renewed leases.  The daemon side lives in
:mod:`repro.fleet.registry` (per-agent failure domains, lifecycle,
circuit breakers) and :mod:`repro.fleet.manifest` (the durable event
log that records agent deaths, requeues, and degraded-mode windows);
:mod:`repro.fleet.transport` carries every byte — and is where the
chaos harness injects deterministic network faults.
"""

from repro.fleet.agent import FleetAgent
from repro.fleet.manifest import FleetManifest
from repro.fleet.registry import AgentRecord, AgentRegistry
from repro.fleet.transport import FaultPlan, FaultyTransport, HTTPTransport

__all__ = [
    "AgentRecord",
    "AgentRegistry",
    "FaultPlan",
    "FaultyTransport",
    "FleetAgent",
    "FleetManifest",
    "HTTPTransport",
]
