"""Core-side substrate: OoO timing model, TLBs, and the MMU."""

from repro.cpu.core_model import CoreConfig, CoreModel
from repro.cpu.mmu import MMU
from repro.cpu.tlb import TLB

__all__ = ["CoreConfig", "CoreModel", "MMU", "TLB"]
