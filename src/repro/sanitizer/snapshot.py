"""Crash-durable mid-trace snapshots with bit-identical resume.

A snapshot captures the *entire* simulator state at a record boundary —
hierarchy (caches, MSHRs, PQ, MMU, DRAM, prefetchers), core model,
warmup bookkeeping — so an interrupted run can continue from the last
checkpoint and produce a :class:`~repro.simulator.stats.SimResult`
bit-identical to the uninterrupted run.  That works because
:func:`simulate_with_snapshots` replays exactly the engine's record
loop, merely split at checkpoint boundaries: every sub-span performs
the same operations in the same order as ``simulate``'s two spans.

File format (version 2)::

    <JSON header line>\\n<pickle payload>

The header is human-readable metadata plus integrity/identity fields:
``magic``, ``version``, ``index`` (records consumed), trace ``name`` /
``records`` / ``trace_crc`` (CRC-32 of the columnar arrays), prefetcher
names, ``payload_len`` and ``payload_crc`` (CRC-32 of the pickle
bytes), and — new in version 2 — ``header_crc``, a CRC-32 of the
canonical JSON of every *other* header field, so a flipped bit in the
identity fields themselves (trace name, record count, prefetcher names)
is caught instead of silently redirecting a resume.  Checks run in a
fixed order: magic, version, header integrity, payload length, payload
checksum, trace identity, then payload structure (the unpickled state
must be a dict carrying every resume field, and its ``next_index`` must
agree with the header's ``index``).  :func:`load_snapshot` rejects
every failure as a typed :class:`~repro.errors.SnapshotError`, never a
partial resume.

Writes are atomic: payload to a temp file in the target directory,
``flush`` + ``fsync``, then ``os.replace`` — a crash mid-write leaves
either the old snapshot or none, and a torn file is caught by the
checksum on load.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.cpu.core_model import CoreModel
from repro.errors import (
    ConfigError,
    ReproError,
    SimulationError,
    SnapshotError,
    TraceError,
)
from repro.memory.hierarchy import Hierarchy
from repro.prefetchers.base import Prefetcher
from repro.sanitizer.config import SanitizerConfig
from repro.sanitizer.invariants import attach_sanitizer
from repro.simulator.batched import make_batched_runner
from repro.simulator.config import SystemConfig, default_config
from repro.simulator.engine import (
    _collect,
    _Snapshot,
    build_hierarchy,
    validate_engine,
)
from repro.simulator.stats import SimResult
from repro.workloads.trace import Trace

MAGIC = "repro-snap"
VERSION = 2


def _header_crc(header: Dict[str, Any]) -> int:
    """CRC-32 of the canonical JSON of every field except the CRC itself."""
    core = {k: v for k, v in header.items() if k != "header_crc"}
    return zlib.crc32(json.dumps(core, sort_keys=True).encode("ascii"))


def trace_digest(trace: Trace) -> int:
    """CRC-32 over the trace's columnar arrays (identity, not security)."""
    crc = 0
    for column in trace.columns():
        crc = zlib.crc32(column.tobytes(), crc)
    return crc


def snapshot_path(directory: str, index: int) -> str:
    """Canonical checkpoint filename for a record index."""
    return os.path.join(directory, f"snap-{index:08d}.ckpt")


def latest_snapshot(directory: str) -> Optional[str]:
    """Path of the highest-index checkpoint in ``directory``, if any."""
    best = None
    best_index = -1
    try:
        names = os.listdir(directory)
    except OSError:
        return None
    for name in names:
        if not (name.startswith("snap-") and name.endswith(".ckpt")):
            continue
        try:
            index = int(name[5:-5])
        except ValueError:
            continue
        if index > best_index:
            best_index = index
            best = os.path.join(directory, name)
    return best


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".snap-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    # Make the rename itself durable where the platform allows it.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


@dataclass
class SnapshotState:
    """Everything needed to continue a run mid-trace."""

    hierarchy: Hierarchy
    core: CoreModel
    next_index: int
    warmup_end: int
    carryover: Dict[str, int]
    #: (instructions, cycles) at the warmup boundary; None while still
    #: inside warmup.
    start: Optional[Any]


def save_snapshot(
    path: str,
    state: SnapshotState,
    trace: Trace,
) -> str:
    """Write ``state`` to ``path`` atomically; returns the path."""
    payload = pickle.dumps(
        {
            "hierarchy": state.hierarchy,
            "core": state.core,
            "next_index": state.next_index,
            "warmup_end": state.warmup_end,
            "carryover": dict(state.carryover),
            "start": state.start,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = {
        "magic": MAGIC,
        "version": VERSION,
        "index": state.next_index,
        "trace": trace.name,
        "records": len(trace),
        "trace_crc": trace_digest(trace),
        "l1d": state.hierarchy.l1d_prefetcher.name,
        "l2": state.hierarchy.l2_prefetcher.name,
        "payload_len": len(payload),
        "payload_crc": zlib.crc32(payload),
    }
    header["header_crc"] = _header_crc(header)
    data = json.dumps(header, sort_keys=True).encode("ascii") + b"\n" + payload
    _atomic_write(path, data)
    return path


def load_snapshot(path: str, trace: Optional[Trace] = None) -> SnapshotState:
    """Load and verify a snapshot; raises :class:`SnapshotError` on any
    integrity or identity failure (never returns partial state)."""
    if os.path.isdir(path):
        latest = latest_snapshot(path)
        if latest is None:
            raise SnapshotError(f"no snapshots found in {path}")
        path = latest
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    newline = data.find(b"\n")
    if newline < 0:
        raise SnapshotError(f"{path}: truncated snapshot (no header)")
    try:
        header = json.loads(data[:newline])
    except ValueError as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header") from exc
    if not isinstance(header, dict) or header.get("magic") != MAGIC:
        raise SnapshotError(f"{path}: not a repro snapshot")
    if header.get("version") != VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version "
            f"{header.get('version')!r} (this build reads {VERSION})"
        )
    if _header_crc(header) != header.get("header_crc"):
        raise SnapshotError(
            f"{path}: header checksum mismatch — an identity or integrity "
            f"field was altered after the snapshot was written"
        )
    payload = data[newline + 1:]
    if len(payload) != header.get("payload_len"):
        raise SnapshotError(
            f"{path}: truncated snapshot payload "
            f"({len(payload)} bytes, header says {header.get('payload_len')})"
        )
    if zlib.crc32(payload) != header.get("payload_crc"):
        raise SnapshotError(
            f"{path}: payload checksum mismatch — snapshot is corrupt"
        )
    if trace is not None:
        if (header.get("trace") != trace.name
                or header.get("records") != len(trace)
                or header.get("trace_crc") != trace_digest(trace)):
            raise SnapshotError(
                f"{path}: snapshot was taken from trace "
                f"{header.get('trace')!r} ({header.get('records')} records), "
                f"not from {trace.name!r} ({len(trace)} records)"
            )
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise SnapshotError(
            f"{path}: cannot unpickle snapshot payload: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(state, dict):
        raise SnapshotError(
            f"{path}: snapshot payload is a {type(state).__name__}, "
            f"not the expected state dict"
        )
    required = ("hierarchy", "core", "next_index", "warmup_end",
                "carryover", "start")
    missing = [k for k in required if k not in state]
    if missing:
        raise SnapshotError(
            f"{path}: snapshot payload is missing resume fields "
            f"{missing} (has {sorted(state)})"
        )
    if state["next_index"] != header.get("index"):
        raise SnapshotError(
            f"{path}: header says index {header.get('index')} but the "
            f"payload resumes at {state['next_index']} — refusing the "
            f"inconsistent snapshot"
        )
    if not isinstance(state["carryover"], dict):
        raise SnapshotError(
            f"{path}: snapshot carryover is a "
            f"{type(state['carryover']).__name__}, not a dict"
        )
    return SnapshotState(
        hierarchy=state["hierarchy"],
        core=state["core"],
        next_index=state["next_index"],
        warmup_end=state["warmup_end"],
        carryover=state["carryover"],
        start=state["start"],
    )


def simulate_with_snapshots(
    trace: Trace,
    l1d_prefetcher: Optional[Prefetcher] = None,
    l2_prefetcher: Optional[Prefetcher] = None,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
    prewarm_tlb: bool = True,
    post_build=None,
    snapshot_every: int = 0,
    snapshot_dir: Optional[str] = None,
    resume_from: Optional[str] = None,
    sanitize: Optional[SanitizerConfig] = None,
    engine: str = "classic",
    chunk_size: int = 0,
    native: str = "auto",
) -> SimResult:
    """:func:`~repro.simulator.engine.simulate`, split at checkpoints.

    With ``snapshot_every=0`` and no ``resume_from`` this runs the same
    record loop as ``simulate`` (same hoisted callbacks, same span
    structure) and returns the identical result.  ``snapshot_every=N``
    writes ``snap-<index>.ckpt`` into ``snapshot_dir`` every N records;
    ``resume_from`` (a checkpoint file, or a directory whose newest
    checkpoint is used) continues an interrupted run.  ``sanitize``
    attaches the SimSan invariant checker on top.

    ``engine``/``chunk_size`` select the inner loop exactly as in
    ``simulate``.  Snapshots are taken at record boundaries the batched
    engine flushes at, so checkpoint files are byte-identical across
    engines and a run snapshotted under one engine resumes under the
    other.  (With ``sanitize`` the batched engine demotes itself to the
    classic per-record loop — the invariant checker wraps the dispatch
    the fused loop bypasses.)
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}",
            trace=trace.name,
            field="warmup_fraction",
        )
    if snapshot_every < 0:
        raise ConfigError(
            f"snapshot_every must be >= 0, got {snapshot_every}",
            field="snapshot_every",
        )
    if snapshot_every and not snapshot_dir:
        raise ConfigError(
            "snapshot_every requires a snapshot_dir", field="snapshot_dir"
        )
    if snapshot_every:
        os.makedirs(snapshot_dir, exist_ok=True)
    validate_engine(engine, chunk_size, trace.name, native)
    if len(trace) == 0:
        # Same typed error as the engine: an empty trace used to slip
        # past the n > 0 warmup guard and return all-zero statistics.
        raise TraceError(
            f"trace {trace.name!r} has no records",
            trace=trace.name,
        )
    config = config or default_config()
    n = len(trace)

    if resume_from is not None:
        state = load_snapshot(resume_from, trace=trace)
        hierarchy = state.hierarchy
        core = state.core
        next_index = state.next_index
        warmup_end = state.warmup_end
        carryover = state.carryover
        start = state.start
        if l1d_prefetcher is not None and (
            l1d_prefetcher.name != hierarchy.l1d_prefetcher.name
        ):
            raise SnapshotError(
                f"snapshot used L1D prefetcher "
                f"{hierarchy.l1d_prefetcher.name!r}, "
                f"run requests {l1d_prefetcher.name!r}"
            )
        if l2_prefetcher is not None and (
            l2_prefetcher.name != hierarchy.l2_prefetcher.name
        ):
            raise SnapshotError(
                f"snapshot used L2 prefetcher "
                f"{hierarchy.l2_prefetcher.name!r}, "
                f"run requests {l2_prefetcher.name!r}"
            )
        if int(n * warmup_fraction) != warmup_end:
            raise SnapshotError(
                f"snapshot's warmup boundary ({warmup_end}) does not match "
                f"warmup_fraction={warmup_fraction} ({int(n * warmup_fraction)})"
            )
    else:
        hierarchy = build_hierarchy(config, l1d_prefetcher, l2_prefetcher)
        if post_build is not None:
            post_build(hierarchy)
        core = CoreModel(config.core)
        if prewarm_tlb:
            hierarchy.mmu.prewarm(trace.line_addresses())
        next_index = 0
        warmup_end = int(n * warmup_fraction)
        carryover = {"l1d": 0, "l2": 0}
        start = None
    if warmup_end >= n:
        raise ConfigError(
            "warmup_fraction leaves no measured records",
            trace=trace.name,
            field="warmup_fraction",
        )

    if sanitize is not None:
        sanitizer = attach_sanitizer(
            hierarchy, sanitize, trace=trace.name, start_index=next_index
        )
        # Keep the check cadence aligned with the uninterrupted run
        # (cosmetic: checks are read-only either way).
        sanitizer._countdown = (
            sanitize.check_every - next_index % sanitize.check_every
        )

    if engine == "batched":
        # The runner revalidates eligibility per span, so the sanitizer
        # wrapper installed above demotes it to the classic loop.
        _run_span = make_batched_runner(trace, hierarchy, core, chunk_size)
    elif engine == "native" and native != "off":
        # Same per-span revalidation; with ``sanitize`` the wrapped
        # demand hook demotes it all the way to the classic loop.
        from repro.native.build import kernel_available
        from repro.native.runner import make_native_runner

        if native == "force":
            fn, diag = kernel_available()
            if fn is None:
                raise ConfigError(
                    f"engine='native' with native='force' but the "
                    f"kernel is unavailable: {diag}",
                    trace=trace.name,
                    field="engine",
                )
        _run_span = make_native_runner(trace, hierarchy, core, chunk_size)
    elif engine == "native":  # native == "off": pinned batched fallback
        _run_span = make_batched_runner(trace, hierarchy, core, chunk_size)
    else:
        demand = hierarchy.demand_access
        issue = core.issue_memory
        advance = core.advance_nonmem
        ips, addrs, writes, gaps, deps = trace.columns()
        l1d_stats = hierarchy.l1d.stats

        def _run_span(lo: int, hi: int) -> None:
            # Identical inner loop to the engine's _run_span: sub-spans
            # of the same zip iteration are bit-identical to one long
            # span.
            base = l1d_stats.demand_accesses
            try:
                for ip, vaddr, is_write, gap, dep in zip(
                    ips[lo:hi], addrs[lo:hi], writes[lo:hi], gaps[lo:hi],
                    deps[lo:hi],
                ):
                    if gap:
                        advance(gap)
                    issue(demand, ip, vaddr, is_write, dep)
            except ReproError:
                raise
            except Exception as exc:
                done = l1d_stats.demand_accesses - base
                raise SimulationError(
                    f"simulation crashed at record ~{lo + done} "
                    f"({done} accesses into span [{lo}, {hi})): "
                    f"{type(exc).__name__}: {exc}",
                    trace=trace.name,
                    prefetcher=hierarchy.l1d_prefetcher.name,
                    field="record_index",
                ) from exc

    def _boundaries():
        """Record indexes where the loop must pause, in order."""
        marks = set()
        if warmup_end > next_index:
            marks.add(warmup_end)
        if snapshot_every:
            first = (next_index // snapshot_every + 1) * snapshot_every
            marks.update(range(first, n, snapshot_every))
        marks.add(n)
        return sorted(marks)

    i = next_index
    if i == 0 and warmup_end == 0:
        start = _Snapshot(0, 0.0)
    for mark in _boundaries():
        _run_span(i, mark)
        i = mark
        if i == warmup_end and warmup_end > 0:
            hierarchy.reset_stats()
            carryover = hierarchy.prefetched_line_counts()
            snap_i, snap_c = core.snapshot()
            start = _Snapshot(snap_i, snap_c)
        if snapshot_every and i % snapshot_every == 0 and 0 < i < n:
            save_snapshot(
                snapshot_path(snapshot_dir, i),
                SnapshotState(
                    hierarchy=hierarchy,
                    core=core,
                    next_index=i,
                    warmup_end=warmup_end,
                    carryover=carryover,
                    start=start,
                ),
                trace,
            )

    if start is None:  # defensive: every path above sets it
        start = _Snapshot(0, 0.0)
    res = _collect(trace, hierarchy, core, start)
    res.extra["pf_carryover_l1d"] = float(carryover["l1d"])
    res.extra["pf_carryover_l2"] = float(carryover["l2"])
    return res
