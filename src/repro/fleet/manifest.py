"""Durable fleet event log: who joined, who died, what got requeued.

The campaign daemon appends one JSON record per fleet-level event to
``state_dir/fleet-manifest.json`` — agent registration, death, rejoin,
lease requeues attributed to a lost agent, refused (digest-mismatch)
jobs, and the degraded-mode windows during which zero live agents left
the daemon running on its local pool alone.  The chaos scenarios and
the CI ``fleet-smoke`` job read it back to prove that a kill or a
partition was *observed and survived*, not silently absorbed.

The file is a single JSON document (events list + current degradation
state), rewritten atomically on every append — fleet events are rare
(per agent, not per job), so the rewrite cost is irrelevant and readers
always see a complete, parseable document.

Durability matches the service WAL's: the rewrite is temp + ``fsync`` +
``os.replace`` + a directory fsync, and reload *heals* a torn tail
instead of discarding history — a manifest written by an older,
non-atomic writer (or mangled by a dying filesystem) is recovered to
its longest structurally complete prefix via
:func:`repro.durability.tolerant_read_json`, and the healing itself is
recorded as a ``manifest-healed`` event so the loss is observable, not
silent.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.durability import atomic_write_json, tolerant_read_json

__all__ = ["FleetManifest"]


class FleetManifest:
    """Append-only fleet event log with atomic whole-file rewrites."""

    def __init__(self, path, clock=None) -> None:
        import time

        self.path = Path(path)
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._degraded_since: Optional[float] = None
        self._degraded_windows: List[Dict[str, float]] = []
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        doc, healed = tolerant_read_json(self.path)
        if not isinstance(doc, dict):
            # Beyond recovery (cut inside the opening brace, or not a
            # manifest at all): start fresh, but say so on the first
            # flush rather than pretending the history never existed.
            self._events = [{"event": "manifest-unrecoverable",
                            "at": self._clock(),
                             "path": str(self.path)}]
            return
        self._events = [e for e in doc.get("events", [])
                        if isinstance(e, dict) and "event" in e]
        self._degraded_windows = list(doc.get("degraded_windows", []))
        if healed:
            # The torn tail was cut back to the last complete event —
            # record the loss as an event of its own.
            self._events.append({"event": "manifest-healed",
                                 "at": self._clock(),
                                 "events_recovered": len(self._events)})
        # A daemon that died while degraded leaves an open window; close
        # it at zero duration on reload rather than carrying a stale
        # monotonic timestamp across process lifetimes.
        if doc.get("degraded_since") is not None:
            self._degraded_windows.append({"start": 0.0, "end": 0.0,
                                           "recovered": False})

    def _flush_locked(self) -> None:
        doc = {
            "events": self._events,
            "degraded_since": self._degraded_since,
            "degraded_windows": self._degraded_windows,
        }
        # Temp + fsync + rename + directory fsync: a SIGKILL at any
        # byte offset leaves the previous manifest or the new one.
        atomic_write_json(self.path, doc)

    # ------------------------------------------------------------------

    def record(self, event: str, **detail: Any) -> None:
        """Append one fleet event (e.g. ``agent-dead``, ``agent-requeue``)."""
        with self._lock:
            self._events.append({"event": event, "at": self._clock(),
                                 **detail})
            self._flush_locked()

    def enter_degraded(self, reason: str) -> None:
        """Mark the start of a zero-live-agents window (idempotent)."""
        with self._lock:
            if self._degraded_since is not None:
                return
            self._degraded_since = self._clock()
            self._events.append({"event": "degraded-enter",
                                 "at": self._degraded_since,
                                 "reason": reason})
            self._flush_locked()

    def exit_degraded(self) -> Optional[float]:
        """Close the current degraded window; returns its duration."""
        with self._lock:
            if self._degraded_since is None:
                return None
            now = self._clock()
            duration = now - self._degraded_since
            self._degraded_windows.append({
                "start": self._degraded_since, "end": now,
                "recovered": True,
            })
            self._events.append({"event": "degraded-exit", "at": now,
                                 "duration": duration})
            self._degraded_since = None
            self._flush_locked()
            return duration

    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded_since is not None

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            if kind is None:
                return list(self._events)
            return [e for e in self._events if e["event"] == kind]

    def degraded_windows(self) -> List[Dict[str, float]]:
        with self._lock:
            return list(self._degraded_windows)
