"""System configuration mirroring Table II of the paper.

The defaults reproduce the baseline system: a Sunny Cove-like 4 GHz core,
48 KB L1D with a 24-entry IP-stride prefetcher as the *baseline* L1D
prefetcher, 512 KB SRRIP L2, 2 MB/core DRRIP LLC, one DDR5-6400 channel
per four cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpu.core_model import CoreConfig
from repro.errors import ConfigError
from repro.memory.dram import DRAMConfig


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass
class CacheConfig:
    size_bytes: int
    ways: int
    latency: int
    replacement: str = "lru"
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ConfigError(
                f"cache ways must be >= 1, got {self.ways}", field="ways"
            )
        if self.latency < 1:
            raise ConfigError(
                f"cache latency must be >= 1, got {self.latency}",
                field="latency",
            )
        if self.size_bytes <= 0 or self.size_bytes % (
            self.ways * self.line_size
        ):
            raise ConfigError(
                f"cache size {self.size_bytes} is not a multiple of "
                f"ways*line_size ({self.ways}*{self.line_size})",
                field="size_bytes",
            )
        sets = self.size_bytes // (self.ways * self.line_size)
        if not _is_pow2(sets):
            raise ConfigError(
                f"cache set count must be a power of two, got {sets} "
                f"(size {self.size_bytes}, ways {self.ways})",
                field="size_bytes",
            )


@dataclass
class SystemConfig:
    """All Table II knobs in one place."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(48 * 1024, 12, 5, "lru")
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, 10, "srrip")
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 16, 20, "drrip")
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    l1d_mshr: int = 16
    l2_mshr: int = 32
    pq_size: int = 16

    dtlb_entries: int = 64
    dtlb_ways: int = 4
    dtlb_latency: int = 1
    stlb_entries: int = 2048
    stlb_ways: int = 16
    stlb_latency: int = 8
    page_walk_latency: int = 60

    num_cores: int = 1
    llc_per_core: bool = True  # 2 MB/core: multi-core scales LLC size

    def __post_init__(self) -> None:
        for name in ("l1d_mshr", "l2_mshr"):
            if getattr(self, name) < 1:
                raise ConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}",
                    field=name,
                )
        if self.pq_size < 0:
            raise ConfigError(
                f"pq_size must be >= 0, got {self.pq_size}", field="pq_size"
            )
        if self.num_cores < 1:
            raise ConfigError(
                f"num_cores must be >= 1, got {self.num_cores}",
                field="num_cores",
            )
        for prefix in ("dtlb", "stlb"):
            entries = getattr(self, f"{prefix}_entries")
            ways = getattr(self, f"{prefix}_ways")
            if ways < 1:
                raise ConfigError(
                    f"{prefix}_ways must be >= 1, got {ways}",
                    field=f"{prefix}_ways",
                )
            if entries % ways or not _is_pow2(entries // ways):
                raise ConfigError(
                    f"{prefix} set count must be a power of two, got "
                    f"{entries} entries / {ways} ways",
                    field=f"{prefix}_entries",
                )

    def with_dram_mtps(self, mtps: int) -> "SystemConfig":
        """A copy with a different DRAM transfer rate (Fig. 16/17)."""
        return replace(self, dram=replace(self.dram, mtps=mtps))

    def scaled_llc_size(self) -> int:
        if self.llc_per_core:
            return self.llc.size_bytes * self.num_cores
        return self.llc.size_bytes


def default_config() -> SystemConfig:
    """The paper's baseline single-core configuration."""
    return SystemConfig()
