"""Bit-identity and demotion guards for the batched columnar engine.

The batched engine (``simulate(..., engine="batched")``) fuses the
per-record virtual-dispatch chain into one chunked loop over the trace
columns.  Its whole contract is *bit-identity*: every counter, every
structural state, every snapshot byte must match the classic engine.
These tests pin that contract at the edges where it is easiest to break
— chunk boundaries interacting with warmup/snapshot/progress splits,
demotion guards for instrumented or subclassed components, and the
batch-hook protocol (delivery, purity, fill-twin equivalence).
"""

import pickle

import pytest

from repro.core.berti import BertiPrefetcher
from repro.errors import ConfigError, TraceError
from repro.prefetchers.registry import make_prefetcher
from repro.sanitizer.lockstep import _state_digest, quick_trace
from repro.sanitizer.snapshot import simulate_with_snapshots, snapshot_path
from repro.simulator.batched import DEFAULT_CHUNK_SIZE, batch_mode
from repro.simulator.engine import build_hierarchy, simulate
from repro.simulator.multicore import simulate_multicore
from repro.workloads.trace import Trace

RECORDS = 1200  # warmup_end = 240: inside the first default-size chunk


@pytest.fixture(scope="module")
def trace():
    return quick_trace(RECORDS, "batched_trace")


def run(trace, l1d, engine, chunk_size=0, **kw):
    """simulate() capturing the hierarchy, for state-level comparison."""
    cap = {}
    res = simulate(
        trace, l1d_prefetcher=make_prefetcher(l1d),
        post_build=cap.setdefault("h", None) or cap.update
        if False else (lambda h: cap.update(h=h)),
        engine=engine, chunk_size=chunk_size, **kw,
    )
    return res, cap["h"]


class TestBitIdentity:
    """Final stats, structural digest, and full pickled state agree."""

    @pytest.mark.parametrize(
        "l1d", ["none", "berti", "berti_page", "ip_stride"]
    )
    def test_engines_identical(self, trace, l1d):
        rc, hc = run(trace, l1d, "classic")
        rb, hb = run(trace, l1d, "batched")
        assert rb.to_dict() == rc.to_dict()
        assert _state_digest(hb) == _state_digest(hc)
        assert pickle.dumps(hb) == pickle.dumps(hc)

    @pytest.mark.parametrize("chunk_size", [1, 7, 333, 10**9])
    def test_chunk_size_invariant(self, trace, chunk_size):
        rc, hc = run(trace, "berti", "classic")
        rb, hb = run(trace, "berti", "batched", chunk_size=chunk_size)
        assert rb.to_dict() == rc.to_dict()
        assert _state_digest(hb) == _state_digest(hc)


class TestChunkBoundaryEdges:
    """The splits other subsystems impose must not disturb chunking."""

    def test_warmup_boundary_mid_chunk(self, trace):
        # warmup_end = 240 cuts the first 1024-record chunk in two spans.
        rc, _ = run(trace, "berti", "classic")
        rb, _ = run(trace, "berti", "batched",
                    chunk_size=DEFAULT_CHUNK_SIZE)
        assert rb.to_dict() == rc.to_dict()

    def test_trace_shorter_than_one_chunk(self):
        short = quick_trace(50, "short_trace")
        rc, hc = run(short, "berti", "classic")
        rb, hb = run(short, "berti", "batched", chunk_size=1024)
        assert rb.to_dict() == rc.to_dict()
        assert _state_digest(hb) == _state_digest(hc)

    def test_progress_every_not_divisible_by_chunk(self, trace):
        pings = {"classic": [], "batched": []}
        results = {}
        for engine in ("classic", "batched"):
            results[engine] = simulate(
                trace, l1d_prefetcher=make_prefetcher("berti"),
                progress=pings[engine].append, progress_every=7,
                engine=engine, chunk_size=333,
            ).to_dict()
        assert results["batched"] == results["classic"]
        assert pings["batched"] == pings["classic"]

    @pytest.mark.parametrize("every", [333, 1024])  # off / on chunk edge
    def test_snapshot_files_byte_identical_across_engines(
        self, trace, tmp_path, every
    ):
        paths = {}
        for engine in ("classic", "batched"):
            d = tmp_path / engine
            d.mkdir()
            simulate_with_snapshots(
                trace, l1d_prefetcher=make_prefetcher("berti"),
                snapshot_every=every, snapshot_dir=str(d),
                engine=engine, chunk_size=1024,
            )
            paths[engine] = sorted(p.name for p in d.iterdir())
        assert paths["batched"] == paths["classic"] != []
        for name in paths["classic"]:
            classic = (tmp_path / "classic" / name).read_bytes()
            batched = (tmp_path / "batched" / name).read_bytes()
            assert batched == classic, f"snapshot {name} differs"

    @pytest.mark.parametrize("index", [333, 1024])  # off / on chunk edge
    def test_resume_across_engines(self, trace, tmp_path, index):
        baseline = simulate(
            trace, l1d_prefetcher=make_prefetcher("berti")
        ).to_dict()
        d = tmp_path / "ckpts"
        d.mkdir()
        simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            snapshot_every=index, snapshot_dir=str(d), engine="classic",
        )
        resumed = simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            resume_from=snapshot_path(str(d), index),
            engine="batched", chunk_size=1024,
        )
        assert resumed.to_dict() == baseline


class TestValidationAndEmptyTrace:
    def test_unknown_engine_rejected(self, trace):
        with pytest.raises(ConfigError) as exc:
            simulate(trace, engine="vectorized")
        assert exc.value.context()["field"] == "engine"

    def test_negative_chunk_size_rejected(self, trace):
        with pytest.raises(ConfigError) as exc:
            simulate(trace, engine="batched", chunk_size=-1)
        assert exc.value.context()["field"] == "chunk_size"

    def test_unknown_engine_rejected_in_snapshots(self, trace):
        with pytest.raises(ConfigError):
            simulate_with_snapshots(trace, engine="vectorized")

    def test_unknown_engine_rejected_in_multicore(self, trace):
        with pytest.raises(ConfigError):
            simulate_multicore([trace], engine="vectorized")

    @pytest.mark.parametrize("engine", ["classic", "batched"])
    def test_empty_trace_raises_trace_error(self, engine):
        empty = Trace("empty")
        with pytest.raises(TraceError):
            simulate(empty, engine=engine)

    def test_empty_trace_raises_in_snapshot_runner(self):
        empty = Trace("empty")
        with pytest.raises(TraceError):
            simulate_with_snapshots(empty)


class TestDemotionGuards:
    """Anything non-stock on the hot path must fall back to dispatch."""

    def make_parts(self, trace, l1d="berti"):
        from repro.cpu.core_model import CoreModel
        from repro.simulator.config import default_config

        cfg = default_config()
        h = build_hierarchy(cfg, make_prefetcher(l1d), None)
        return h, CoreModel(cfg.core)

    def test_stock_berti_runs_kernel_mode(self, trace):
        h, core = self.make_parts(trace)
        assert batch_mode(h, core) == "kernel"

    def test_stock_berti_page_runs_kernel_mode(self, trace):
        h, core = self.make_parts(trace, "berti_page")
        assert batch_mode(h, core) == "kernel"

    def test_no_prefetcher_runs_plain_mode(self, trace):
        h, core = self.make_parts(trace, "none")
        assert batch_mode(h, core) == "plain"

    def test_wrapped_demand_access_demotes(self, trace):
        h, core = self.make_parts(trace)
        inner = h.demand_access
        h.demand_access = (
            lambda ip, vaddr, now, is_write=False:
            inner(ip, vaddr, now, is_write)
        )
        assert batch_mode(h, core) == ""

    def test_reference_hierarchy_demotes(self, trace):
        from repro.sanitizer.reference import to_reference

        h, core = self.make_parts(trace)
        to_reference(h)
        assert batch_mode(h, core) == ""

    def test_l2_prefetcher_demotes(self, trace):
        from repro.cpu.core_model import CoreModel
        from repro.simulator.config import default_config

        cfg = default_config()
        h = build_hierarchy(
            cfg, make_prefetcher("berti"), make_prefetcher("spp")
        )
        assert batch_mode(h, CoreModel(cfg.core)) == ""

    def test_berti_subclass_without_redeclared_hooks_demotes(self, trace):
        class SilentSubclass(BertiPrefetcher):
            name = "berti_sub"

        from repro.cpu.core_model import CoreModel
        from repro.simulator.config import default_config

        cfg = default_config()
        h = build_hierarchy(cfg, SilentSubclass(), None)
        assert batch_mode(h, CoreModel(cfg.core)) == ""

    def test_demoted_subclass_still_matches_classic(self, trace):
        # A subclass that demotes must still produce identical results
        # through the batched entry point (the demoted per-record path).
        class SilentSubclass(BertiPrefetcher):
            name = "berti"  # same registry name → same SimResult labels

        classic = simulate(
            trace, l1d_prefetcher=SilentSubclass(), engine="classic"
        )
        batched = simulate(
            trace, l1d_prefetcher=SilentSubclass(), engine="batched"
        )
        assert batched.to_dict() == classic.to_dict()

    def test_sanitized_snapshot_run_demotes_but_matches(self, trace):
        from repro.sanitizer import SanitizerConfig

        plain = simulate(
            trace, l1d_prefetcher=make_prefetcher("berti")
        ).to_dict()
        sanitized = simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            sanitize=SanitizerConfig(check_every=64),
            engine="batched",
        ).to_dict()
        assert sanitized == plain


class ObservingBerti(BertiPrefetcher):
    """Re-declares the batch opt-ins and records what the engine sends."""

    name = "berti"
    kernel_hooks = True
    kernel_batch_hooks = True
    kernel_batch_key = "ip"

    def __init__(self):
        super().__init__()
        self.batches = []

    def on_access_batch(self, triples):
        self.batches.append(list(triples))


class MutatingBerti(ObservingBerti):
    """Violates the purity contract: trains from the batch stream too."""

    # Opt-ins are read from type(pf).__dict__, so each subclass must
    # re-declare them to stay on the batched path.
    kernel_hooks = True
    kernel_batch_hooks = True
    kernel_batch_key = "ip"

    def on_access_batch(self, triples):
        super().on_access_batch(triples)
        for ip, line, cycle in triples:
            # Shifted line: plants spurious delta candidates (an exact
            # duplicate would be a no-op — delta 0 is never considered).
            self.history.insert(ip, line + 7, cycle)


class TestBatchHooks:
    def test_on_access_batch_is_delivered(self, trace):
        pf = ObservingBerti()
        simulate(trace, l1d_prefetcher=pf, engine="batched")
        assert pf.batches, "engine never delivered a batch"
        total = sum(len(b) for b in pf.batches)
        assert total > 0
        for batch in pf.batches:
            for ip, line, cycle in batch:
                assert line >= 0 and cycle >= 0

    def test_batch_stream_is_chunk_size_invariant(self, trace):
        streams = []
        for chunk_size in (64, 1024):
            pf = ObservingBerti()
            simulate(trace, l1d_prefetcher=pf, engine="batched",
                     chunk_size=chunk_size)
            streams.append([t for b in pf.batches for t in b])
        assert streams[0] == streams[1]

    def test_pure_observer_preserves_bit_identity(self, trace):
        classic = simulate(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            engine="classic",
        ).to_dict()
        observed = simulate(
            trace, l1d_prefetcher=ObservingBerti(), engine="batched"
        ).to_dict()
        assert observed == classic

    def test_mutating_hook_actually_changes_the_run(self, trace):
        # Proves the hook really executes inside the training loop: a
        # contract-violating (mutating) observer must diverge from the
        # classic run, which never calls batch hooks.
        classic = simulate(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            engine="classic",
        ).to_dict()
        mutated = simulate(
            trace, l1d_prefetcher=MutatingBerti(), engine="batched"
        ).to_dict()
        assert mutated != classic

    def test_on_fill_batch_equals_per_access_kernel(self):
        fills = [
            (0x100 + i * 3, 100 + 17 * i, 20 + (i % 5), 0x40 + (i % 3))
            for i in range(64)
        ]
        one, two = BertiPrefetcher(), BertiPrefetcher()
        for line, now, latency, ip in fills:
            one.history.insert(ip, line - 1, now - 30)
            two.history.insert(ip, line - 1, now - 30)
        for line, now, latency, ip in fills:
            one.on_fill_kernel(line, now, latency, ip)
        two.on_fill_batch(fills)
        assert pickle.dumps(one.deltas) == pickle.dumps(two.deltas)
        assert pickle.dumps(one.history) == pickle.dumps(two.history)


class TestLockstepEngines:
    def test_all_quick_prefetchers_agree(self, trace):
        from repro.sanitizer import lockstep_engines

        for l1d in ("none", "berti", "berti_page", "ip_stride"):
            report = lockstep_engines(trace, l1d=l1d)
            assert report.ok, report.describe()
            assert report.kind == "engines"
            assert "batched and classic" in report.describe()

    def test_small_chunk_runs_per_record(self, trace):
        from repro.sanitizer import lockstep_engines

        report = lockstep_engines(trace, l1d="berti", chunk_size=1)
        assert report.ok, report.describe()
