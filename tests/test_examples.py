"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones are executed
end-to-end so the documented quickstart path cannot rot.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


class TestCompile:
    @pytest.mark.parametrize(
        "script",
        sorted(p.name for p in EXAMPLES.glob("*.py")),
    )
    def test_compiles(self, script):
        py_compile.compile(str(EXAMPLES / script), doraise=True)

    def test_at_least_five_examples(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 5


class TestRun:
    def _run(self, script, timeout=120):
        return subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True,
            text=True,
            timeout=timeout,
        )

    def test_inspect_berti_runs(self):
        proc = self._run("inspect_berti.py")
        assert proc.returncode == 0, proc.stderr
        assert "l1d_pref" in proc.stdout
        # The paper's lbm deltas +3/+6 must surface.
        assert "+3" in proc.stdout or "(3," in proc.stdout

    def test_quickstart_runs(self):
        proc = self._run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "speedup over IP-stride" in proc.stdout
        assert "2.55 KB" in proc.stdout
