"""Fault-isolated experiment executor.

Runs a batch of jobs either inline (``workers=0``) or across a
``concurrent.futures.ProcessPoolExecutor`` (``workers >= 1``), with:

* **fault isolation** — an exception (even a hard worker death) fails
  one job, not the campaign;
* **per-job wall-clock timeouts** — a hung job is recorded as a
  :class:`~repro.errors.JobTimeout` and its worker process is killed;
* **bounded retry with exponential backoff** — transient failures
  (``SimulationError``, lost workers, optionally timeouts) are retried
  up to ``retries`` extra attempts; trace/config errors never are;
* **checkpoint journaling** — every outcome is appended to a JSONL
  journal the moment it is known, and ``resume=True`` replays completed
  jobs instead of re-running them.

Scheduling detail: at most ``workers`` jobs are ever in flight, so a
submitted future starts executing immediately and its wall-clock
deadline can be measured from submission.  When a job times out or a
worker dies, the pool is rebuilt (hung processes are killed) and the
unaffected in-flight jobs are resubmitted — their results are
deterministic, so a resubmission cannot change the campaign's output.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, JobTimeout
from repro.runner import worker
from repro.runner.jobs import (
    CompletedRun,
    FailedRun,
    RunOutcome,
    SuiteResult,
    failed_run_from,
)
from repro.runner.journal import Journal


@dataclass
class RunnerConfig:
    """All resilience knobs in one place."""

    workers: int = 0                 # 0 = inline (no subprocess)
    timeout: Optional[float] = None  # per-job wall-clock seconds (pool mode)
    retries: int = 1                 # extra attempts for transient failures
    retry_timeouts: bool = False     # a hang usually hangs again
    backoff_base: float = 0.25      # seconds; doubles per attempt
    backoff_factor: float = 2.0
    journal_path: Optional[Union[str, Path]] = None
    resume: bool = False
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigError(
                f"workers must be >= 0, got {self.workers}", field="workers"
            )
        if self.retries < 0:
            raise ConfigError(
                f"retries must be >= 0, got {self.retries}", field="retries"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be positive, got {self.timeout}",
                field="timeout",
            )
        if self.resume and not self.journal_path:
            raise ConfigError(
                "resume=True requires a journal_path", field="resume"
            )


class ExperimentRunner:
    """Executes jobs with isolation, retry, timeout, and checkpointing.

    ``run_fn(job, attempt)`` produces a job's result; the default is
    :func:`repro.runner.worker.run_job` (jobs are then
    :class:`~repro.runner.jobs.JobSpec`).  In pool mode both the jobs
    and ``run_fn`` must be picklable; inline mode has no such
    constraint (``analysis.sweep`` passes closures).
    """

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        run_fn: Callable = worker.run_job,
    ) -> None:
        self.config = config or RunnerConfig()
        self._run_fn = run_fn
        self._journal = (
            Journal(self.config.journal_path)
            if self.config.journal_path else None
        )

    # ------------------------------------------------------------------

    def run(
        self, jobs: Sequence, run_fn: Optional[Callable] = None
    ) -> SuiteResult:
        """Run every job; never raises for individual job failures.

        ``run_fn`` overrides the constructor's job function for this
        batch (``analysis.sweep`` passes a thunk-caller for its
        :class:`~repro.runner.jobs.CallableJob` jobs).
        """
        if run_fn is not None:
            previous, self._run_fn = self._run_fn, run_fn
            try:
                return self.run(jobs)
            finally:
                self._run_fn = previous
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            dup = next(k for k in keys if keys.count(k) > 1)
            raise ConfigError(
                f"duplicate job key {dup!r}; every job needs a unique key",
                field="jobs",
            )

        outcomes: Dict[str, RunOutcome] = {}
        pending: List = list(jobs)

        if self._journal is not None and self.config.resume:
            replayed = self._replay_journal(pending, outcomes)
            pending = [job for job in pending if job.key not in outcomes]
            if self.config.verbose and replayed:
                print(
                    f"[runner] resumed {replayed} completed jobs from "
                    f"{self._journal.path}", file=sys.stderr,
                )

        if pending:
            if self.config.workers == 0:
                self._run_inline(pending, outcomes)
            else:
                self._run_pool(pending, outcomes)

        return SuiteResult(outcomes=[outcomes[k] for k in keys])

    # ------------------------------------------------------------------

    def _replay_journal(self, jobs: Sequence, outcomes: Dict) -> int:
        records = self._journal.load()
        replayed = 0
        for job in jobs:
            rec = records.get(job.key)
            if rec and rec.get("status") == "ok":
                done = Journal.decode_completed(rec)
                if done is not None:
                    outcomes[job.key] = done
                    replayed += 1
        return replayed

    def _record(self, outcomes: Dict, outcome: RunOutcome) -> None:
        outcomes[outcome.key] = outcome
        if self._journal is not None:
            self._journal.append(outcome)
        if self.config.verbose:
            if outcome.ok:
                print(f"[runner] ok     {outcome.key} "
                      f"({outcome.elapsed:.1f}s)", file=sys.stderr)
            else:
                print(f"[runner] FAILED {outcome.key} "
                      f"[{outcome.kind}] {outcome.message}", file=sys.stderr)

    def _backoff(self, attempt: int) -> float:
        return self.config.backoff_base * (
            self.config.backoff_factor ** (attempt - 1)
        )

    def _may_retry(self, kind: str, attempt: int) -> bool:
        if attempt > self.config.retries:
            return False
        if kind in ("trace", "config"):
            return False  # deterministic job defects: retry cannot help
        if kind == "timeout":
            return self.config.retry_timeouts
        return True  # crash / worker-lost

    # ------------------------------------------------------------------
    # Inline backend (workers=0): isolation + retry, no preemption
    # ------------------------------------------------------------------

    def _run_inline(self, jobs: Sequence, outcomes: Dict) -> None:
        for job in jobs:
            attempt = 1
            start = time.monotonic()
            while True:
                try:
                    result = self._run_fn(job, attempt)
                except KeyboardInterrupt:
                    raise  # journal already holds the finished jobs
                except BaseException as exc:  # noqa: BLE001 — isolation point
                    if isinstance(exc, (SystemExit, GeneratorExit)):
                        raise
                    failed = failed_run_from(
                        job.key, exc, attempt, time.monotonic() - start
                    )
                    if self._may_retry(failed.kind, attempt):
                        time.sleep(self._backoff(attempt))
                        attempt += 1
                        continue
                    self._record(outcomes, failed)
                    break
                else:
                    self._record(outcomes, CompletedRun(
                        key=job.key, result=result, attempts=attempt,
                        elapsed=time.monotonic() - start,
                    ))
                    break

    # ------------------------------------------------------------------
    # Process-pool backend (workers >= 1)
    # ------------------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context()
        return ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=ctx
        )

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        """Tear a pool down even if a worker is wedged."""
        procs = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass

    def _run_pool(self, jobs: Sequence, outcomes: Dict) -> None:
        cfg = self.config
        queue = deque((job, 1) for job in jobs)  # (job, attempt)
        delayed: List[Tuple[float, object, int]] = []  # (ready_at, job, att)
        inflight: Dict = {}  # future -> (job, attempt, deadline, started_at)
        executor = self._new_pool()

        def submit(job, attempt: int) -> None:
            now = time.monotonic()
            fut = executor.submit(self._run_fn, job, attempt)
            deadline = now + cfg.timeout if cfg.timeout else None
            inflight[fut] = (job, attempt, deadline, now)

        def fail_or_retry(job, attempt, exc, elapsed, kind=None) -> None:
            failed = failed_run_from(job.key, exc, attempt, elapsed, kind=kind)
            if self._may_retry(failed.kind, attempt):
                delayed.append(
                    (time.monotonic() + self._backoff(attempt), job,
                     attempt + 1)
                )
            else:
                self._record(outcomes, failed)

        def rebuild_pool() -> None:
            """Kill the pool; resubmit unaffected in-flight jobs."""
            nonlocal executor
            for fut, (job, attempt, _dl, _t0) in list(inflight.items()):
                queue.appendleft((job, attempt))
            inflight.clear()
            self._kill_pool(executor)
            executor = self._new_pool()

        try:
            while queue or inflight or delayed:
                now = time.monotonic()
                still_delayed = []
                for ready_at, job, attempt in delayed:
                    if ready_at <= now:
                        queue.append((job, attempt))
                    else:
                        still_delayed.append((ready_at, job, attempt))
                delayed = still_delayed

                while queue and len(inflight) < cfg.workers:
                    job, attempt = queue.popleft()
                    submit(job, attempt)

                waits = []
                if delayed:
                    waits.append(min(r for r, _, _ in delayed) - now)
                deadlines = [d for (_, _, d, _) in inflight.values()
                             if d is not None]
                if deadlines:
                    waits.append(min(deadlines) - now)
                wait_for = max(0.01, min(waits)) if waits else None

                if inflight:
                    done, _ = wait(
                        set(inflight), timeout=wait_for,
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    if wait_for:
                        time.sleep(wait_for)
                    done = set()

                pool_broken = False
                for fut in done:
                    entry = inflight.pop(fut, None)
                    if entry is None:  # already handled via a pool rebuild
                        continue
                    job, attempt, _deadline, started = entry
                    elapsed = time.monotonic() - started
                    try:
                        result = fut.result()
                    except BrokenProcessPool as exc:
                        fail_or_retry(job, attempt, exc, elapsed,
                                      kind="worker-lost")
                        pool_broken = True
                    except BaseException as exc:  # noqa: BLE001
                        if isinstance(exc, KeyboardInterrupt):
                            raise
                        fail_or_retry(job, attempt, exc, elapsed)
                    else:
                        self._record(outcomes, CompletedRun(
                            key=job.key, result=result, attempts=attempt,
                            elapsed=elapsed,
                        ))

                now = time.monotonic()
                expired = [
                    fut for fut, (_j, _a, deadline, _t0) in inflight.items()
                    if deadline is not None and deadline <= now
                    and not fut.done()
                ]
                for fut in expired:
                    job, attempt, _deadline, started = inflight.pop(fut)
                    exc = JobTimeout(
                        f"job exceeded {cfg.timeout:.1f}s wall-clock budget",
                        trace=getattr(job, "trace", None),
                        prefetcher=getattr(job, "l1d", None),
                        timeout=cfg.timeout,
                    )
                    fail_or_retry(job, attempt, exc,
                                  now - started, kind="timeout")
                if expired or pool_broken:
                    rebuild_pool()

            executor.shutdown(wait=True)
        except BaseException:
            # Flush nothing further — the journal is already up to date
            # for every finished job; kill stragglers and propagate.
            self._kill_pool(executor)
            raise
