"""Figure 14: memory-hierarchy traffic normalised to no prefetching.

Paper reference: traffic increase is inversely proportional to accuracy;
Berti has the smallest increase of the L1D prefetchers (L2 +1.0 %,
LLC +9.2 %, DRAM +13.9 % on GAP, vs ~+90 % for IPCP); L2 prefetchers
added on top significantly inflate off-chip traffic.
"""

from common import gap_traces, once, run_matrix, save_report, spec_traces

from repro.analysis.metrics import traffic_normalised
from repro.analysis.report import format_table

NAMES = ["ip_stride", "mlop", "ipcp", "berti"]


def test_fig14_traffic(benchmark):
    def compute():
        rows = []
        for suite, traces in (("SPEC17", spec_traces()), ("GAP", gap_traces())):
            matrix = run_matrix(traces, ["none"] + NAMES)
            for name in NAMES:
                sums = {"l1d_l2": 0.0, "l2_llc": 0.0, "llc_dram": 0.0}
                for t in traces:
                    tn = traffic_normalised(
                        matrix[t.name][name], matrix[t.name]["none"]
                    )
                    for k in sums:
                        sums[k] += tn[k]
                n = len(traces)
                rows.append([suite, name] + [sums[k] / n for k in
                                             ("l1d_l2", "l2_llc", "llc_dram")])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig14_traffic",
        format_table(
            ["suite", "prefetcher", "L1D-L2", "L2-LLC", "LLC-DRAM"],
            rows,
            title=(
                "Figure 14 — traffic normalised to no prefetching\n"
                "(paper: Berti has the lowest traffic increase; IPCP ~+90%"
                " on GAP)"
            ),
        ),
    )

    by = {(r[0], r[1]): r[2:] for r in rows}
    for suite in ("SPEC17", "GAP"):
        # Berti's DRAM traffic inflation is below IPCP's.
        assert by[(suite, "berti")][2] <= by[(suite, "ipcp")][2] + 0.05, suite
    # And stays bounded (paper: ~1.14 on GAP at DRAM).
    assert by[("GAP", "berti")][2] < 1.6
