"""Differential lockstep oracle: optimised vs. reference engine.

Runs the same trace through two fully independent simulator instances —
the optimised engine (exact-type fast paths) and the pure-reference
engine (:func:`~repro.sanitizer.reference.to_reference`, everything via
virtual dispatch) — one record at a time, comparing observable state
after every access:

* the access's issue cycle (core scheduling),
* the latency the hierarchy reported,
* the core's cycle clock (exact float equality — both engines perform
  the same arithmetic in the same order, so any drift is a real bug),

plus a structural digest (cache presence indexes, MSHR entry sets, PQ
service times, per-cache counters) every ``digest_every`` accesses, and
a full :class:`~repro.simulator.stats.SimResult` comparison at the end.
The first mismatch is reported with its access index, so a fast-path
bug is localised to the exact record that exposed it.

``seed_divergence=N`` perturbs the optimised side's reported latency at
access ``N`` (by one cycle, after the hierarchy has run), which must be
detected *at* ``N`` — the self-test that the oracle actually looks.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cpu.core_model import CoreModel
from repro.memory.hierarchy import Hierarchy
from repro.prefetchers.registry import make_prefetcher
from repro.sanitizer.reference import to_reference
from repro.simulator.batched import DEFAULT_CHUNK_SIZE, make_batched_runner
from repro.simulator.config import SystemConfig, default_config
from repro.simulator.engine import _collect, _Snapshot, build_hierarchy
from repro.simulator.multicore import simulate_multicore
from repro.workloads.trace import Trace


@dataclass
class LockstepReport:
    """Outcome of one differential run."""

    trace: str
    l1d: str
    l2: str
    accesses: int
    ok: bool
    #: Access index of the first divergence; ``accesses`` means the
    #: per-access observables agreed but the final results did not.
    diverged_at: Optional[int] = None
    field: Optional[str] = None
    optimized: Any = None
    reference: Any = None
    #: What was compared: ``"reference"`` pits the optimized hierarchy
    #: against the pure-virtual-dispatch one; ``"engines"`` pits an
    #: alternative inner loop (batched or native) against the classic
    #: one (same hierarchy type).
    kind: str = "reference"
    #: Which engine the optimized side ran (``"engines"`` kind only).
    engine: str = "batched"

    def describe(self) -> str:
        a, b = ((self.engine, "classic") if self.kind == "engines"
                else ("optimized", "reference"))
        tag = f"{self.trace} l1d={self.l1d} l2={self.l2}"
        if self.ok:
            return (f"OK {tag}: {self.accesses} accesses bit-identical "
                    f"between {a} and {b} engines")
        where = ("final result" if self.diverged_at == self.accesses
                 else f"access {self.diverged_at}")
        return (f"DIVERGED {tag} at {where}: {self.field} "
                f"{a}={self.optimized!r} {b}={self.reference!r}")


class _Side:
    """One engine instance being driven in lockstep."""

    def __init__(
        self,
        trace: Trace,
        l1d: str,
        l2: str,
        config: SystemConfig,
        prewarm_tlb: bool,
        reference: bool,
        make=make_prefetcher,
    ) -> None:
        self.hierarchy = build_hierarchy(config, make(l1d), make(l2))
        if reference:
            to_reference(self.hierarchy)
        self.core = CoreModel(config.core)
        if prewarm_tlb:
            self.hierarchy.mmu.prewarm(trace.line_addresses())
        self.last_latency = -1
        inner = self.hierarchy.demand_access

        def capture(ip: int, vaddr: int, now: int,
                    is_write: bool = False) -> int:
            latency = inner(ip, vaddr, now, is_write)
            self.last_latency = latency
            return latency

        # Instance attribute shadowing the method: the core calls this
        # wrapper, the hierarchy underneath is untouched.
        self.hierarchy.demand_access = capture  # type: ignore[method-assign]
        self.demand = capture
        self.start = _Snapshot(0, 0.0)
        self.carryover = {"l1d": 0, "l2": 0}

    def warmup_boundary(self) -> None:
        self.hierarchy.reset_stats()
        self.carryover = self.hierarchy.prefetched_line_counts()
        self.start = _Snapshot(*self.core.snapshot())

    def result(self, trace: Trace) -> Dict[str, Any]:
        res = _collect(trace, self.hierarchy, self.core, self.start)
        res.extra["pf_carryover_l1d"] = float(self.carryover["l1d"])
        res.extra["pf_carryover_l2"] = float(self.carryover["l2"])
        return res.to_dict()


def _mshr_digest(mshr) -> Dict[int, Tuple[int, int, bool, int]]:
    return {
        line: (e.alloc_cycle, e.ready_cycle, e.is_prefetch, e.merged_demands)
        for line, e in mshr._entries.items()
    }


def _state_digest(h: Hierarchy) -> Dict[str, Any]:
    """Comparable structural summary; strictly read-only."""
    return {
        "l1d_where": dict(h.l1d._where),
        "l2_where": dict(h.l2._where),
        "llc_where": dict(h.llc._where),
        "l1d_mshr": _mshr_digest(h.l1d_mshr),
        "l2_mshr": _mshr_digest(h.l2_mshr),
        "llc_mshr": _mshr_digest(h.llc_mshr),
        "pq": tuple(h.pq._service_times),
        "l1d_stats": astuple(h.l1d.stats),
        "l2_stats": astuple(h.l2.stats),
        "llc_stats": astuple(h.llc.stats),
        "pf_l1d": astuple(h.pf_stats["l1d"]),
        "pf_l2": astuple(h.pf_stats["l2"]),
    }


def _first_diff(a: Dict[str, Any], b: Dict[str, Any]) -> Tuple[str, Any, Any]:
    for key in a:
        if a[key] != b.get(key):
            return key, a[key], b.get(key)
    for key in b:
        if key not in a:
            return key, None, b[key]
    return "?", None, None


def lockstep_run(
    trace: Trace,
    l1d: str = "none",
    l2: str = "none",
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
    prewarm_tlb: bool = True,
    digest_every: int = 256,
    seed_divergence: Optional[int] = None,
    make=make_prefetcher,
) -> LockstepReport:
    """Drive both engines through ``trace`` and report the first mismatch.

    Prefetchers are named (registry), not passed as objects: each side
    needs its own independent instance, and registry construction is
    deterministic (seeded RNGs), so both sides start identical.  ``make``
    swaps the registry factory for a custom one (the fuzzer passes a
    closure over an adversarial :class:`BertiConfig`); it must return a
    fresh, deterministic instance per call.
    """
    config = config or default_config()
    opt = _Side(trace, l1d, l2, config, prewarm_tlb, reference=False,
                make=make)
    ref = _Side(trace, l1d, l2, config, prewarm_tlb, reference=True,
                make=make)

    if seed_divergence is not None:
        inner = opt.demand

        def perturbed(ip: int, vaddr: int, now: int,
                      is_write: bool = False) -> int:
            latency = inner(ip, vaddr, now, is_write)
            if opt_counter[0] == seed_divergence:
                latency += 1
                opt.last_latency = latency
            opt_counter[0] += 1
            return latency

        opt_counter = [0]
        opt.hierarchy.demand_access = perturbed  # type: ignore[method-assign]
        opt.demand = perturbed

    ips, addrs, writes, gaps, deps = trace.columns()
    n = len(trace)
    warmup_end = int(n * warmup_fraction)

    def report(i: int, field: str, a: Any, b: Any) -> LockstepReport:
        return LockstepReport(
            trace=trace.name, l1d=l1d, l2=l2, accesses=n, ok=False,
            diverged_at=i, field=field, optimized=a, reference=b,
        )

    for i in range(n):
        if i == warmup_end and warmup_end > 0:
            opt.warmup_boundary()
            ref.warmup_boundary()
            if opt.carryover != ref.carryover:
                return report(i, "pf_carryover",
                              dict(opt.carryover), dict(ref.carryover))
        ip = ips[i]
        vaddr = addrs[i]
        is_write = writes[i]
        gap = gaps[i]
        dep = deps[i]
        if gap:
            opt.core.advance_nonmem(gap)
            ref.core.advance_nonmem(gap)
        t_opt = opt.core.issue_memory(opt.demand, ip, vaddr, is_write, dep)
        t_ref = ref.core.issue_memory(ref.demand, ip, vaddr, is_write, dep)
        if t_opt != t_ref:
            return report(i, "issue_cycle", t_opt, t_ref)
        if opt.last_latency != ref.last_latency:
            return report(i, "latency", opt.last_latency, ref.last_latency)
        if opt.core.cycles != ref.core.cycles:
            return report(i, "core_cycles", opt.core.cycles, ref.core.cycles)
        if digest_every and (i + 1) % digest_every == 0:
            d_opt = _state_digest(opt.hierarchy)
            d_ref = _state_digest(ref.hierarchy)
            if d_opt != d_ref:
                key, a, b = _first_diff(d_opt, d_ref)
                return report(i, f"state:{key}", a, b)

    res_opt = opt.result(trace)
    res_ref = ref.result(trace)
    if res_opt != res_ref:
        key, a, b = _first_diff(res_opt, res_ref)
        return report(n, f"result:{key}", a, b)
    return LockstepReport(
        trace=trace.name, l1d=l1d, l2=l2, accesses=n, ok=True,
    )


def lockstep_engines(
    trace: Trace,
    l1d: str = "none",
    l2: str = "none",
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
    prewarm_tlb: bool = True,
    chunk_size: int = 0,
    localize: bool = True,
    seed_divergence: Optional[int] = None,
    make=make_prefetcher,
    engine: str = "batched",
) -> LockstepReport:
    """Differential check of the batched engine against the classic one.

    ``engine="native"`` drives the optimized side through
    :func:`repro.native.runner.make_native_runner` instead.  The oracle
    is strict about what it compared: if the native guards say the
    kernel should have engaged but spans still demoted (no compiler),
    the report fails with ``field="native_demotion"`` rather than
    silently passing a batched-vs-classic comparison off as a native
    one — callers that want a graceful skip check
    :func:`repro.native.build.kernel_available` first.  Demotions the
    guards themselves mandate (unsupported prefetcher, non-stock parts)
    still pass, labelled ``native[demoted]``.

    Both sides get independent, identically-seeded hierarchies (stock
    types, so the batched side is *not* demoted the way the capture
    wrappers of :func:`lockstep_run` would demote it).  The classic side
    runs the per-record loop; the batched side runs
    :func:`~repro.simulator.batched.make_batched_runner` one chunk at a
    time, and the structural digest plus the core clock are compared at
    every chunk boundary — the batched loop flushes its span-local state
    there, so the digests are directly comparable.  On a mismatch with
    ``localize=True`` the whole run is repeated at ``chunk_size=1``,
    which pins the divergence to the exact access; the final
    :class:`~repro.simulator.stats.SimResult` dicts are compared too.

    ``seed_divergence=N`` perturbs the *classic* side's latency on the
    first read at or after access ``N`` — the classic loop calls its
    demand hook through a local, so the wrapper never touches the
    hierarchy attribute and the batched side keeps its fused fast path
    (wrapping the batched side would demote it to the classic loop and
    silently defeat the plant).  The perturbation is larger than any
    real memory latency so the core's retire-frontier max cannot absorb
    it, and it skips writes, whose latency never reaches the clock.
    """
    config = config or default_config()

    def build() -> Tuple[Hierarchy, CoreModel]:
        h = build_hierarchy(config, make(l1d), make(l2))
        core = CoreModel(config.core)
        if prewarm_tlb:
            h.mmu.prewarm(trace.line_addresses())
        return h, core

    hc, cc = build()
    hb, cb = build()
    if engine == "native":
        from repro.native.runner import make_native_runner

        run_batched = make_native_runner(trace, hb, cb, chunk_size)
    else:
        run_batched = make_batched_runner(trace, hb, cb, chunk_size)
    cs = chunk_size or DEFAULT_CHUNK_SIZE

    ips, addrs, writes, gaps, deps = trace.columns()
    demand = hc.demand_access
    if seed_divergence is not None:
        inner_demand = demand
        counter = [0, False]  # access index, plant already fired

        def demand(ip: int, vaddr: int, now: int,  # noqa: F811
                   is_write: bool = False) -> int:
            latency = inner_demand(ip, vaddr, now, is_write)
            if (not counter[1] and counter[0] >= seed_divergence
                    and not is_write):
                latency += 100003  # prime, >> any real memory latency
                counter[1] = True
            counter[0] += 1
            return latency
    issue = cc.issue_memory
    advance = cc.advance_nonmem

    def run_classic(lo: int, hi: int) -> None:
        for ip, vaddr, is_write, gap, dep in zip(
            ips[lo:hi], addrs[lo:hi], writes[lo:hi], gaps[lo:hi], deps[lo:hi],
        ):
            if gap:
                advance(gap)
            issue(demand, ip, vaddr, is_write, dep)

    n = len(trace)
    warmup_end = int(n * warmup_fraction)

    def report(mark: int, field: str, a: Any, b: Any) -> LockstepReport:
        if localize and cs > 1:
            # Re-run the whole comparison access-at-a-time: every record
            # becomes a chunk boundary, so the first differing digest
            # names the exact access that diverged.
            return lockstep_engines(
                trace, l1d, l2, config=config,
                warmup_fraction=warmup_fraction, prewarm_tlb=prewarm_tlb,
                chunk_size=1, localize=False,
                seed_divergence=seed_divergence, make=make, engine=engine,
            )
        at = mark - 1 if cs == 1 and mark < n else mark
        return LockstepReport(
            trace=trace.name, l1d=l1d, l2=l2, accesses=n, ok=False,
            diverged_at=at, field=field, optimized=a, reference=b,
            kind="engines", engine=engine,
        )

    marks = set(range(cs, n, cs))
    if warmup_end > 0:
        marks.add(warmup_end)
    marks.add(n)
    start_c = start_b = _Snapshot(0, 0.0)
    carry_c = carry_b = {"l1d": 0, "l2": 0}
    i = 0
    for mark in sorted(marks):
        run_classic(i, mark)
        run_batched(i, mark)
        i = mark
        if mark == warmup_end and warmup_end > 0:
            hc.reset_stats()
            hb.reset_stats()
            carry_c = hc.prefetched_line_counts()
            carry_b = hb.prefetched_line_counts()
            start_c = _Snapshot(*cc.snapshot())
            start_b = _Snapshot(*cb.snapshot())
            if carry_c != carry_b:
                return report(mark, "pf_carryover",
                              dict(carry_b), dict(carry_c))
        if (cb.instructions, cb.cycles) != (cc.instructions, cc.cycles):
            return report(mark, "core_clock",
                          (cb.instructions, cb.cycles),
                          (cc.instructions, cc.cycles))
        d_c = _state_digest(hc)
        d_b = _state_digest(hb)
        if d_b != d_c:
            key, a, b = _first_diff(d_b, d_c)
            return report(mark, f"state:{key}", a, b)

    def final(h: Hierarchy, core: CoreModel, start, carry) -> Dict[str, Any]:
        res = _collect(trace, h, core, start)
        res.extra["pf_carryover_l1d"] = float(carry["l1d"])
        res.extra["pf_carryover_l2"] = float(carry["l2"])
        return res.to_dict()

    res_b = final(hb, cb, start_b, carry_b)
    res_c = final(hc, cc, start_c, carry_c)
    if res_b != res_c:
        key, a, b = _first_diff(res_b, res_c)
        return report(n, f"result:{key}", a, b)
    engine_label = engine
    if engine == "native" and getattr(run_batched, "demoted_spans", 0):
        from repro.native.runner import native_mode

        if native_mode(hb, cb)[0]:
            # The guards say native should have engaged, yet spans fell
            # back (e.g. no compiler): refuse to pass a batched run off
            # as a native validation.
            return LockstepReport(
                trace=trace.name, l1d=l1d, l2=l2, accesses=n, ok=False,
                diverged_at=n, field="native_demotion",
                optimized=run_batched.demotion_detail,
                reference=None, kind="engines", engine=engine,
            )
        # Expected demotion (unsupported prefetcher etc.): the run is a
        # valid correctness check, just label what actually executed.
        engine_label = "native[demoted]"
    return LockstepReport(
        trace=trace.name, l1d=l1d, l2=l2, accesses=n, ok=True,
        kind="engines", engine=engine_label,
    )


def lockstep_multicore(
    traces: Sequence[Trace],
    l1ds: Sequence[str],
    l2s: Optional[Sequence[str]] = None,
    config: Optional[SystemConfig] = None,
    warmup_fraction: float = 0.2,
) -> LockstepReport:
    """Differential check of a multicore mix (final per-core results).

    The multicore replay loop interleaves cores at chunk granularity, so
    per-access lockstep would have to re-implement it; instead the whole
    mix is run once per engine and the per-core result dicts compared —
    any fast-path divergence in the shared-LLC/DRAM machinery surfaces
    here with the core index and first differing counter.
    """
    config = config or default_config()
    l2s = list(l2s or ["none"] * len(traces))

    def run(reference: bool) -> List[Dict[str, Any]]:
        results = simulate_multicore(
            traces,
            [make_prefetcher(p) for p in l1ds],
            [make_prefetcher(p) for p in l2s],
            config=config,
            warmup_fraction=warmup_fraction,
            post_build=to_reference if reference else None,
        )
        return [r.to_dict() for r in results]

    name = "+".join(t.name for t in traces)
    tag_l1d = ",".join(l1ds)
    tag_l2 = ",".join(l2s)
    res_opt = run(False)
    res_ref = run(True)
    for cid, (a, b) in enumerate(zip(res_opt, res_ref)):
        if a != b:
            key, va, vb = _first_diff(a, b)
            return LockstepReport(
                trace=name, l1d=tag_l1d, l2=tag_l2,
                accesses=sum(len(t) for t in traces), ok=False,
                diverged_at=None, field=f"core{cid}:{key}",
                optimized=va, reference=vb,
            )
    return LockstepReport(
        trace=name, l1d=tag_l1d, l2=tag_l2,
        accesses=sum(len(t) for t in traces), ok=True,
    )


def quick_trace(records: int = 1200, name: str = "sancheck_quick") -> Trace:
    """A small, RNG-free synthetic mix for ``repro sancheck --quick``.

    Deliberately built like the golden synthetic trace (strides, a
    repeating delta pattern, a write-heavy stream) so it exercises hits,
    misses, writebacks, Berti delta learning, and prefetch issue — but
    short enough that running it twice per registry prefetcher stays in
    CI-smoke territory.
    """
    from repro.workloads.synthetic import pattern_stream, strided_stream
    from repro.workloads.trace import interleave

    per = max(1, records // 3)
    a = Trace("a")
    a.extend(strided_stream(0x100, 0x10000, 1, per, gap=6))
    b = Trace("b")
    b.extend(pattern_stream(0x200, 0x400000, [1, 3, 1, 3], per, gap=4))
    c = Trace("c")
    c.extend(strided_stream(0x300, 0x800000, 2, per, gap=8, is_write=True))
    out = interleave([a, b, c], name, chunk=2)
    out.suite = "synthetic"
    return out
