#!/usr/bin/env python3
"""Domain example: prefetching under constrained DRAM bandwidth.

Reproduces the paper's §IV-F methodology interactively: sweep the DRAM
transfer rate from DDR5-6400 down to DDR3-1600 and watch how each
prefetcher's speedup responds.  Accurate prefetchers degrade gracefully
(their traffic is almost all useful); sprayers lose their gains first
because junk requests compete with demands for the shrinking bus.

Run:  python examples/bandwidth_study.py
"""

from repro.analysis.charts import bar_chart, series_chart
from repro.analysis.metrics import geomean
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.config import default_config
from repro.simulator.engine import simulate
from repro.workloads.spec_like import bwaves_like, lbm_2676, mcf_s_1554

PREFETCHERS = ["mlop", "ipcp", "berti"]
MTPS = [6400, 3200, 1600]


def main() -> None:
    traces = [mcf_s_1554(0.35), lbm_2676(0.35), bwaves_like(0.35)]
    series = {name: [] for name in PREFETCHERS}

    for mtps in MTPS:
        cfg = default_config().with_dram_mtps(mtps)
        print(f"simulating at {mtps} MTPS...")
        bases = {
            t.name: simulate(t, l1d_prefetcher=make_prefetcher("ip_stride"),
                             config=cfg)
            for t in traces
        }
        for name in PREFETCHERS:
            ratios = [
                simulate(t, l1d_prefetcher=make_prefetcher(name), config=cfg)
                .speedup_over(bases[t.name])
                for t in traces
            ]
            series[name].append((mtps, geomean(ratios)))

    print()
    print(series_chart(
        series,
        title="speedup vs IP-stride across 6400 -> 3200 -> 1600 MTPS",
    ))
    print()
    final = {name: pts[-1][1] for name, pts in series.items()}
    print(bar_chart(final, title="speedup at 1600 MTPS", baseline=1.0))
    print("\n(paper §IV-F: the prefetcher ranking is stable across DRAM"
          "\nbandwidths; losses at 1600 MTPS are moderate for Berti)")


if __name__ == "__main__":
    main()
