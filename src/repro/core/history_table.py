"""Berti's history table (paper §III-C, Figures 5 and 6).

An 8-set, 16-way cache with FIFO replacement, indexed and tagged by the
IP.  Each entry records the 24 least-significant bits of the accessed
cache-line address and a 16-bit timestamp.  Entries are inserted on
demand misses and on first demand hits to prefetched lines; searches run
on demand-miss fills and on those prefetch hits, returning the *timely*
local deltas — differences to earlier accesses by the same IP that
happened early enough that a prefetch launched then would have arrived in
time.

Timestamps and line addresses are stored in their hardware widths, so
both wrap; comparisons are wraparound-aware like real hardware would be.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import BertiConfig

# Entries are stored as (ip_tag, line, timestamp, order) tuples — or None
# while the way is empty.  Tuple rows cost one unpack in the search loop
# where attribute-carrying objects cost five attribute loads, and this
# search runs once per L1D miss.
_Row = Tuple[int, int, int, int]


class HistoryTable:
    """IP-indexed access history with timely-delta search."""

    def __init__(self, config: BertiConfig | None = None) -> None:
        self.config = config or BertiConfig()
        cfg = self.config
        self._sets: List[List[Optional[_Row]]] = [
            [None] * cfg.history_ways for _ in range(cfg.history_sets)
        ]
        self._fifo_clock = [0] * cfg.history_sets
        self._fifo_ptr = [0] * cfg.history_sets  # next way to replace
        self._ts_mask = (1 << cfg.timestamp_bits) - 1
        self._line_mask = (1 << cfg.history_line_bits) - 1
        self._tag_mask = (1 << cfg.history_ip_tag_bits) - 1
        self.inserts = 0
        self.searches = 0

    # ------------------------------------------------------------------

    def _set_index(self, ip: int) -> int:
        # XOR-fold the IP before indexing: x86 instruction addresses have
        # strongly biased low bits, so raw modulo would pile every IP of
        # an aligned code region into one set.
        folded = ip ^ (ip >> 3) ^ (ip >> 7)
        return folded % self.config.history_sets

    def _ip_tag(self, ip: int) -> int:
        return (ip // self.config.history_sets) & self._tag_mask

    def _ts_age(self, now_ts: int, then_ts: int) -> int:
        """Wraparound-aware ``now - then`` over the timestamp width."""
        return (now_ts - then_ts) & self._ts_mask

    # ------------------------------------------------------------------

    def insert(self, ip: int, line: int, now: int) -> None:
        """Record an access (demand miss or first hit on a prefetch)."""
        self.inserts += 1
        sidx = self._set_index(ip)
        # FIFO replacement: a circular pointer over the ways.
        ptr = self._fifo_ptr[sidx]
        self._fifo_ptr[sidx] = (ptr + 1) % self.config.history_ways
        clock = self._fifo_clock[sidx] + 1
        self._fifo_clock[sidx] = clock
        self._sets[sidx][ptr] = (
            self._ip_tag(ip), line & self._line_mask, now & self._ts_mask,
            clock,
        )

    def search_timely(self, ip: int, line: int, demand_time: int, latency: int) -> List[int]:
        """Timely local deltas for an access to ``line`` by ``ip``.

        ``demand_time`` is when the core demanded the line and ``latency``
        the measured fetch latency; an earlier access qualifies when it
        happened at or before ``demand_time - latency`` (a prefetch issued
        then would have arrived in time).  Returns at most
        ``max_deltas_per_search`` deltas, youngest qualifying entries
        first, each fitting the 13-bit delta field and non-zero.
        """
        self.searches += 1
        cfg = self.config
        tag = self._ip_tag(ip)
        now_ts = demand_time & self._ts_mask
        line_masked = line & self._line_mask
        half_range = 1 << (cfg.timestamp_bits - 1)

        # Hot path: the bit arithmetic of sign_extend/fits_in_signed is
        # inlined here (this runs once per L1D miss).
        line_mask = self._line_mask
        line_bits = cfg.history_line_bits
        sign_bit = 1 << (line_bits - 1)
        delta_lo = -(1 << (cfg.delta_bits - 1))
        delta_hi = (1 << (cfg.delta_bits - 1)) - 1
        ts_mask = self._ts_mask

        # FIFO insertion makes the ring order the age order: walking the
        # ways backwards from the insertion pointer visits entries
        # youngest-first, so no sort is needed and the scan can stop at
        # the delta cap.  A None way means the ring has not wrapped yet,
        # and every way older than it is also empty.
        sidx = self._set_index(ip)
        ways = self._sets[sidx]
        nways = len(ways)
        ptr = self._fifo_ptr[sidx]
        max_deltas = cfg.max_deltas_per_search
        deltas: List[int] = []
        for i in range(1, nways + 1):
            e = ways[(ptr - i) % nways]
            if e is None:
                break
            if e[0] != tag:
                continue
            age = (now_ts - e[2]) & ts_mask
            # Ages beyond half the timestamp range are ambiguous under
            # wraparound; hardware treats them as stale.  Ages below the
            # latency are too recent: a prefetch would have been late.
            if age >= half_range or age < latency:
                continue
            delta = (line_masked - e[1]) & line_mask
            if delta & sign_bit:
                delta -= 1 << line_bits
            if delta == 0 or delta < delta_lo or delta > delta_hi:
                continue
            deltas.append(delta)
            if len(deltas) >= max_deltas:
                break
        return deltas

    def occupancy(self) -> int:
        return sum(e is not None for ways in self._sets for e in ways)

    def reset(self) -> None:
        cfg = self.config
        self._sets = [
            [None] * cfg.history_ways for _ in range(cfg.history_sets)
        ]
        self._fifo_clock = [0] * cfg.history_sets
        self._fifo_ptr = [0] * cfg.history_sets
        self.inserts = 0
        self.searches = 0
