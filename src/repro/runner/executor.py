"""Fault-isolated experiment executor.

Runs a batch of jobs either inline (``workers=0``) or across a
``concurrent.futures.ProcessPoolExecutor`` (``workers >= 1``), with:

* **fault isolation** — an exception (even a hard worker death) fails
  one job, not the campaign;
* **per-job wall-clock timeouts** — a hung job is recorded as a
  :class:`~repro.errors.JobTimeout` and its worker process is killed;
* **bounded retry with exponential backoff** — transient failures
  (``SimulationError``, lost workers, optionally timeouts) are retried
  up to ``retries`` extra attempts; trace/config errors never are;
* **checkpoint journaling** — every outcome is appended to a JSONL
  journal the moment it is known, and ``resume=True`` replays completed
  jobs instead of re-running them.  If the journal itself cannot be
  written (disk full), outcomes are buffered in order and flushed the
  moment a later append succeeds — degraded, never lost.

Scheduling detail: at most ``workers`` jobs are ever in flight, so a
submitted future starts executing immediately and its wall-clock
deadline can be measured from submission.  When a job times out or a
worker dies, the pool is rebuilt (hung processes are killed) and the
unaffected in-flight jobs are resubmitted — their results are
deterministic, so a resubmission cannot change the campaign's output.

The pool loop exposes a small set of **supervision hooks** (clock,
submission gate, per-tick callback, deadline derivation, slot count,
drain flag) that are no-ops here; :class:`repro.runner.supervisor.
CampaignSupervisor` overrides them to add heartbeat liveness, adaptive
deadlines, resource-aware degradation, circuit breakers, and graceful
shutdown — the default path is behaviourally identical to the
pre-supervisor runner.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigError, JobTimeout, ResourceError
from repro.runner import worker
from repro.runner.jobs import (
    CompletedRun,
    RunOutcome,
    SuiteResult,
    TaggedResult,
    failed_run_from,
    tag_worker,
)
from repro.runner.journal import Journal

#: Sentinel a ``_prepare_job`` hook returns to push a job to the back of
#: the queue (e.g. while a half-open circuit-breaker probe is in flight).
DEFER = object()


def _bind_worker_to_parent() -> None:
    """Pool-worker initializer: die when the campaign process dies.

    Without this, a SIGKILLed campaign (OOM killer, chaos harness) leaves
    its pool workers orphaned — blocked forever on the work queue and
    holding the campaign's sentinel pipe open.  ``PR_SET_PDEATHSIG``
    makes the kernel SIGKILL the workers the moment the parent goes,
    so nothing leaks.  Best-effort and Linux-only; elsewhere a no-op.

    Also resets signal dispositions: fork-context workers inherit the
    campaign's handlers, so without this a supervisor's drain handler
    would swallow the SIGTERM that ``_kill_pool`` sends.  SIGINT is
    ignored outright — a terminal Ctrl-C hits the whole foreground
    group, and the drain contract says in-flight jobs get to finish.
    """
    try:
        import signal as _signal

        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
        _signal.signal(_signal.SIGINT, _signal.SIG_IGN)
    except Exception:  # noqa: BLE001 — purely protective, never fatal
        pass
    if not sys.platform.startswith("linux"):
        return
    try:
        import ctypes
        import signal as _signal

        PR_SET_PDEATHSIG = 1
        ctypes.CDLL(None, use_errno=True).prctl(
            PR_SET_PDEATHSIG, _signal.SIGKILL, 0, 0, 0
        )
    except Exception:  # noqa: BLE001 — purely protective, never fatal
        pass


@dataclass
class RunnerConfig:
    """All resilience knobs in one place."""

    workers: int = 0                 # 0 = inline (no subprocess)
    timeout: Optional[float] = None  # per-job wall-clock seconds (pool mode)
    retries: int = 1                 # extra attempts for transient failures
    retry_timeouts: bool = False     # a hang usually hangs again
    backoff_base: float = 0.25      # seconds; doubles per attempt
    backoff_factor: float = 2.0
    journal_path: Optional[Union[str, Path]] = None
    resume: bool = False
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigError(
                f"workers must be >= 0, got {self.workers}", field="workers"
            )
        if self.retries < 0:
            raise ConfigError(
                f"retries must be >= 0, got {self.retries}", field="retries"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be positive, got {self.timeout}",
                field="timeout",
            )
        if self.backoff_base <= 0:
            raise ConfigError(
                f"backoff_base must be positive, got {self.backoff_base}",
                field="backoff_base",
            )
        if self.backoff_factor <= 0:
            raise ConfigError(
                f"backoff_factor must be positive, got "
                f"{self.backoff_factor}", field="backoff_factor",
            )
        if self.resume and not self.journal_path:
            raise ConfigError(
                "resume=True requires a journal_path", field="resume"
            )


@dataclass
class _InFlight:
    """Mutable bookkeeping for one submitted future.

    Mutable on purpose: the supervisor's tick hook rebases ``deadline``
    and ``started`` after a clock-skew event and extends deadlines as
    heartbeat throughput estimates improve.
    """

    job: object
    attempt: int
    deadline: Optional[float]
    started: float


class ExperimentRunner:
    """Executes jobs with isolation, retry, timeout, and checkpointing.

    ``run_fn(job, attempt)`` produces a job's result; the default is
    :func:`repro.runner.worker.run_job` (jobs are then
    :class:`~repro.runner.jobs.JobSpec`).  In pool mode both the jobs
    and ``run_fn`` must be picklable; inline mode has no such
    constraint (``analysis.sweep`` passes closures).

    ``journal`` overrides the journal built from
    ``config.journal_path`` — used by tests and the chaos harness to
    inject failing journals, and by the supervisor to install its
    disk-space guard.
    """

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        run_fn: Callable = worker.run_job,
        journal: Optional[Journal] = None,
    ) -> None:
        self.config = config or RunnerConfig()
        self._run_fn = run_fn
        if journal is not None:
            self._journal = journal
        else:
            self._journal = (
                Journal(self.config.journal_path)
                if self.config.journal_path else None
            )
        #: Outcomes whose journal append failed (disk full); flushed in
        #: order as soon as an append succeeds again, and once more at
        #: the end of the run.
        self._journal_backlog: List[RunOutcome] = []

    # ------------------------------------------------------------------
    # Supervision hooks — no-ops here; CampaignSupervisor overrides them
    # ------------------------------------------------------------------

    def _now(self) -> float:
        """The executor's clock; injectable for clock-skew chaos."""
        return time.monotonic()

    def _prepare_job(self, job, attempt: int):
        """Gate/augment a job just before submission.

        Returns ``(job, None)`` to submit (possibly a modified copy),
        ``(job, outcome)`` to record ``outcome`` without running, or
        ``(job, DEFER)`` to push the job to the back of the queue.
        """
        return job, None

    def _deadline_for(self, job, now: float) -> Optional[float]:
        """Wall-clock deadline for a submission (None = unbounded)."""
        if self.config.timeout:
            return now + self.config.timeout
        return None

    def _tick(self, inflight: Dict) -> List[Tuple[object, BaseException, str]]:
        """Called once per pool-loop iteration with the live in-flight
        table (future → :class:`_InFlight`, mutable).  Returns a list of
        ``(future, exception, kind)`` preemptions."""
        return []

    def _available_slots(self) -> int:
        """How many jobs may be in flight right now."""
        return self.config.workers

    def _draining(self) -> bool:
        """True once a graceful shutdown was requested: finish what is
        in flight, submit nothing new."""
        return False

    def _max_wait(self) -> Optional[float]:
        """Upper bound on one blocking wait (None = event-driven only).
        The supervisor returns its poll interval so ticks keep flowing."""
        return None

    def _expiry_now(self) -> float:
        """The clock the wall-clock expiry scan compares deadlines to.

        The supervisor returns the timestamp its tick observed, so a
        clock jump landing *between* the tick (which rebases deadlines)
        and the expiry scan cannot mass-expire healthy workers.
        """
        return self._now()

    def _outcome_recorded(self, outcome: RunOutcome, job) -> None:
        """Called after an outcome is recorded (not for journal replays)."""

    def _journal_degraded(self, exc: BaseException) -> None:
        """Called when a journal append fails and buffering begins."""
        if self.config.verbose:
            print(f"[runner] journal write failed ({exc}); buffering "
                  f"outcomes until the journal recovers", file=sys.stderr)

    # ------------------------------------------------------------------

    def run(
        self, jobs: Sequence, run_fn: Optional[Callable] = None
    ) -> SuiteResult:
        """Run every job; never raises for individual job failures.

        ``run_fn`` overrides the constructor's job function for this
        batch (``analysis.sweep`` passes a thunk-caller for its
        :class:`~repro.runner.jobs.CallableJob` jobs).
        """
        if run_fn is not None:
            previous, self._run_fn = self._run_fn, run_fn
            try:
                return self.run(jobs)
            finally:
                self._run_fn = previous
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            dup = next(k for k in keys if keys.count(k) > 1)
            raise ConfigError(
                f"duplicate job key {dup!r}; every job needs a unique key",
                field="jobs",
            )

        outcomes: Dict[str, RunOutcome] = {}
        pending: List = list(jobs)

        if self._journal is not None and self.config.resume:
            replayed = self._replay_journal(pending, outcomes)
            pending = [job for job in pending if job.key not in outcomes]
            if self.config.verbose and replayed:
                print(
                    f"[runner] resumed {replayed} completed jobs from "
                    f"{self._journal.path}", file=sys.stderr,
                )

        if pending:
            if self.config.workers == 0:
                self._run_inline(pending, outcomes)
            else:
                self._run_pool(pending, outcomes)

        self._flush_journal()  # last chance for backlogged records
        interrupted = any(k not in outcomes for k in keys)
        return SuiteResult(
            outcomes=[outcomes[k] for k in keys if k in outcomes],
            interrupted=interrupted,
        )

    # ------------------------------------------------------------------

    def _replay_journal(self, jobs: Sequence, outcomes: Dict) -> int:
        records = self._journal.load()
        replayed = 0
        for job in jobs:
            rec = records.get(job.key)
            if rec and rec.get("status") == "ok":
                done = Journal.decode_completed(rec)
                if done is not None:
                    outcomes[job.key] = done
                    replayed += 1
        return replayed

    def _flush_journal(self, outcome: Optional[RunOutcome] = None) -> None:
        """Append ``outcome`` (and any backlog) to the journal, keeping
        submission order; on failure the records stay buffered."""
        if outcome is not None:
            self._journal_backlog.append(outcome)
        if self._journal is None:
            self._journal_backlog.clear()
            return
        while self._journal_backlog:
            head = self._journal_backlog[0]
            try:
                self._journal.append(head)
            except (OSError, ResourceError) as exc:
                self._journal_degraded(exc)
                return
            self._journal_backlog.pop(0)

    def _record(self, outcomes: Dict, outcome: RunOutcome, job=None) -> None:
        outcomes[outcome.key] = outcome
        self._flush_journal(outcome)
        if self.config.verbose:
            if outcome.ok:
                print(f"[runner] ok     {outcome.key} "
                      f"({outcome.elapsed:.1f}s)", file=sys.stderr)
            else:
                print(f"[runner] FAILED {outcome.key} "
                      f"[{outcome.kind}] {outcome.message}", file=sys.stderr)
        self._outcome_recorded(outcome, job)

    def _backoff(self, attempt: int) -> float:
        return self.config.backoff_base * (
            self.config.backoff_factor ** (attempt - 1)
        )

    def _may_retry(self, kind: str, attempt: int) -> bool:
        if attempt > self.config.retries:
            return False
        if kind in ("trace", "config"):
            return False  # deterministic job defects: retry cannot help
        if kind == "timeout":
            return self.config.retry_timeouts
        return True  # crash / worker-lost / resource

    # ------------------------------------------------------------------
    # Inline backend (workers=0): isolation + retry, no preemption
    # ------------------------------------------------------------------

    def _run_inline(self, jobs: Sequence, outcomes: Dict) -> None:
        for job in jobs:
            attempt = 1
            start = time.monotonic()
            while True:
                try:
                    result = self._run_fn(job, attempt)
                except KeyboardInterrupt:
                    raise  # journal already holds the finished jobs
                except BaseException as exc:  # noqa: BLE001 — isolation point
                    if isinstance(exc, (SystemExit, GeneratorExit)):
                        raise
                    failed = failed_run_from(
                        job.key, exc, attempt, time.monotonic() - start,
                        worker_pid=os.getpid(),
                    )
                    if self._may_retry(failed.kind, attempt):
                        time.sleep(self._backoff(attempt))
                        attempt += 1
                        continue
                    self._record(outcomes, failed, job)
                    break
                else:
                    self._record(outcomes, CompletedRun(
                        key=job.key, result=result, attempts=attempt,
                        elapsed=time.monotonic() - start,
                        worker_pid=os.getpid(),
                    ), job)
                    break

    # ------------------------------------------------------------------
    # Process-pool backend (workers >= 1)
    # ------------------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platforms without fork
            ctx = multiprocessing.get_context()
        return ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=ctx,
            initializer=_bind_worker_to_parent,
        )

    @staticmethod
    def _kill_pool(executor: ProcessPoolExecutor) -> None:
        """Tear a pool down even if a worker is wedged."""
        procs = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.kill()  # SIGKILL: uncatchable, so a wedged or
            except Exception:  # handler-shadowed worker still dies
                pass

    def _run_pool(self, jobs: Sequence, outcomes: Dict) -> None:
        cfg = self.config
        queue = deque((job, 1) for job in jobs)  # (job, attempt)
        delayed: List[Tuple[float, object, int]] = []  # (ready_at, job, att)
        inflight: Dict = {}  # future -> _InFlight
        executor = self._new_pool()

        def submit(job, attempt: int) -> None:
            now = self._now()
            fut = executor.submit(tag_worker, self._run_fn, job, attempt)
            inflight[fut] = _InFlight(
                job=job, attempt=attempt,
                deadline=self._deadline_for(job, now), started=now,
            )

        def fail_or_retry(job, attempt, exc, elapsed, kind=None,
                          worker_pid=None) -> None:
            failed = failed_run_from(job.key, exc, attempt, elapsed,
                                     kind=kind, worker_pid=worker_pid)
            if self._may_retry(failed.kind, attempt):
                delayed.append(
                    (self._now() + self._backoff(attempt), job, attempt + 1)
                )
            else:
                self._record(outcomes, failed, job)

        def rebuild_pool() -> None:
            """Kill the pool; resubmit unaffected in-flight jobs."""
            nonlocal executor
            for fut, entry in list(inflight.items()):
                queue.appendleft((entry.job, entry.attempt))
            inflight.clear()
            self._kill_pool(executor)
            executor = self._new_pool()

        try:
            while queue or inflight or delayed:
                if self._draining() and not inflight:
                    break  # graceful shutdown: nothing new gets submitted
                now = self._now()
                still_delayed = []
                for ready_at, job, attempt in delayed:
                    if ready_at <= now:
                        queue.append((job, attempt))
                    else:
                        still_delayed.append((ready_at, job, attempt))
                delayed = still_delayed

                deferred: List[Tuple[object, int]] = []
                while (queue and len(inflight) < self._available_slots()
                       and not self._draining()):
                    job, attempt = queue.popleft()
                    prepared, pre = self._prepare_job(job, attempt)
                    if pre is DEFER:
                        deferred.append((job, attempt))
                        continue
                    if pre is not None:
                        self._record(outcomes, pre, job)
                        continue
                    submit(prepared, attempt)
                queue.extend(deferred)
                # Safety valve: every remaining job was deferred and
                # nothing is in flight or delayed to unblock it.  With a
                # correct breaker this is unreachable; without the break
                # it would spin forever.
                stalled = (bool(deferred) and not inflight and not delayed
                           and len(queue) == len(deferred))

                waits = []
                if delayed:
                    waits.append(min(r for r, _, _ in delayed) - now)
                deadlines = [e.deadline for e in inflight.values()
                             if e.deadline is not None]
                if deadlines:
                    waits.append(min(deadlines) - now)
                cap = self._max_wait()
                if cap is not None:
                    waits.append(cap)
                wait_for = max(0.01, min(waits)) if waits else None

                if inflight:
                    done, _ = wait(
                        set(inflight), timeout=wait_for,
                        return_when=FIRST_COMPLETED,
                    )
                else:
                    if stalled:
                        break
                    if wait_for:
                        time.sleep(wait_for)
                    done = set()

                pool_broken = False
                for fut in done:
                    entry = inflight.pop(fut, None)
                    if entry is None:  # already handled via a pool rebuild
                        continue
                    job, attempt = entry.job, entry.attempt
                    elapsed = self._now() - entry.started
                    try:
                        result = fut.result()
                    except BrokenProcessPool as exc:
                        fail_or_retry(job, attempt, exc, elapsed,
                                      kind="worker-lost")
                        pool_broken = True
                    except BaseException as exc:  # noqa: BLE001
                        if isinstance(exc, KeyboardInterrupt):
                            raise
                        fail_or_retry(job, attempt, exc, elapsed)
                    else:
                        pid = None
                        if isinstance(result, TaggedResult):
                            pid = result.worker_pid
                            result = result.result
                        self._record(outcomes, CompletedRun(
                            key=job.key, result=result, attempts=attempt,
                            elapsed=elapsed, worker_pid=pid,
                        ), job)

                # Supervision tick first (it may rebase deadlines after a
                # clock-skew event), then the wall-clock expiry scan.
                preempted = False
                for fut, exc, kind in self._tick(inflight):
                    entry = inflight.get(fut)
                    if entry is None or fut.done():
                        continue  # completed in the meantime: keep result
                    inflight.pop(fut)
                    fail_or_retry(entry.job, entry.attempt, exc,
                                  self._now() - entry.started, kind=kind)
                    preempted = True

                now = self._expiry_now()
                expired = [
                    fut for fut, e in inflight.items()
                    if e.deadline is not None and e.deadline <= now
                    and not fut.done()
                ]
                for fut in expired:
                    entry = inflight.pop(fut)
                    job = entry.job
                    budget = (cfg.timeout if cfg.timeout
                              else (entry.deadline - entry.started))
                    exc = JobTimeout(
                        f"job exceeded {budget:.1f}s wall-clock budget",
                        trace=getattr(job, "trace", None),
                        prefetcher=getattr(job, "l1d", None),
                        timeout=budget,
                    )
                    fail_or_retry(job, entry.attempt, exc,
                                  now - entry.started, kind="timeout")
                if expired or preempted or pool_broken:
                    rebuild_pool()

            executor.shutdown(wait=True)
        except BaseException:
            # Flush nothing further — the journal is already up to date
            # for every finished job; kill stragglers and propagate.
            self._kill_pool(executor)
            raise
