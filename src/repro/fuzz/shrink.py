"""Delta-debugging minimizer for failing fuzz cases.

Classic ddmin (Zeller & Hildebrandt) over the trace records, followed
by a greedy pass that strips config overrides back to their defaults:
the shrunk repro should blame as few records and as few knobs as
possible.  The predicate is *bucket identity* — a candidate counts as
"still failing" only when the oracle reproduces the **same signature**,
so shrinking can never morph one bug into a smaller, different one.

Everything here is deterministic by construction: no RNG, a fixed
chunk-splitting schedule, and a hard cap on oracle evaluations so a
pathological case cannot stall a campaign.  Three runs over the same
finding produce the same shrunk case, byte for byte — the shrinker
self-test in tier-1 asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.fuzz.cases import FuzzCase
from repro.fuzz.oracle import run_case

__all__ = ["ShrinkResult", "ddmin", "shrink_case"]

#: Oracle evaluations allowed per shrink (records + config passes).
DEFAULT_EVAL_BUDGET = 200

#: Config keys the greedy pass tries to drop, in a fixed order.
_DROPPABLE = ("plant_divergence",)  # never dropped: it *is* the bug
_RESETTABLE = (("chunk_size", 0), ("warmup_fraction", 0.2), ("l2", "none"))


@dataclass
class ShrinkResult:
    case: FuzzCase
    signature: str
    original_records: int
    evaluations: int
    exhausted: bool  # True when the eval budget cut the search short


def ddmin(items: List, test: Callable[[List], bool],
          budget: List[int]) -> List:
    """Minimal failing sublist of ``items`` under complement reduction.

    ``test(sub)`` returns True when ``sub`` still fails.  ``budget`` is
    a single-element mutable counter of remaining evaluations; reaching
    zero stops the search at the current (still-failing) candidate.
    """
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk:]
            if not complement:
                continue
            if budget[0] <= 0:
                return items
            budget[0] -= 1
            if test(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    return items


def shrink_case(case: FuzzCase, finding_signature: str,
                eval_budget: int = DEFAULT_EVAL_BUDGET,
                max_records: Optional[int] = None) -> ShrinkResult:
    """Minimise ``case`` while it keeps failing with the same signature."""
    budget = [eval_budget]

    def fails(candidate: FuzzCase) -> bool:
        found = run_case(candidate)
        return found is not None and found.signature == finding_signature

    def with_records(records) -> FuzzCase:
        return FuzzCase(family=case.family, seed=case.seed,
                        records=records, config=dict(case.config),
                        provenance=case.provenance)

    # Pass 1: ddmin over the records.
    records = ddmin(list(case.records),
                    lambda recs: fails(with_records(recs)), budget)

    # Pass 2: greedily reset config knobs to their defaults.
    config = dict(case.config)
    for key, default in _RESETTABLE:
        if key not in config or config.get(key) == default:
            continue
        trial = dict(config)
        trial[key] = default
        if budget[0] <= 0:
            break
        budget[0] -= 1
        if fails(FuzzCase(family=case.family, seed=case.seed,
                          records=records, config=trial,
                          provenance=case.provenance)):
            config = trial
    berti = dict(config.get("berti", {}))
    for key in sorted(berti):
        trial_berti = {k: v for k, v in berti.items() if k != key}
        trial = dict(config)
        if trial_berti:
            trial["berti"] = trial_berti
        else:
            trial.pop("berti", None)
        if budget[0] <= 0:
            break
        budget[0] -= 1
        if fails(FuzzCase(family=case.family, seed=case.seed,
                          records=records, config=trial,
                          provenance=case.provenance)):
            config = trial
            berti = trial_berti

    shrunk = FuzzCase(
        family=case.family, seed=case.seed, records=records, config=config,
        provenance=(f"shrunk from {case.case_id} "
                    f"({len(case.records)} -> {len(records)} records); "
                    + case.provenance),
        expect_finding=finding_signature,
    )
    exhausted = budget[0] <= 0 or (
        max_records is not None and len(records) > max_records)
    return ShrinkResult(
        case=shrunk, signature=finding_signature,
        original_records=len(case.records),
        evaluations=eval_budget - budget[0], exhausted=exhausted,
    )
