/* repro.native kernel: bit-exact C transcription of the fused batched
 * span loop (repro/simulator/batched.py) plus the Berti kernel hooks
 * (repro/core/berti.py over history_table.py / delta_table.py).
 *
 * The layout header (repro_native_layout.h) is generated from
 * repro/native/marshal.py at build time; the R_/FR_/B_ indexes are the
 * only ABI between Python and this file.  Every arithmetic expression
 * below mirrors the Python source exactly: int64 two's-complement
 * masking matches Python's & on 2^k-1 masks, imod/ifdiv reproduce
 * Python's % and //, and all float work is IEEE double in source order
 * (compiled -O2 WITHOUT -ffast-math).
 *
 * Contract: repro_run_span(R, F, B) runs records [R[LO], R[HI]) and
 * returns 0 on success or R[ERR] after an error longjmp.  On both
 * paths every struct-cached scalar and span-delta counter is written
 * back to R/F before returning (the Python side decides whether to
 * flush the deltas).
 */
#include <stdint.h>
#include <string.h>
#include <setjmp.h>

#include "repro_native_layout.h"

typedef int64_t i64;
typedef uint64_t u64;
typedef double f64;

#define LPB 6
#define POM 63
#define LATENCY_CAP 4096
#define MAX_RRPV 3
#define PSEL_MAX 1023

#define POL_LRU 0
#define POL_SRRIP 1
#define POL_DRRIP 2

static i64 *R;
static f64 *F;
static void **B;
static jmp_buf err_jmp;

/* Python % and // for possibly-negative left operands. */
static inline i64 imod(i64 a, i64 m) {
    i64 r = a % m;
    return r < 0 ? r + m : r;
}

static inline i64 ifdiv(i64 a, i64 b) {
    i64 q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        q--;
    return q;
}

/* ------------------------------------------------------------------ */
/* Span-delta counters: exactly the batched engine's flush list.       */
/* ------------------------------------------------------------------ */

#define DELTA_LIST(X)                                                  \
    X(D_DT_ACC) X(D_DT_HIT)                                            \
    X(D_L1_ACC) X(D_L1_HIT) X(D_L1_MISS) X(D_L1_USEFUL) X(D_L1_LATE)   \
    X(D_L2_ACC) X(D_L2_HIT) X(D_L2_MISS) X(D_L2_USEFUL)                \
    X(D_LLC_ACC) X(D_LLC_HIT) X(D_LLC_MISS) X(D_LLC_USEFUL)            \
    X(D_H_LLC_ACC) X(D_H_LLC_MISS) X(D_H_DRAM)                         \
    X(D_T12_DEM) X(D_T12_PF) X(D_T2L_DEM) X(D_T2L_PF)                  \
    X(D_TLD_DEM) X(D_TLD_PF)                                           \
    X(D_PF_SUGG) X(D_PF_ISSUED) X(D_PF_FILLS)                          \
    X(D_PF_USEFUL) X(D_PF_LATE) X(D_PF_PROMOTED)                       \
    X(D_PF_DTRANS) X(D_PF_DDUP) X(D_PF_DQ) X(D_PF_DM)                  \
    X(D_PF2_USEFUL) X(D_PF2_LATE) X(D_PF2_PROMOTED)                    \
    X(D_STLB_PROBES) X(D_STLB_HITS)                                    \
    X(D_M1_MERGES) X(D_M2_MERGES)                                      \
    X(D_CROSS)

#define DECL_DELTA(n) static i64 d_##n;
DELTA_LIST(DECL_DELTA)
#undef DECL_DELTA

/* ------------------------------------------------------------------ */
/* Mersenne Twister: CPython's _randommodule.c genrand_uint32/random_  */
/* random over the 625-word (state + index) exported buffer.           */
/* ------------------------------------------------------------------ */

#define MT_N 624
#define MT_M 397

static u64 mt_next(i64 *mt) {
    i64 mti = mt[MT_N];
    u64 y;
    if (mti >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (((u64)mt[kk]) & 0x80000000ULL)
                | (((u64)mt[kk + 1]) & 0x7fffffffULL);
            mt[kk] = (i64)(((u64)mt[kk + MT_M]) ^ (y >> 1)
                           ^ ((y & 1) ? 0x9908b0dfULL : 0ULL));
        }
        for (; kk < MT_N - 1; kk++) {
            y = (((u64)mt[kk]) & 0x80000000ULL)
                | (((u64)mt[kk + 1]) & 0x7fffffffULL);
            mt[kk] = (i64)(((u64)mt[kk + (MT_M - MT_N)]) ^ (y >> 1)
                           ^ ((y & 1) ? 0x9908b0dfULL : 0ULL));
        }
        y = (((u64)mt[MT_N - 1]) & 0x80000000ULL)
            | (((u64)mt[0]) & 0x7fffffffULL);
        mt[MT_N - 1] = (i64)(((u64)mt[MT_M - 1]) ^ (y >> 1)
                             ^ ((y & 1) ? 0x9908b0dfULL : 0ULL));
        mti = 0;
    }
    y = (u64)mt[mti];
    mt[MT_N] = mti + 1;
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680ULL;
    y ^= (y << 15) & 0xefc60000ULL;
    y ^= y >> 18;
    return y & 0xffffffffULL;
}

static f64 mt_random(i64 *mt) {
    u64 a = mt_next(mt) >> 5;
    u64 b = mt_next(mt) >> 6;
    return ((f64)a * 67108864.0 + (f64)b) * (1.0 / 9007199254740992.0);
}

/* ------------------------------------------------------------------ */
/* Caches                                                              */
/* ------------------------------------------------------------------ */

typedef struct {
    i64 sets, ways, lat, pol, set_mask;
    i64 psel;
    i64 pf_fills, dem_fills, useless, wb;
    i64 *tag, *valid, *dirty, *pref, *arr, *pflat, *ip, *vline, *org;
    i64 *mat, *polc, *pola, *mtbuf;
} CCache;

static CCache CL1, CL2, CLL;

#define LOAD_CACHE(c, P) do {                                          \
    (c)->sets = R[R_##P##_SETS]; (c)->ways = R[R_##P##_WAYS];          \
    (c)->lat = R[R_##P##_LAT]; (c)->pol = R[R_##P##_POL];              \
    (c)->set_mask = (c)->sets - 1; (c)->psel = R[R_##P##_PSEL];        \
    (c)->pf_fills = R[R_##P##_PF_FILLS];                               \
    (c)->dem_fills = R[R_##P##_DEM_FILLS];                             \
    (c)->useless = R[R_##P##_USELESS]; (c)->wb = R[R_##P##_WB];        \
    (c)->tag = (i64 *)B[B_##P##_TAG];                                  \
    (c)->valid = (i64 *)B[B_##P##_VALID];                              \
    (c)->dirty = (i64 *)B[B_##P##_DIRTY];                              \
    (c)->pref = (i64 *)B[B_##P##_PREF];                                \
    (c)->arr = (i64 *)B[B_##P##_ARR];                                  \
    (c)->pflat = (i64 *)B[B_##P##_PFLAT];                              \
    (c)->ip = (i64 *)B[B_##P##_IP];                                    \
    (c)->vline = (i64 *)B[B_##P##_VLINE];                              \
    (c)->org = (i64 *)B[B_##P##_ORG];                                  \
    (c)->mat = (i64 *)B[B_##P##_MAT];                                  \
    (c)->polc = (i64 *)B[B_##P##_POLC];                                \
    (c)->pola = (i64 *)B[B_##P##_POLA];                                \
    (c)->mtbuf = (i64 *)B[B_##P##_MT];                                 \
} while (0)

#define SAVE_CACHE(c, P) do {                                          \
    R[R_##P##_PSEL] = (c)->psel;                                       \
    R[R_##P##_PF_FILLS] = (c)->pf_fills;                               \
    R[R_##P##_DEM_FILLS] = (c)->dem_fills;                             \
    R[R_##P##_USELESS] = (c)->useless; R[R_##P##_WB] = (c)->wb;        \
} while (0)

static i64 cache_way(CCache *c, i64 s, i64 line) {
    if (!c->mat[s])
        return -1;
    i64 base = s * c->ways;
    i64 w;
    for (w = 0; w < c->ways; w++) {
        i64 i = base + w;
        if (c->valid[i] && c->tag[i] == line)
            return w;
    }
    return -1;
}

static void cache_touch(CCache *c, i64 s, i64 w) {
    i64 i = s * c->ways + w;
    c->mat[s] = 2;  /* touched: the span import must re-read this set */
    if (c->pol == POL_LRU) {
        i64 clock = c->polc[s] + 1;
        c->polc[s] = clock;
        c->pola[i] = clock;
    } else {
        c->pola[i] = 0;
    }
}

static i64 cache_victim(CCache *c, i64 s) {
    i64 base = s * c->ways;
    i64 w;
    if (c->pol == POL_LRU) {
        i64 best = 0, bestv = c->pola[base];
        for (w = 1; w < c->ways; w++) {
            if (c->pola[base + w] < bestv) {
                bestv = c->pola[base + w];
                best = w;
            }
        }
        return best;
    }
    for (;;) {
        for (w = 0; w < c->ways; w++)
            if (c->pola[base + w] == MAX_RRPV)
                return w;
        for (w = 0; w < c->ways; w++)
            c->pola[base + w] += 1;
    }
}

static i64 drrip_insertion(CCache *c, i64 s) {
    i64 leader = s & 31;
    int brrip;
    if (leader == 0)
        brrip = 0;
    else if (leader == 16)
        brrip = 1;
    else
        brrip = c->psel > PSEL_MAX / 2;
    if (brrip) {
        if (mt_random(c->mtbuf) < 1.0 / 32.0)
            return MAX_RRPV - 1;
        return MAX_RRPV;
    }
    return MAX_RRPV - 1;
}

static void drrip_record_miss(CCache *c, i64 s) {
    i64 leader = s & 31;
    if (leader == 0) {
        if (c->psel < PSEL_MAX)
            c->psel++;
    } else if (leader == 16) {
        if (c->psel > 0)
            c->psel--;
    }
}

/* Cache.fill: returns the dirty victim's tag (for the writeback chain)
 * or -1.  Clean evictions still run the useless-prefetch accounting
 * (the eviction hook's account_useless, inlined for origin 1/2). */
static i64 cache_fill(CCache *c, i64 line, i64 now, i64 arrival,
                      i64 is_prefetch, i64 ip, i64 vline, i64 pflat_v,
                      i64 origin) {
    i64 s = line & c->set_mask;
    i64 ways = c->ways;
    i64 base = s * ways;
    i64 w = cache_way(c, s, line);
    i64 victim_tag = -1;
    if (c->mat[s])
        c->mat[s] = 2;
    if (w < 0) {
        i64 k, i;
        if (!c->mat[s]) {
            /* Lazy set materialisation: fresh CacheLine rows + the
             * policy row's virgin values (ages 0 / RRPVs MAX). */
            c->mat[s] = 2;
            i64 fill_pola = (c->pol == POL_LRU) ? 0 : MAX_RRPV;
            for (k = 0; k < ways; k++) {
                i = base + k;
                c->tag[i] = -1;
                c->valid[i] = 0;
                c->dirty[i] = 0;
                c->pref[i] = 0;
                c->arr[i] = 0;
                c->pflat[i] = 0;
                c->ip[i] = 0;
                c->vline[i] = -1;
                c->org[i] = 0;
                c->pola[i] = fill_pola;
            }
            c->polc[s] = 0;
        }
        i64 nvalid = 0;
        for (k = 0; k < ways; k++)
            if (c->valid[base + k])
                nvalid++;
        if (nvalid >= ways) {
            w = cache_victim(c, s);
        } else {
            w = -1;
            for (k = 0; k < ways; k++) {
                if (!c->valid[base + k]) {
                    w = k;
                    break;
                }
            }
            if (w < 0)
                w = cache_victim(c, s);
        }
        i = base + w;
        if (c->valid[i]) {
            if (c->pref[i]) {
                c->useless++;
                if (c->org[i] == 1)
                    R[R_PF1_USELESS]++;
                else if (c->org[i] == 2)
                    R[R_PF2_USELESS]++;
            }
            if (c->dirty[i]) {
                c->wb++;
                victim_tag = c->tag[i];
            }
        }
        c->tag[i] = line;
        c->valid[i] = 1;
        c->dirty[i] = 0;
        c->pref[i] = is_prefetch;
        c->arr[i] = arrival;
        c->pflat[i] = pflat_v;
        c->ip[i] = ip;
        c->vline[i] = vline;
        c->org[i] = is_prefetch ? origin : 0;
        if (c->pol == POL_LRU) {
            i64 clock = c->polc[s] + 1;
            c->polc[s] = clock;
            c->pola[i] = clock;
        } else if (c->pol == POL_SRRIP) {
            c->pola[i] = MAX_RRPV - 1;
        } else {
            c->pola[i] = drrip_insertion(c, s);
        }
    } else {
        i64 i = base + w;
        if (arrival < c->arr[i])
            c->arr[i] = arrival;
        if (!is_prefetch)
            c->pref[i] = 0;
    }
    if (is_prefetch)
        c->pf_fills++;
    else
        c->dem_fills++;
    return victim_tag;
}

static void cache_mark_dirty(CCache *c, i64 line) {
    i64 s = line & c->set_mask;
    i64 w = cache_way(c, s, line);
    if (w >= 0) {
        c->dirty[s * c->ways + w] = 1;
        c->mat[s] = 2;
    }
}

/* ------------------------------------------------------------------ */
/* DRAM                                                                */
/* ------------------------------------------------------------------ */

typedef struct {
    i64 banks, lpr, trp, trcd, tcas, wq_size, pendw_len;
    i64 reads, writes, rowh, rowm, rowc, lat_total;
    f64 bus_free, burst, wq_thresh;
    i64 *bank_row, *bank_busy, *pendw;
} CDram;

static CDram DR;

static i64 dram_access(i64 pline, i64 now) {
    i64 row = ifdiv(pline, DR.lpr);
    i64 bank = imod(row, DR.banks);
    i64 busy = DR.bank_busy[bank];
    i64 start = now > busy ? now : busy;
    i64 open_row = DR.bank_row[bank];
    i64 prep;
    if (open_row == row) {
        DR.rowh++;
        prep = 0;
    } else if (open_row == -1) {
        DR.rowm++;
        prep = DR.trcd;
    } else {
        DR.rowc++;
        prep = DR.trp + DR.trcd;
    }
    DR.bank_row[bank] = row;
    f64 data_start = (f64)(start + prep + DR.tcas);
    if (DR.bus_free > data_start)
        data_start = DR.bus_free;
    f64 done = data_start + DR.burst;
    DR.bus_free = done;
    DR.bank_busy[bank] = (i64)((f64)(start + prep) + DR.burst);
    return (i64)done;
}

static void dram_drain(i64 now) {
    i64 i;
    for (i = 0; i < DR.pendw_len; i++)
        dram_access(DR.pendw[i], now);
    DR.pendw_len = 0;
}

static i64 dram_read(i64 pline, i64 now) {
    if ((f64)DR.pendw_len >= DR.wq_thresh)
        dram_drain(now);
    i64 done = dram_access(pline, now);
    DR.reads++;
    DR.lat_total += done - now;
    return done;
}

static void dram_write(i64 pline, i64 now) {
    DR.writes++;
    DR.pendw[DR.pendw_len++] = pline;
    if (DR.pendw_len >= DR.wq_size)
        dram_drain(now);
}

/* ------------------------------------------------------------------ */
/* MSHRs                                                               */
/* ------------------------------------------------------------------ */

typedef struct {
    i64 size, count, min_ready, last_expire, allocs, fullrej;
    i64 *line, *alloc, *ready, *ispf, *ip, *vline, *merged;
} CMshr;

static CMshr M1, M2;

#define LOAD_MSHR(m, P) do {                                           \
    (m)->size = R[R_##P##_SIZE]; (m)->count = R[R_##P##_COUNT];        \
    (m)->min_ready = R[R_##P##_MINREADY];                              \
    (m)->last_expire = R[R_##P##_LASTEXP];                             \
    (m)->allocs = R[R_##P##_ALLOCS];                                   \
    (m)->fullrej = R[R_##P##_FULLREJ];                                 \
    (m)->line = (i64 *)B[B_##P##_LINE];                                \
    (m)->alloc = (i64 *)B[B_##P##_ALLOC];                              \
    (m)->ready = (i64 *)B[B_##P##_READY];                              \
    (m)->ispf = (i64 *)B[B_##P##_ISPF];                                \
    (m)->ip = (i64 *)B[B_##P##_IP];                                    \
    (m)->vline = (i64 *)B[B_##P##_VLINE];                              \
    (m)->merged = (i64 *)B[B_##P##_MERGED];                            \
} while (0)

#define SAVE_MSHR(m, P) do {                                           \
    R[R_##P##_COUNT] = (m)->count;                                     \
    R[R_##P##_MINREADY] = (m)->min_ready;                              \
    R[R_##P##_LASTEXP] = (m)->last_expire;                             \
    R[R_##P##_ALLOCS] = (m)->allocs;                                   \
    R[R_##P##_FULLREJ] = (m)->fullrej;                                 \
} while (0)

/* MSHR._expire: order-preserving compaction == dict insertion order. */
static void mshr_expire(CMshr *m, i64 now) {
    if (now == m->last_expire)
        return;
    m->last_expire = now;
    if (!m->count || now < m->min_ready)
        return;
    i64 n = 0, mn = 0;
    int have = 0;
    i64 i;
    for (i = 0; i < m->count; i++) {
        if (m->ready[i] > now) {
            if (n != i) {
                m->line[n] = m->line[i];
                m->alloc[n] = m->alloc[i];
                m->ready[n] = m->ready[i];
                m->ispf[n] = m->ispf[i];
                m->ip[n] = m->ip[i];
                m->vline[n] = m->vline[i];
                m->merged[n] = m->merged[i];
            }
            if (!have || m->ready[n] < mn) {
                mn = m->ready[n];
                have = 1;
            }
            n++;
        }
    }
    m->count = n;
    m->min_ready = have ? mn : 0;
}

static i64 mshr_find(CMshr *m, i64 line) {
    i64 i;
    for (i = 0; i < m->count; i++)
        if (m->line[i] == line)
            return i;
    return -1;
}

static void mshr_allocate(CMshr *m, i64 line, i64 now, i64 ready,
                          i64 ispf, i64 ip, i64 vline) {
    mshr_expire(m, now);
    if (m->count >= m->size) {
        m->fullrej++;
        R[R_ERR] = 1;
        R[R_ERR_A] = m->count;
        R[R_ERR_B] = m->size;
        R[R_ERR_C] = now;
        R[R_ERR_D] = line;
        longjmp(err_jmp, 1);
    }
    if (m->count == 0 || ready < m->min_ready)
        m->min_ready = ready;
    i64 i = m->count++;
    m->line[i] = line;
    m->alloc[i] = now;
    m->ready[i] = ready;
    m->ispf[i] = ispf;
    m->ip[i] = ip;
    m->vline[i] = vline;
    m->merged[i] = 0;
    m->allocs++;
}

/* ------------------------------------------------------------------ */
/* TLBs + page table                                                   */
/* ------------------------------------------------------------------ */

typedef struct {
    i64 nsets, ways, row;
    i64 *vp, *pp, *len;
} CTlb;

static CTlb TDT, TST;

#define LOAD_TLB(t, P) do {                                            \
    (t)->nsets = R[R_##P##_NSETS]; (t)->ways = R[R_##P##_WAYS];        \
    (t)->row = (t)->ways + 1;                                          \
    (t)->vp = (i64 *)B[B_##P##_VP];                                    \
    (t)->pp = (i64 *)B[B_##P##_PP];                                    \
    (t)->len = (i64 *)B[B_##P##_LEN];                                  \
} while (0)

static i64 tlb_get(CTlb *t, i64 vpage) {
    i64 s = imod(vpage, t->nsets);
    i64 base = s * t->row;
    i64 n = t->len[s];
    i64 i;
    for (i = 0; i < n; i++)
        if (t->vp[base + i] == vpage)
            return t->pp[base + i];
    return -1;
}

static void tlb_mru(CTlb *t, i64 vpage) {
    i64 s = imod(vpage, t->nsets);
    i64 base = s * t->row;
    i64 n = t->len[s];
    i64 i, j;
    for (i = 0; i < n; i++) {
        if (t->vp[base + i] == vpage) {
            i64 pp = t->pp[base + i];
            for (j = i; j < n - 1; j++) {
                t->vp[base + j] = t->vp[base + j + 1];
                t->pp[base + j] = t->pp[base + j + 1];
            }
            t->vp[base + n - 1] = vpage;
            t->pp[base + n - 1] = pp;
            return;
        }
    }
}

static void tlb_insert(CTlb *t, i64 vpage, i64 ppage) {
    i64 s = imod(vpage, t->nsets);
    i64 base = s * t->row;
    i64 n = t->len[s];
    i64 i, j;
    for (i = 0; i < n; i++) {
        if (t->vp[base + i] == vpage) {
            for (j = i; j < n - 1; j++) {
                t->vp[base + j] = t->vp[base + j + 1];
                t->pp[base + j] = t->pp[base + j + 1];
            }
            n--;
            break;
        }
    }
    t->vp[base + n] = vpage;
    t->pp[base + n] = ppage;
    n++;
    if (n > t->ways) {
        for (j = 0; j < n - 1; j++) {
            t->vp[base + j] = t->vp[base + j + 1];
            t->pp[base + j] = t->pp[base + j + 1];
        }
        n--;
    }
    t->len[s] = n;
}

static i64 stlb_lookup(i64 vpage) {
    R[R_ST_ACC]++;
    i64 pp = tlb_get(&TST, vpage);
    if (pp < 0)
        return -1;
    tlb_mru(&TST, vpage);
    R[R_ST_HITS]++;
    return pp;
}

/* Open-addressed page-table hash (marshal exports the same probe
 * sequence).  Keys are nonnegative vpages; -1 marks an empty slot. */
static i64 *HK, *HV;
static i64 HMASK;
static i64 *WVP, *WPP;

static i64 pt_find(i64 vpage) {
    u64 h = ((u64)vpage * 0x9E3779B97F4A7C15ULL) >> 32;
    i64 i = (i64)(h & (u64)HMASK);
    for (;;) {
        i64 k = HK[i];
        if (k == vpage)
            return i;
        if (k == -1)
            return -1;
        i = (i + 1) & HMASK;
    }
}

/* MMU._physical_page (asid == 0 is a runner guard) + the walk log that
 * lets the marshal replay dict insertion order. */
static i64 physical_page(i64 vpage) {
    i64 slot = pt_find(vpage);
    if (slot >= 0)
        return HV[slot];
    i64 n = R[R_MMU_NEXT_PPAGE]++;
    i64 scrambled = (i64)(((u64)n * 2654435761ULL) & 0xFFFFFULL);
    i64 ppage = scrambled ^ (n >> 8);
    u64 h = ((u64)vpage * 0x9E3779B97F4A7C15ULL) >> 32;
    i64 i = (i64)(h & (u64)HMASK);
    while (HK[i] != -1)
        i = (i + 1) & HMASK;
    HK[i] = vpage;
    HV[i] = ppage;
    i64 wl = R[R_WALKLOG_LEN]++;
    WVP[wl] = vpage;
    WPP[wl] = ppage;
    return ppage;
}

/* MMU._translate_prefetch_cold: dTLB probe, no MRU, no demand stats. */
static i64 translate_cold(i64 target, i64 vpage) {
    R[R_DT_PPROBES]++;
    i64 pp = tlb_get(&TDT, vpage);
    if (pp < 0) {
        R[R_MMU_DROPPED]++;
        return -1;
    }
    R[R_DT_PPROBE_HITS]++;
    return (pp << LPB) | (target & POM);
}

/* ------------------------------------------------------------------ */
/* Prefetch queue (_FIFOQueue service times)                           */
/* ------------------------------------------------------------------ */

static f64 *PQST;
static i64 pq_len, pq_size;
static f64 pq_period;

static void pq_expire(i64 now) {
    f64 fnow = (f64)now;
    i64 n = 0;
    while (n < pq_len && PQST[n] <= fnow)
        n++;
    if (n > 0) {
        memmove(PQST, PQST + n, (size_t)(pq_len - n) * sizeof(f64));
        pq_len -= n;
    }
}

/* ------------------------------------------------------------------ */
/* Core model scalars + window/loads buffers                           */
/* ------------------------------------------------------------------ */

static i64 c_instr, rob_size;
static f64 c_frontend, c_retire, c_rob_head;
static f64 f_issue_incr, f_retire_incr, f_issue_w, f_retire_w;
static i64 *WINK;
static f64 *WINR;
static i64 win_head, win_len;
static f64 *LOADSB;
static i64 loads_pos, loads_len, dep_window;

/* ------------------------------------------------------------------ */
/* Writeback chain (Hierarchy._handle_writeback)                       */
/* ------------------------------------------------------------------ */

static void handle_wb(int level, i64 tag, i64 now) {
    while (tag >= 0) {
        if (level == 0) {
            R[R_T12_WB]++;
            i64 v = cache_fill(&CL2, tag, now, now, 0, 0, -1, 0, 0);
            cache_mark_dirty(&CL2, tag);
            tag = v;
            level = 1;
        } else if (level == 1) {
            R[R_T2L_WB]++;
            i64 v = cache_fill(&CLL, tag, now, now, 0, 0, -1, 0, 0);
            cache_mark_dirty(&CLL, tag);
            tag = v;
            level = 2;
        } else {
            R[R_TLD_WB]++;
            dram_write(tag, now);
            break;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Berti history table (flat rings; chains rebuilt on import)          */
/* ------------------------------------------------------------------ */

static i64 *HT, *HL, *HTS, *HO, *HCLK, *HPTR;
static i64 h_sets, h_ways, ts_mask, line_mask, htag_mask;
static i64 *SCR;

static void hist_insert(i64 key, i64 line, i64 now) {
    R[R_H_INSERTS]++;
    i64 folded = key ^ (key >> 3) ^ (key >> 7);
    i64 sidx = imod(folded, h_sets);
    i64 ptr = HPTR[sidx];
    HPTR[sidx] = (ptr + 1) % h_ways;
    i64 clock = HCLK[sidx] + 1;
    HCLK[sidx] = clock;
    i64 idx = sidx * h_ways + ptr;
    HT[idx] = ifdiv(key, h_sets) & htag_mask;
    HL[idx] = line & line_mask;
    HTS[idx] = now & ts_mask;
    HO[idx] = clock;
}

/* search_timely_into: newest-first ring walk == reversed chain order.
 * Timely deltas land in SCR; returns the count. */
static i64 hist_search(i64 key, i64 line, i64 demand_time, i64 latency) {
    R[R_H_SEARCHES]++;
    i64 folded = key ^ (key >> 3) ^ (key >> 7);
    i64 sidx = imod(folded, h_sets);
    i64 tag = ifdiv(key, h_sets) & htag_mask;
    i64 now_ts = demand_time & ts_mask;
    i64 line_masked = line & line_mask;
    i64 half_range = (ts_mask >> 1) + 1;
    i64 sign_bit = (line_mask >> 1) + 1;
    i64 line_span = line_mask + 1;
    i64 base = sidx * h_ways;
    i64 ptr = HPTR[sidx];
    i64 n = 0;
    i64 j;
    for (j = 0; j < h_ways; j++) {
        i64 w = base + imod(ptr - 1 - j, h_ways);
        i64 t = HT[w];
        if (t == -1)
            break;
        if (t != tag)
            continue;
        i64 age = (now_ts - HTS[w]) & ts_mask;
        if (age >= half_range || age < latency)
            continue;
        i64 delta = (line_masked - HL[w]) & line_mask;
        if (delta & sign_bit)
            delta -= line_span;
        if (delta != 0 && delta >= R[R_DELTA_LO] && delta <= R[R_DELTA_HI]) {
            SCR[n++] = delta;
            if (n >= R[R_MAX_DSEARCH])
                break;
        }
    }
    return n;
}

/* ------------------------------------------------------------------ */
/* Per-entry eviction heaps: CPython heapq on (cov, slot) pairs        */
/* ------------------------------------------------------------------ */

static i64 *HEAPB, *HLN;
static i64 heap_cap;

static inline int pair_lt(i64 c1, i64 s1, i64 c2, i64 s2) {
    return c1 < c2 || (c1 == c2 && s1 < s2);
}

static void heap_siftdown(i64 *h, i64 startpos, i64 pos) {
    i64 nc = h[2 * pos], ns = h[2 * pos + 1];
    while (pos > startpos) {
        i64 parent = (pos - 1) >> 1;
        if (pair_lt(nc, ns, h[2 * parent], h[2 * parent + 1])) {
            h[2 * pos] = h[2 * parent];
            h[2 * pos + 1] = h[2 * parent + 1];
            pos = parent;
        } else {
            break;
        }
    }
    h[2 * pos] = nc;
    h[2 * pos + 1] = ns;
}

static void heap_push(i64 e, i64 c, i64 s) {
    i64 n = HLN[e];
    if (n >= heap_cap) {
        /* Defensive: marshal sizes the heap past the worst case. */
        R[R_ERR] = 2;
        R[R_ERR_A] = e;
        R[R_ERR_B] = n;
        longjmp(err_jmp, 1);
    }
    i64 *h = HEAPB + e * heap_cap * 2;
    h[2 * n] = c;
    h[2 * n + 1] = s;
    HLN[e] = n + 1;
    heap_siftdown(h, 0, n);
}

static void heap_pop(i64 e, i64 *rc, i64 *rs) {
    i64 *h = HEAPB + e * heap_cap * 2;
    i64 n = --HLN[e];
    i64 lc = h[2 * n], ls = h[2 * n + 1];
    if (n == 0) {
        *rc = lc;
        *rs = ls;
        return;
    }
    *rc = h[0];
    *rs = h[1];
    /* _siftup(h, 0) with newitem = lastelt, then _siftdown. */
    i64 pos = 0, childpos = 1;
    while (childpos < n) {
        i64 right = childpos + 1;
        if (right < n
            && !pair_lt(h[2 * childpos], h[2 * childpos + 1],
                        h[2 * right], h[2 * right + 1]))
            childpos = right;
        h[2 * pos] = h[2 * childpos];
        h[2 * pos + 1] = h[2 * childpos + 1];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    h[2 * pos] = lc;
    h[2 * pos + 1] = ls;
    heap_siftdown(h, 0, pos);
}

/* ------------------------------------------------------------------ */
/* Berti delta table                                                   */
/* ------------------------------------------------------------------ */

static i64 *EV, *ET, *EC, *EO, *EW, *ES;
static i64 *SD, *SCV, *SST;
static i64 e_count, e_per;
static i64 SEL_D[64], SEL_S[64];

static i64 dt_tag_of(i64 key) {
    i64 h = key;
    h ^= h >> 10;
    h ^= h >> 20;
    return h & R[R_DTAG_MASK];
}

/* Valid entries hold unique tags (allocate only runs on a tag miss),
 * so a linear scan is the dict lookup. */
static i64 dt_by_tag(i64 tag) {
    i64 e;
    for (e = 0; e < e_count; e++)
        if (EV[e] && ET[e] == tag)
            return e;
    return -1;
}

static i64 dt_by_delta(i64 e, i64 delta) {
    i64 base = e * e_per;
    i64 cnt = ES[e];
    i64 s;
    for (s = 0; s < cnt; s++)
        if (SD[base + s] == delta)
            return s;
    return -1;
}

static i64 dt_allocate(i64 tag) {
    i64 victim = R[R_DT_FIFO_PTR];
    R[R_DT_FIFO_PTR] = (victim + 1) % e_count;
    i64 clock = ++R[R_DT_FIFO_CLOCK];
    EV[victim] = 1;
    ET[victim] = tag;
    EC[victim] = 0;
    EO[victim] = clock;
    EW[victim] = 0;
    ES[victim] = 0;
    i64 base = victim * e_per;
    i64 i;
    for (i = 0; i < e_per; i++) {
        SD[base + i] = 0;
        SCV[base + i] = 0;
        SST[base + i] = 0;
    }
    HLN[victim] = 0;
    return victim;
}

static void dt_close_phase(i64 e) {
    R[R_DT_PHASES]++;
    i64 base = e * e_per;
    i64 cnt = ES[e];
    i64 order[64];
    i64 i, j, k;
    /* Stable insertion sort, coverage descending (strict shift ==
     * Python's stable sorted(reverse=True)). */
    for (i = 0; i < cnt; i++) {
        j = i;
        while (j > 0 && SCV[base + order[j - 1]] < SCV[base + i]) {
            order[j] = order[j - 1];
            j--;
        }
        order[j] = i;
    }
    i64 promoted = 0;
    i64 maxpf = R[R_MAX_PF_DELTAS];
    for (k = 0; k < cnt; k++) {
        i64 s = base + order[k];
        f64 fcov = (f64)SCV[s];
        if (fcov > F[FR_F_HIGH] && promoted < maxpf) {
            SST[s] = 1;
            promoted++;
        } else if (fcov > F[FR_F_MEDIUM] && promoted < maxpf) {
            SST[s] = (fcov < F[FR_F_REPL]) ? 3 : 2;
            promoted++;
        } else {
            SST[s] = 0;
        }
        SCV[s] = 0;
    }
    EC[e] = 0;
    EW[e] = 1;
    /* Rebuilt heap: (0, slot) ascending is already heap-ordered. */
    i64 *h = HEAPB + e * heap_cap * 2;
    i64 n = 0;
    for (i = 0; i < cnt; i++) {
        i64 st = SST[base + i];
        if (st == 0 || st == 3) {
            h[2 * n] = 0;
            h[2 * n + 1] = i;
            n++;
        }
    }
    HLN[e] = n;
}

/* record_search runs unconditionally after a clamped search — it
 * allocates/bumps the context entry even when no deltas were timely. */
static void dt_record_search(i64 key, i64 n_deltas) {
    i64 tag = dt_tag_of(key);
    i64 e = dt_by_tag(tag);
    if (e < 0)
        e = dt_allocate(tag);
    i64 counter = ++EC[e];
    i64 base = e * e_per;
    i64 k;
    for (k = 0; k < n_deltas; k++) {
        i64 delta = SCR[k];
        i64 s = dt_by_delta(e, delta);
        if (s >= 0) {
            i64 c = SCV[base + s];
            if (c < R[R_COV_CAP]) {
                SCV[base + s] = c + 1;
                i64 st = SST[base + s];
                if (st == 0 || st == 3)
                    heap_push(e, c + 1, s);
            }
            continue;
        }
        i64 slot = -1;
        if (ES[e] < e_per) {
            slot = ES[e];
            ES[e]++;
        } else {
            while (HLN[e] > 0) {
                i64 pc, ps;
                heap_pop(e, &pc, &ps);
                i64 st = SST[base + ps];
                if (SCV[base + ps] == pc && (st == 0 || st == 3)) {
                    slot = ps;
                    break;
                }
            }
            if (slot < 0) {
                R[R_DT_DISCARDED]++;
                continue;
            }
        }
        SD[base + slot] = delta;
        SCV[base + slot] = 1;
        SST[base + slot] = 0;
        heap_push(e, 1, slot);
    }
    if (counter >= R[R_COUNTER_MAX])
        dt_close_phase(e);
}

/* prefetch_deltas: two stable passes == sort(key: status != L1D_PREF)
 * + truncate; warmup path selects by coverage threshold. */
static i64 dt_prefetch_deltas(i64 key) {
    i64 tag = dt_tag_of(key);
    i64 e = dt_by_tag(tag);
    if (e < 0)
        return 0;
    i64 base = e * e_per;
    i64 cnt = ES[e];
    i64 maxpf = R[R_MAX_PF_DELTAS];
    i64 n = 0;
    i64 s;
    if (EW[e]) {
        for (s = 0; s < cnt && n < maxpf; s++) {
            if (SST[base + s] == 1) {
                SEL_D[n] = SD[base + s];
                SEL_S[n] = 1;
                n++;
            }
        }
        for (s = 0; s < cnt && n < maxpf; s++) {
            i64 st = SST[base + s];
            if (st != 0 && st != 1) {
                SEL_D[n] = SD[base + s];
                SEL_S[n] = st;
                n++;
            }
        }
        return n;
    }
    if (EC[e] < R[R_WARM_MIN])
        return 0;
    f64 threshold = F[FR_F_WARM_WM] * (f64)EC[e];
    for (s = 0; s < cnt && n < maxpf; s++) {
        if ((f64)SCV[base + s] >= threshold) {
            SEL_D[n] = SD[base + s];
            SEL_S[n] = 1;
            n++;
        }
    }
    return n;
}

/* on_fill_kernel / on_prefetch_hit_kernel tail: callers guard the
 * latency clamp; the record is unconditional. */
static void berti_learn(i64 ip, i64 vline, i64 demand_time, i64 latency) {
    i64 n = hist_search(ip, vline, demand_time, latency);
    dt_record_search(ip, n);
}

/* ------------------------------------------------------------------ */
/* Prefetch ladder (run_ladder in batched.py, verbatim order)          */
/* ------------------------------------------------------------------ */

static i64 m1_reserve;

static void run_ladder(i64 n_sel, i64 ip, i64 vline, i64 now,
                       int mshr_below) {
    i64 pq_full = 0;
    i64 k;
    for (k = 0; k < n_sel; k++) {
        i64 delta = SEL_D[k], status = SEL_S[k];
        i64 target = vline + delta;
        if (target < 0)
            continue;
        if (!R[R_CROSS_OK] && (vline >> LPB) != (target >> LPB)) {
            d_D_CROSS++;
            continue;
        }
        int fill_l1 = (status == 1) && mshr_below;
        d_D_PF_SUGG++;
        i64 vpage = target >> LPB;
        d_D_STLB_PROBES++;
        i64 pline;
        i64 pp = tlb_get(&TST, vpage);
        if (pp < 0) {
            pline = translate_cold(target, vpage);
            if (pline < 0) {
                d_D_PF_DTRANS++;
                continue;
            }
        } else {
            d_D_STLB_HITS++;
            pline = (pp << LPB) | (target & POM);
        }
        if (fill_l1) {
            i64 s1 = pline & CL1.set_mask;
            if (cache_way(&CL1, s1, pline) >= 0) {
                d_D_PF_DDUP++;
                continue;
            }
            mshr_expire(&M1, now);
            if (mshr_find(&M1, pline) >= 0) {
                d_D_PF_DDUP++;
                continue;
            }
            if (pq_full) {
                d_D_PF_DQ++;
                continue;
            }
            pq_expire(now);
            if (pq_len >= pq_size) {
                pq_full = 1;
                d_D_PF_DQ++;
                continue;
            }
            f64 start = (f64)now;
            if (pq_len && PQST[pq_len - 1] > start)
                start = PQST[pq_len - 1];
            f64 service = start + pq_period;
            PQST[pq_len++] = service;
            i64 issue_time = now + (i64)(service - (f64)now);
            mshr_expire(&M1, issue_time);
            if (M1.count >= m1_reserve) {
                d_D_PF_DM++;
                continue;
            }
            i64 ready;
            i64 s2 = pline & CL2.set_mask;
            i64 w2 = cache_way(&CL2, s2, pline);
            if (w2 >= 0) {
                cache_touch(&CL2, s2, w2);
                ready = issue_time + CL2.lat;
                i64 a2 = CL2.arr[s2 * CL2.ways + w2];
                if (a2 > ready)
                    ready = a2;
            } else {
                mshr_expire(&M2, issue_time);
                i64 mi = mshr_find(&M2, pline);
                if (mi >= 0) {
                    d_D_M2_MERGES++;
                    M2.merged[mi]++;
                    i64 wait2 = M2.ready[mi] - issue_time;
                    if (wait2 < 0)
                        wait2 = 0;
                    ready = issue_time + CL2.lat + wait2;
                } else {
                    i64 mt2 = issue_time + CL2.lat;
                    d_D_T2L_PF++;
                    i64 s3 = pline & CLL.set_mask;
                    i64 w3 = cache_way(&CLL, s3, pline);
                    if (w3 >= 0) {
                        cache_touch(&CLL, s3, w3);
                        ready = mt2 + CLL.lat;
                        i64 a3 = CLL.arr[s3 * CLL.ways + w3];
                        if (a3 > ready)
                            ready = a3;
                    } else {
                        i64 mt3 = mt2 + CLL.lat;
                        d_D_TLD_PF++;
                        ready = dram_read(pline, mt3);
                        i64 v3 = cache_fill(&CLL, pline, mt3, ready, 1,
                                            0, -1, 0, 0);
                        if (v3 >= 0)
                            handle_wb(2, v3, ready);
                    }
                    mshr_expire(&M2, mt2);
                    if (M2.count < M2.size)
                        mshr_allocate(&M2, pline, mt2, ready, 1, ip, 0);
                    i64 v2 = cache_fill(&CL2, pline, mt2, ready, 1,
                                        ip, -1, 0, 0);
                    if (v2 >= 0)
                        handle_wb(1, v2, ready);
                }
            }
            i64 latency = ready - now;
            mshr_allocate(&M1, pline, issue_time, ready, 1, ip, target);
            /* Ladder L1 fill: the victim is dropped (no wb chain). */
            cache_fill(&CL1, pline, issue_time, ready, 1, ip, target,
                       (0 < latency && latency < LATENCY_CAP) ? latency : 0,
                       1);
            d_D_T12_PF++;
            d_D_PF_FILLS++;
            d_D_PF_ISSUED++;
        } else {
            i64 s2 = pline & CL2.set_mask;
            if (cache_way(&CL2, s2, pline) >= 0) {
                d_D_PF_DDUP++;
                continue;
            }
            if (pq_full) {
                d_D_PF_DQ++;
                continue;
            }
            pq_expire(now);
            if (pq_len >= pq_size) {
                pq_full = 1;
                d_D_PF_DQ++;
                continue;
            }
            f64 start = (f64)now;
            if (pq_len && PQST[pq_len - 1] > start)
                start = PQST[pq_len - 1];
            f64 service = start + pq_period;
            PQST[pq_len++] = service;
            i64 issue_time = now + (i64)(service - (f64)now);
            mshr_expire(&M2, now);
            if (cache_way(&CL2, s2, pline) >= 0
                || mshr_find(&M2, pline) >= 0) {
                d_D_PF_DDUP++;
                continue;
            }
            mshr_expire(&M2, issue_time);
            if (M2.count >= M2.size) {
                d_D_PF_DM++;
                continue;
            }
            i64 ready;
            i64 now3 = issue_time + CL2.lat;
            i64 s3 = pline & CLL.set_mask;
            i64 w3 = cache_way(&CLL, s3, pline);
            if (w3 >= 0) {
                cache_touch(&CLL, s3, w3);
                ready = now3 + CLL.lat;
                i64 a3 = CLL.arr[s3 * CLL.ways + w3];
                if (a3 > ready)
                    ready = a3;
            } else {
                i64 mt3 = now3 + CLL.lat;
                d_D_TLD_PF++;
                ready = dram_read(pline, mt3);
                i64 v3 = cache_fill(&CLL, pline, mt3, ready, 1,
                                    0, -1, 0, 0);
                if (v3 >= 0)
                    handle_wb(2, v3, ready);
            }
            mshr_allocate(&M2, pline, issue_time, ready, 1, ip, 0);
            i64 latency = ready - now;
            /* Ladder L2 fill: victim dropped, origin "l1d". */
            cache_fill(&CL2, pline, issue_time, ready, 1, ip, target,
                       (0 < latency && latency < LATENCY_CAP) ? latency : 0,
                       1);
            d_D_T12_PF++;
            d_D_T2L_PF++;
            d_D_PF_FILLS++;
            d_D_PF_ISSUED++;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Span state load/save                                                */
/* ------------------------------------------------------------------ */

static i64 *T_IPS, *T_ADDRS, *T_WRITES, *T_GAPS, *T_DEPS;
static i64 *T_VLINES, *T_VPAGES;

static void load_all(void) {
    LOAD_CACHE(&CL1, L1);
    LOAD_CACHE(&CL2, L2);
    LOAD_CACHE(&CLL, LL);
    LOAD_MSHR(&M1, M1);
    LOAD_MSHR(&M2, M2);
    LOAD_TLB(&TDT, DT);
    LOAD_TLB(&TST, ST);
    m1_reserve = M1.size - 2;

    HK = (i64 *)B[B_HASH_K];
    HV = (i64 *)B[B_HASH_V];
    HMASK = R[R_HASH_CAP] - 1;
    WVP = (i64 *)B[B_WALK_VP];
    WPP = (i64 *)B[B_WALK_PP];

    DR.banks = R[R_DR_BANKS];
    DR.lpr = R[R_DR_LPR];
    DR.trp = R[R_DR_TRP];
    DR.trcd = R[R_DR_TRCD];
    DR.tcas = R[R_DR_TCAS];
    DR.wq_size = R[R_DR_WQ_SIZE];
    DR.pendw_len = R[R_DR_PENDW_LEN];
    DR.reads = R[R_DR_READS];
    DR.writes = R[R_DR_WRITES];
    DR.rowh = R[R_DR_ROWH];
    DR.rowm = R[R_DR_ROWM];
    DR.rowc = R[R_DR_ROWC];
    DR.lat_total = R[R_DR_LAT_TOTAL];
    DR.bus_free = F[FR_F_BUSFREE];
    DR.burst = F[FR_F_BURST];
    DR.wq_thresh = F[FR_F_WQ_THRESH];
    DR.bank_row = (i64 *)B[B_BANK_ROW];
    DR.bank_busy = (i64 *)B[B_BANK_BUSY];
    DR.pendw = (i64 *)B[B_PENDW];

    PQST = (f64 *)B[B_PQ_ST];
    pq_len = R[R_PQ_LEN];
    pq_size = R[R_PQ_SIZE];
    pq_period = F[FR_F_PERIOD];

    c_instr = R[R_C_INSTR];
    rob_size = R[R_ROB_SIZE];
    dep_window = R[R_DEP_WINDOW];
    c_frontend = F[FR_F_FRONTEND];
    c_retire = F[FR_F_RETIRE];
    c_rob_head = F[FR_F_ROB_HEAD];
    f_issue_incr = F[FR_F_ISSUE_INCR];
    f_retire_incr = F[FR_F_RETIRE_INCR];
    f_issue_w = F[FR_F_ISSUE_W];
    f_retire_w = F[FR_F_RETIRE_W];
    WINK = (i64 *)B[B_WIN_K];
    WINR = (f64 *)B[B_WIN_RET];
    win_head = 0;
    win_len = R[R_WIN_LEN];
    LOADSB = (f64 *)B[B_LOADS];
    loads_pos = R[R_LOADS_POS];
    loads_len = R[R_LOADS_LEN];

    T_IPS = (i64 *)B[B_T_IPS];
    T_ADDRS = (i64 *)B[B_T_ADDRS];
    T_WRITES = (i64 *)B[B_T_WRITES];
    T_GAPS = (i64 *)B[B_T_GAPS];
    T_DEPS = (i64 *)B[B_T_DEPS];
    T_VLINES = (i64 *)B[B_T_VLINES];
    T_VPAGES = (i64 *)B[B_T_VPAGES];

    if (R[R_KERNEL]) {
        HT = (i64 *)B[B_H_TAGS];
        HL = (i64 *)B[B_H_LINES];
        HTS = (i64 *)B[B_H_TSS];
        HO = (i64 *)B[B_H_ORDERS];
        HCLK = (i64 *)B[B_H_CLOCK];
        HPTR = (i64 *)B[B_H_PTR];
        h_sets = R[R_H_SETS];
        h_ways = R[R_H_WAYS];
        ts_mask = R[R_TS_MASK];
        line_mask = R[R_LINE_MASK];
        htag_mask = R[R_HTAG_MASK];
        SCR = (i64 *)B[B_SCRATCH];
        EV = (i64 *)B[B_E_VALID];
        ET = (i64 *)B[B_E_TAG];
        EC = (i64 *)B[B_E_CTR];
        EO = (i64 *)B[B_E_ORDER];
        EW = (i64 *)B[B_E_WARMED];
        ES = (i64 *)B[B_E_SCOUNT];
        SD = (i64 *)B[B_S_DELTA];
        SCV = (i64 *)B[B_S_COV];
        SST = (i64 *)B[B_S_STATUS];
        HEAPB = (i64 *)B[B_HEAP];
        HLN = (i64 *)B[B_HEAP_LEN];
        heap_cap = R[R_HEAP_CAP];
        e_count = R[R_E_COUNT];
        e_per = R[R_E_PER];
    }

#define LOAD_DELTA(n) d_##n = R[R_##n];
    DELTA_LIST(LOAD_DELTA)
#undef LOAD_DELTA
}

static void save_all(void) {
    SAVE_CACHE(&CL1, L1);
    SAVE_CACHE(&CL2, L2);
    SAVE_CACHE(&CLL, LL);
    SAVE_MSHR(&M1, M1);
    SAVE_MSHR(&M2, M2);

    R[R_DR_PENDW_LEN] = DR.pendw_len;
    R[R_DR_READS] = DR.reads;
    R[R_DR_WRITES] = DR.writes;
    R[R_DR_ROWH] = DR.rowh;
    R[R_DR_ROWM] = DR.rowm;
    R[R_DR_ROWC] = DR.rowc;
    R[R_DR_LAT_TOTAL] = DR.lat_total;
    F[FR_F_BUSFREE] = DR.bus_free;

    R[R_PQ_LEN] = pq_len;

    R[R_C_INSTR] = c_instr;
    F[FR_F_FRONTEND] = c_frontend;
    F[FR_F_RETIRE] = c_retire;
    F[FR_F_ROB_HEAD] = c_rob_head;
    if (win_head > 0 && win_len > 0) {
        memmove(WINK, WINK + win_head, (size_t)win_len * sizeof(i64));
        memmove(WINR, WINR + win_head, (size_t)win_len * sizeof(f64));
    }
    R[R_WIN_LEN] = win_len;
    R[R_LOADS_POS] = loads_pos;
    R[R_LOADS_LEN] = loads_len;

#define SAVE_DELTA(n) R[R_##n] = d_##n;
    DELTA_LIST(SAVE_DELTA)
#undef SAVE_DELTA
}

/* ------------------------------------------------------------------ */
/* The fused record loop (batched.py span body, chunkless)             */
/* ------------------------------------------------------------------ */

static void run(void) {
    i64 lo = R[R_LO], hi = R[R_HI];
    i64 kernel = R[R_KERNEL];
    i64 lat_mask = kernel ? R[R_LAT_MASK] : 0;
    f64 watermark = F[FR_F_WATERMARK];
    i64 r;
    for (r = lo; r < hi; r++) {
        i64 ip = T_IPS[r];
        i64 is_write = T_WRITES[r];
        i64 gap = T_GAPS[r];
        i64 dep = T_DEPS[r];

        /* CoreModel.advance_nonmem */
        if (gap > 0) {
            c_instr += gap;
            c_frontend += (f64)gap / f_issue_w;
            f64 floor_v = (f64)c_instr / f_retire_w;
            if (floor_v > c_retire)
                c_retire = floor_v;
        }
        /* CoreModel.issue_memory (front half) */
        i64 k_i = c_instr;
        c_instr = k_i + 1;
        c_frontend += f_issue_incr;
        f64 frontend = c_frontend;
        i64 horizon = k_i - rob_size;
        while (win_len && WINK[win_head] <= horizon) {
            f64 retired = WINR[win_head];
            if (retired > c_rob_head)
                c_rob_head = retired;
            win_head++;
            win_len--;
        }
        f64 issue_t = frontend > c_rob_head ? frontend : c_rob_head;
        if (dep > 0 && dep <= loads_len) {
            f64 dep_ready =
                LOADSB[imod(loads_pos + loads_len - dep, dep_window)];
            if (dep_ready > issue_t)
                issue_t = dep_ready;
        }
        i64 now = (i64)issue_t;

        /* MMU.translate_demand */
        i64 vline = T_VLINES[r];
        i64 vpage = T_VPAGES[r];
        d_D_DT_ACC++;
        i64 pline;
        i64 trans_latency;
        i64 pp = tlb_get(&TDT, vpage);
        if (pp >= 0) {
            tlb_mru(&TDT, vpage);
            d_D_DT_HIT++;
            pline = (pp << LPB) | (vline & POM);
            trans_latency = R[R_DT_LAT];
        } else {
            trans_latency = R[R_MISS_TRANS_LAT];
            pp = stlb_lookup(vpage);
            if (pp < 0) {
                pp = physical_page(vpage);
                R[R_MMU_WALKS]++;
                trans_latency += R[R_WALK_LAT];
                tlb_insert(&TST, vpage, pp);
            }
            tlb_insert(&TDT, vpage, pp);
            pline = (pp << LPB) | (vline & POM);
        }
        i64 t = now + trans_latency;

        i64 latency;
        d_D_L1_ACC++;
        i64 s1 = pline & CL1.set_mask;
        i64 way = cache_way(&CL1, s1, pline);
        if (way >= 0) {
            /* ------------------------------ L1D hit */
            d_D_L1_HIT++;
            cache_touch(&CL1, s1, way);
            i64 li = s1 * CL1.ways + way;
            latency = trans_latency + CL1.lat;
            i64 residual = CL1.arr[li] - (t + CL1.lat);
            if (residual < 0)
                residual = 0;
            latency += residual;
            if (CL1.pref[li]) {
                int was_late = residual > 0;
                d_D_L1_USEFUL++;
                if (was_late)
                    d_D_L1_LATE++;
                CL1.pref[li] = 0;
                if (CL1.org[li] != 2) {
                    d_D_PF_USEFUL++;
                    if (was_late)
                        d_D_PF_LATE++;
                } else {
                    R[R_CREDIT2_USEFUL]++;
                    if (was_late)
                        R[R_CREDIT2_LATE]++;
                }
                i64 pf_lat_v = CL1.pflat[li];
                CL1.pflat[li] = 0;
                if (kernel) {
                    mshr_expire(&M1, t);
                    hist_insert(ip, vline, t);
                    if (0 < pf_lat_v && pf_lat_v <= lat_mask)
                        berti_learn(ip, vline, t, pf_lat_v);
                }
            }
            if (is_write)
                CL1.dirty[li] = 1;
            if (kernel) {
                mshr_expire(&M1, t);
                f64 mshr_occ = M1.size
                    ? (f64)M1.count / (f64)M1.size : 0.0;
                pq_expire(t);
                i64 n_sel = dt_prefetch_deltas(ip);
                if (n_sel)
                    run_ladder(n_sel, ip, vline, t, mshr_occ < watermark);
            }
        } else {
            /* ------------------------------ L1D miss */
            d_D_L1_MISS++;
            if (CL1.pol == POL_DRRIP)
                drrip_record_miss(&CL1, pline & CL1.set_mask);
            mshr_expire(&M1, t);
            i64 mi = mshr_find(&M1, pline);
            if (mi >= 0) {
                /* In-flight fetch of the same line: merge. */
                d_D_M1_MERGES++;
                M1.merged[mi]++;
                i64 wait = M1.ready[mi] - t;
                if (wait < 0)
                    wait = 0;
                if (M1.ispf[mi]) {
                    M1.ispf[mi] = 0;
                    d_D_PF_USEFUL++;
                    d_D_PF_LATE++;
                    d_D_PF_PROMOTED++;
                    if (kernel) {
                        i64 pf_lat_v = M1.ready[mi] - M1.alloc[mi];
                        if (pf_lat_v < 1)
                            pf_lat_v = 1;
                        mshr_expire(&M1, t);
                        hist_insert(ip, vline, t);
                        if (0 < pf_lat_v && pf_lat_v <= lat_mask)
                            berti_learn(ip, vline, t, pf_lat_v);
                    }
                }
                if (kernel) {
                    mshr_expire(&M1, t);
                    f64 mshr_occ = M1.size
                        ? (f64)M1.count / (f64)M1.size : 0.0;
                    pq_expire(t);
                    hist_insert(ip, vline, t);
                    i64 n_sel = dt_prefetch_deltas(ip);
                    if (n_sel)
                        run_ladder(n_sel, ip, vline, t,
                                   mshr_occ < watermark);
                }
                latency = trans_latency + CL1.lat + wait;
            } else {
                /* True miss: fetch from L2 (and below). */
                i64 detect_time = t + CL1.lat;
                i64 miss_time = detect_time;
                mshr_expire(&M1, miss_time);
                if (M1.count >= M1.size) {
                    i64 earliest = M1.count ? M1.min_ready : miss_time;
                    if (earliest > miss_time)
                        miss_time = earliest;
                }
                d_D_T12_DEM++;
                i64 ready;
                i64 s2 = pline & CL2.set_mask;
                i64 w2 = cache_way(&CL2, s2, pline);
                if (w2 >= 0) {
                    d_D_L2_ACC++;
                    d_D_L2_HIT++;
                    cache_touch(&CL2, s2, w2);
                    i64 ci = s2 * CL2.ways + w2;
                    ready = miss_time + CL2.lat;
                    if (CL2.arr[ci] > ready)
                        ready = CL2.arr[ci];
                    if (CL2.pref[ci]) {
                        d_D_L2_USEFUL++;
                        CL2.pref[ci] = 0;
                        if (CL2.org[ci] == 1)
                            d_D_PF_USEFUL++;
                        else if (CL2.org[ci] == 2)
                            R[R_CREDIT2_USEFUL]++;
                    }
                } else {
                    d_D_L2_ACC++;
                    d_D_L2_MISS++;
                    if (CL2.pol == POL_DRRIP)
                        drrip_record_miss(&CL2, pline & CL2.set_mask);
                    mshr_expire(&M2, miss_time);
                    i64 mi2 = mshr_find(&M2, pline);
                    if (mi2 >= 0) {
                        d_D_M2_MERGES++;
                        M2.merged[mi2]++;
                        i64 wait2 = M2.ready[mi2] - miss_time;
                        if (wait2 < 0)
                            wait2 = 0;
                        if (M2.ispf[mi2]) {
                            M2.ispf[mi2] = 0;
                            d_D_PF2_USEFUL++;
                            d_D_PF2_LATE++;
                            d_D_PF2_PROMOTED++;
                        }
                        ready = miss_time + CL2.lat + wait2;
                    } else {
                        i64 mt2 = miss_time + CL2.lat;
                        d_D_T2L_DEM++;
                        d_D_H_LLC_ACC++;
                        i64 s3 = pline & CLL.set_mask;
                        i64 w3 = cache_way(&CLL, s3, pline);
                        if (w3 >= 0) {
                            d_D_LLC_ACC++;
                            d_D_LLC_HIT++;
                            cache_touch(&CLL, s3, w3);
                            i64 ci3 = s3 * CLL.ways + w3;
                            ready = mt2 + CLL.lat;
                            if (CLL.arr[ci3] > ready)
                                ready = CLL.arr[ci3];
                            if (CLL.pref[ci3]) {
                                d_D_LLC_USEFUL++;
                                CLL.pref[ci3] = 0;
                                if (CLL.org[ci3] == 1)
                                    d_D_PF_USEFUL++;
                                else if (CLL.org[ci3] == 2)
                                    R[R_CREDIT2_USEFUL]++;
                            }
                        } else {
                            d_D_LLC_ACC++;
                            d_D_LLC_MISS++;
                            if (CLL.pol == POL_DRRIP)
                                drrip_record_miss(&CLL,
                                                  pline & CLL.set_mask);
                            i64 mt3 = mt2 + CLL.lat;
                            d_D_H_LLC_MISS++;
                            d_D_H_DRAM++;
                            d_D_TLD_DEM++;
                            ready = dram_read(pline, mt3);
                            i64 v3 = cache_fill(&CLL, pline, mt3, ready,
                                                0, 0, -1, 0, 0);
                            if (v3 >= 0)
                                handle_wb(2, v3, ready);
                        }
                        mshr_expire(&M2, mt2);
                        if (M2.count < M2.size)
                            mshr_allocate(&M2, pline, mt2, ready, 0, ip, 0);
                        i64 v2 = cache_fill(&CL2, pline, mt2, ready,
                                            0, ip, -1, 0, 0);
                        if (v2 >= 0)
                            handle_wb(1, v2, ready);
                    }
                }
                mshr_allocate(&M1, pline, miss_time, ready, 0, ip, vline);
                i64 v1 = cache_fill(&CL1, pline, miss_time, ready,
                                    0, ip, vline, 0, 0);
                if (v1 >= 0)
                    handle_wb(0, v1, ready);
                if (is_write)
                    cache_mark_dirty(&CL1, pline);
                if (kernel) {
                    mshr_expire(&M1, t);
                    f64 mshr_occ = M1.size
                        ? (f64)M1.count / (f64)M1.size : 0.0;
                    pq_expire(t);
                    hist_insert(ip, vline, t);
                    i64 n_sel = dt_prefetch_deltas(ip);
                    if (n_sel)
                        run_ladder(n_sel, ip, vline, t,
                                   mshr_occ < watermark);
                    /* on_fill_kernel (demand fill). */
                    i64 fl = ready - miss_time;
                    if (0 < fl && fl <= lat_mask)
                        berti_learn(ip, vline, miss_time, fl);
                }
                latency = trans_latency + CL1.lat + (ready - detect_time);
            }
        }

        /* CoreModel.issue_memory (back half) */
        f64 completion;
        if (is_write) {
            completion = issue_t + 1.0;
        } else {
            completion = issue_t + (f64)latency;
            if (loads_len < dep_window) {
                LOADSB[imod(loads_pos + loads_len, dep_window)] = completion;
                loads_len++;
            } else {
                LOADSB[loads_pos] = completion;
                loads_pos = imod(loads_pos + 1, dep_window);
            }
        }
        f64 retire = c_retire + f_retire_incr;
        if (completion > retire)
            retire = completion;
        c_retire = retire;
        WINK[win_head + win_len] = k_i;
        WINR[win_head + win_len] = retire;
        win_len++;
    }
}

/* ------------------------------------------------------------------ */
/* Entry point                                                         */
/* ------------------------------------------------------------------ */

i64 repro_run_span(i64 *R_, f64 *F_, void **B_) {
    R = R_;
    F = F_;
    B = B_;
    if (setjmp(err_jmp)) {
        save_all();
        return R[R_ERR];
    }
    load_all();
    run();
    save_all();
    return 0;
}
