"""Campaign supervisor: liveness, resource-aware degradation, circuit
breakers, and graceful shutdown for long experiment campaigns.

:class:`CampaignSupervisor` is an :class:`~repro.runner.executor.
ExperimentRunner` whose supervision hooks are actually wired up:

* **Heartbeat liveness** — every submitted :class:`JobSpec` is given a
  heartbeat file; the worker pings it every N simulated accesses (see
  :mod:`repro.runner.resources`).  A worker whose pings stop is
  preempted after ``heartbeat_timeout`` seconds — typically long before
  a wall-clock budget would expire — and recorded as a
  :class:`~repro.errors.HeartbeatTimeout`.
* **Adaptive deadlines** — heartbeats carry (accesses, total), so the
  supervisor estimates each worker's throughput and tightens its
  deadline to ``deadline_factor ×`` the projected duration; completed
  jobs additionally seed a per-trace estimate used at submission.  A
  live-but-looping worker is caught without a hand-tuned global timeout.
* **Resource guards** — a ``/proc``-based monitor samples free memory,
  free disk under the journal, and per-worker RSS each tick.  Memory
  pressure *degrades* the campaign (submissions pause, the worker target
  halves) instead of letting the OOM killer pick a victim; pressure
  release restores the pool.  A worker over the RSS cap is preempted
  with a typed ``ResourceError``.  Journal writes are guarded by a
  free-disk check and buffered (never lost) while the disk is full.
* **Circuit breakers** — ``quarantine_after`` consecutive failures of a
  (trace, prefetcher) group open its breaker: remaining jobs of the
  group are recorded as typed :class:`~repro.runner.jobs.QuarantinedRun`
  outcomes without burning a worker.  On a resumed campaign each open
  breaker admits one half-open probe; success closes it.
* **Graceful shutdown** — the first SIGINT/SIGTERM stops submissions and
  drains in-flight jobs, leaving a journal a plain ``--resume`` can
  finish from plus a campaign manifest; a second signal hard-kills the
  pool immediately.

Every tick is clocked through an injectable ``now_fn`` and large forward
clock jumps are detected and *rebased* (deadlines and heartbeat stamps
shift with the jump), so NTP steps or suspend/resume cannot mass-expire
healthy workers — the chaos harness exercises exactly that.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import shutil
import signal
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError, HeartbeatTimeout, ResourceError
from repro.runner.executor import DEFER, ExperimentRunner, RunnerConfig
from repro.runner.jobs import JobSpec, QuarantinedRun, RunOutcome, SuiteResult
from repro.runner.journal import Journal
from repro.runner.resources import (
    ResourceMonitor,
    ResourcePolicy,
    disk_free_mb,
    read_heartbeat,
)

__all__ = ["CampaignSupervisor", "SupervisorConfig",
           "load_campaign_manifest"]


def load_campaign_manifest(path):
    """Read a campaign manifest, healing a torn tail on the way in.

    Returns ``(manifest, healed)``: ``manifest`` is ``None`` when the
    file is missing or beyond recovery; ``healed`` is ``True`` when the
    strict parse failed and the torn-tail recovery of
    :func:`repro.durability.tolerant_read_json` produced the document
    (a manifest written by a pre-durability build and cut mid-write).
    The current writer is atomic, so ``healed`` should never be true
    for a manifest it produced — chaos scenarios assert exactly that.
    """
    from repro.durability import tolerant_read_json

    doc, healed = tolerant_read_json(path)
    if not isinstance(doc, dict):
        return None, healed
    return doc, healed


@dataclass
class SupervisorConfig:
    """Supervision knobs, layered on top of :class:`RunnerConfig`."""

    heartbeat_every: int = 5000      # simulated accesses between pings
    heartbeat_timeout: float = 10.0  # seconds without progress → dead
    poll_interval: float = 0.25      # supervisor tick period
    adaptive_deadlines: bool = True
    deadline_factor: float = 4.0     # × projected duration
    min_deadline: float = 5.0        # adaptive deadlines never drop below
    quarantine_after: int = 3        # consecutive failures → breaker opens
    skew_threshold: float = 30.0     # tick gap treated as a clock jump
    policy: ResourcePolicy = field(default_factory=ResourcePolicy)
    heartbeat_dir: Optional[Union[str, Path]] = None  # default: tmpdir
    manifest_path: Optional[Union[str, Path]] = None  # default: journal+.manifest.json
    handle_signals: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_every < 0:
            raise ConfigError(
                f"heartbeat_every must be >= 0, got {self.heartbeat_every}",
                field="heartbeat_every",
            )
        if self.heartbeat_timeout <= 0:
            raise ConfigError(
                f"heartbeat_timeout must be positive, got "
                f"{self.heartbeat_timeout}", field="heartbeat_timeout",
            )
        if self.poll_interval <= 0:
            raise ConfigError(
                f"poll_interval must be positive, got {self.poll_interval}",
                field="poll_interval",
            )
        if self.deadline_factor < 1.0:
            raise ConfigError(
                f"deadline_factor must be >= 1, got {self.deadline_factor}",
                field="deadline_factor",
            )
        if self.min_deadline <= 0:
            raise ConfigError(
                f"min_deadline must be positive, got {self.min_deadline}",
                field="min_deadline",
            )
        if self.quarantine_after < 1:
            raise ConfigError(
                f"quarantine_after must be >= 1, got "
                f"{self.quarantine_after}", field="quarantine_after",
            )
        if self.skew_threshold <= 0:
            raise ConfigError(
                f"skew_threshold must be positive, got "
                f"{self.skew_threshold}", field="skew_threshold",
            )


@dataclass
class _Breaker:
    """Per-(trace, prefetcher) circuit-breaker state."""

    strikes: int = 0
    state: str = "closed"        # closed | open | probing
    probing_key: Optional[str] = None
    probe_spent: bool = False    # this run's half-open probe already used
    tripped_this_run: bool = False


@dataclass
class _HeartbeatState:
    """Supervisor-side view of one job's heartbeat channel."""

    path: Path
    last_seq: Optional[int] = None
    last_change_at: float = 0.0   # supervisor clock, not worker clock
    accesses: int = 0
    total: int = 0
    pid: Optional[int] = None
    throughput: Optional[float] = None  # accesses / second (EMA)


class CampaignSupervisor(ExperimentRunner):
    """A supervised :class:`ExperimentRunner` (pool mode only).

    ``now_fn`` and ``monitor`` are injectable for the chaos harness:
    a skewed clock and scripted ``/proc`` readers make every degradation
    path deterministically testable.
    """

    def __init__(
        self,
        config: Optional[RunnerConfig] = None,
        supervisor: Optional[SupervisorConfig] = None,
        run_fn: Optional[Callable] = None,
        journal: Optional[Journal] = None,
        now_fn: Optional[Callable[[], float]] = None,
        monitor: Optional[ResourceMonitor] = None,
    ) -> None:
        config = config or RunnerConfig(workers=1)
        if config.workers < 1:
            raise ConfigError(
                "the campaign supervisor needs a process pool; "
                f"workers must be >= 1, got {config.workers}",
                field="workers",
            )
        self.sup = supervisor or SupervisorConfig()
        self._now_fn = now_fn or time.monotonic
        self._monitor = monitor or ResourceMonitor(self.sup.policy)
        kwargs = {} if run_fn is None else {"run_fn": run_fn}
        super().__init__(config, journal=journal, **kwargs)
        if (self._journal is not None and journal is None
                and self._journal.guard is None):
            self._journal.guard = self._disk_guard

        self._breakers: Dict[str, _Breaker] = {}
        self._hb: Dict[str, _HeartbeatState] = {}
        self._trace_est: Dict[str, float] = {}  # elapsed-seconds EMA
        self._events: List[dict] = []
        self._recorded: List[Tuple[str, str, str]] = []  # (key, status, kind)
        # Half-open probe audit trail: one entry per breaker release
        # (probe admitted), updated in place with the probe's verdict.
        # Lands in the manifest as ``quarantine_probes``.
        self._probe_history: List[dict] = []
        # Campaign throughput: records simulated by fresh (non-replayed)
        # completions, the worker-seconds they took, and the campaign
        # wall clock — the manifest's aggregate records/sec.
        self._records_done = 0
        self._busy_seconds = 0.0
        # Per-engine record counts of fresh completions, plus the chunk
        # sizes seen on batched jobs — the manifest's throughput block
        # names which inner loop produced the campaign's records/sec.
        self._engine_records: Dict[str, int] = {}
        self._chunk_sizes: set = set()
        self._campaign_started: Optional[float] = None
        self._drain = False
        self._hard_killed = False
        self._paused = False
        self._workers_target = config.workers
        self._last_tick: Optional[float] = None
        self._hb_dir: Optional[Path] = None
        self._hb_dir_is_temp = False

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(self, jobs, run_fn: Optional[Callable] = None) -> SuiteResult:
        self._drain = False
        self._hard_killed = False
        self._campaign_started = self._now()
        if self.config.resume and self._journal is not None:
            self._seed_breakers()
        self._ensure_heartbeat_dir()
        restore = self._install_signal_handlers()
        try:
            suite = super().run(jobs, run_fn)
            if self._drain:
                suite.interrupted = True
            return suite
        except KeyboardInterrupt:
            self._hard_killed = True
            self._event("hard-kill", detail="second signal: pool killed")
            raise
        finally:
            restore()
            self._write_manifest()
            self._cleanup_heartbeat_dir()

    # ------------------------------------------------------------------
    # Supervision hooks (overriding ExperimentRunner no-ops)
    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self._now_fn()

    def _max_wait(self) -> Optional[float]:
        return self.sup.poll_interval

    def _expiry_now(self) -> float:
        # Use the tick-synchronized timestamp: deadlines were rebased (or
        # not) relative to exactly this clock reading, so a jump landing
        # after the tick cannot expire jobs the tick considered healthy.
        return (self._last_tick if self._last_tick is not None
                else self._now())

    def _draining(self) -> bool:
        return self._drain

    def _available_slots(self) -> int:
        if self._paused:
            return 0
        return min(self.config.workers, self._workers_target)

    def _group(self, job) -> str:
        if isinstance(job, JobSpec):
            return f"{job.trace}|{job.l1d}"
        return job.key

    def _prepare_job(self, job, attempt: int):
        group = self._group(job)
        breaker = self._breakers.get(group)
        if breaker is not None:
            if breaker.state == "open":
                if breaker.tripped_this_run or breaker.probe_spent:
                    return job, QuarantinedRun(
                        key=job.key, group=group,
                        failures=max(breaker.strikes,
                                     self.sup.quarantine_after),
                    )
                # Half-open: admit exactly one probe for this group.
                breaker.state = "probing"
                breaker.probing_key = job.key
                released_at = round(self._now(), 3)
                self._probe_history.append({
                    "group": group, "key": job.key,
                    "released_at": released_at, "outcome": "pending",
                })
                self._event("breaker-probe", group=group, key=job.key,
                            released_at=released_at)
            elif (breaker.state == "probing"
                    and breaker.probing_key != job.key):
                return job, DEFER  # wait for the probe's verdict
        return self._attach_heartbeat(job), None

    def _deadline_for(self, job, now: float) -> Optional[float]:
        static = (now + self.config.timeout) if self.config.timeout else None
        if not self.sup.adaptive_deadlines:
            return static
        est = self._trace_est.get(getattr(job, "trace", None))
        if est is None:
            return static
        adaptive = now + max(self.sup.min_deadline,
                             self.sup.deadline_factor * est)
        return adaptive if static is None else min(static, adaptive)

    def _tick(self, inflight: Dict) -> List[Tuple[object, BaseException, str]]:
        now = self._now()
        self._detect_clock_skew(now, inflight)
        preempts: List[Tuple[object, BaseException, str]] = []
        claimed = set()

        pids: Dict[int, object] = {}  # pid -> future, for the RSS guard
        for fut, entry in inflight.items():
            state = self._hb.get(entry.job.key)
            if state is None:
                continue
            self._observe_heartbeat(entry, state, now)
            if state.pid is not None:
                pids[state.pid] = fut
            stale = now - max(state.last_change_at, entry.started)
            if stale > self.sup.heartbeat_timeout and fut not in claimed:
                claimed.add(fut)
                preempts.append((fut, HeartbeatTimeout(
                    f"no heartbeat for {stale:.1f}s "
                    f"(limit {self.sup.heartbeat_timeout:.1f}s); "
                    f"worker presumed dead and preempted",
                    trace=getattr(entry.job, "trace", None),
                    prefetcher=getattr(entry.job, "l1d", None),
                    timeout=self.sup.heartbeat_timeout,
                ), "timeout"))

        status = self._monitor.sample(
            pids=list(pids),
            disk_path=(self._journal.path.parent
                       if self._journal is not None else None),
        )
        self._apply_pressure(status)
        for pid in status.fat_workers:
            fut = pids.get(pid)
            entry = inflight.get(fut)
            if fut is None or entry is None or fut in claimed:
                continue
            claimed.add(fut)
            rss_cap = self.sup.policy.max_worker_rss_mb
            self._event("rss-preempt", pid=pid, key=entry.job.key)
            preempts.append((fut, ResourceError(
                f"worker pid {pid} exceeded the {rss_cap:.0f} MB RSS cap "
                f"and was preempted",
                trace=getattr(entry.job, "trace", None),
                prefetcher=getattr(entry.job, "l1d", None),
            ), "resource"))
        return preempts

    def _outcome_recorded(self, outcome: RunOutcome, job) -> None:
        self._recorded.append(
            (outcome.key,
             "ok" if outcome.ok
             else ("quarantined" if isinstance(outcome, QuarantinedRun)
                   else "failed"),
             getattr(outcome, "kind", "ok"))
        )
        state = self._hb.pop(outcome.key, None)
        if state is not None:
            try:
                state.path.unlink()
            except OSError:
                pass
        if job is None:
            return
        if outcome.ok and not getattr(outcome, "from_journal", False):
            extra = getattr(getattr(outcome, "result", None), "extra", None)
            if isinstance(extra, dict):
                if extra.get("native_demoted"):
                    # One structured event per demoted native run: the
                    # fallback is silent at the simulate() API level
                    # (results stay bit-identical), so the manifest is
                    # where operators learn the C kernel did not run.
                    from repro.native.runner import DEMOTION_REASONS

                    code = int(extra.get("native_demotion_code", 0))
                    self._event(
                        "native-demotion",
                        key=outcome.key,
                        code=code,
                        reason=DEMOTION_REASONS.get(code, "unknown"),
                        demoted_spans=int(
                            extra.get("native_demoted_spans", 0)),
                        native_spans=int(extra.get("native_spans", 0)),
                    )
                records = extra.get("trace_records")
                if records:
                    self._records_done += int(records)
                    self._busy_seconds += outcome.elapsed
                    engine = getattr(job, "engine", "classic")
                    self._engine_records[engine] = (
                        self._engine_records.get(engine, 0) + int(records)
                    )
                    if engine == "batched":
                        self._chunk_sizes.add(
                            getattr(job, "chunk_size", 0) or 0
                        )
        if outcome.ok and isinstance(job, JobSpec):
            prev = self._trace_est.get(job.trace)
            self._trace_est[job.trace] = (
                outcome.elapsed if prev is None
                else 0.5 * prev + 0.5 * outcome.elapsed
            )
        self._update_breaker(outcome, job)

    def _journal_degraded(self, exc: BaseException) -> None:
        super()._journal_degraded(exc)
        self._event("journal-degraded", detail=str(exc))

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def _ensure_heartbeat_dir(self) -> None:
        if self.sup.heartbeat_every <= 0:
            return
        if self.sup.heartbeat_dir is not None:
            self._hb_dir = Path(self.sup.heartbeat_dir)
            self._hb_dir.mkdir(parents=True, exist_ok=True)
        elif self._hb_dir is None:
            self._hb_dir = Path(tempfile.mkdtemp(prefix="repro-hb-"))
            self._hb_dir_is_temp = True

    def _cleanup_heartbeat_dir(self) -> None:
        if self._hb_dir_is_temp and self._hb_dir is not None:
            shutil.rmtree(self._hb_dir, ignore_errors=True)
            self._hb_dir = None
            self._hb_dir_is_temp = False

    def _attach_heartbeat(self, job):
        if (self.sup.heartbeat_every <= 0 or self._hb_dir is None
                or not isinstance(job, JobSpec)):
            return job
        digest = hashlib.sha1(job.key.encode("utf-8")).hexdigest()[:16]
        path = self._hb_dir / f"{digest}.json"
        # (Re-)registering resets the liveness window — a resubmitted job
        # gets a fresh grace period, not its predecessor's stale stamp.
        self._hb[job.key] = _HeartbeatState(
            path=path, last_change_at=self._now()
        )
        return dataclasses.replace(
            job, heartbeat_path=str(path),
            heartbeat_every=self.sup.heartbeat_every,
        )

    def _observe_heartbeat(self, entry, state: _HeartbeatState,
                           now: float) -> None:
        data = read_heartbeat(state.path)
        if data is None or data.get("seq") == state.last_seq:
            return
        accesses = int(data.get("accesses", 0))
        if (state.last_seq is not None and accesses > state.accesses):
            dt = now - state.last_change_at
            if dt > 0:
                inst = (accesses - state.accesses) / dt
                state.throughput = (
                    inst if state.throughput is None
                    else 0.5 * state.throughput + 0.5 * inst
                )
        state.last_seq = data.get("seq")
        state.accesses = accesses
        state.total = int(data.get("total", 0)) or state.total
        state.pid = data.get("pid")
        state.last_change_at = now
        if (self.sup.adaptive_deadlines and state.throughput
                and state.total):
            projected = state.total / state.throughput
            adaptive = entry.started + max(
                self.sup.min_deadline,
                self.sup.deadline_factor * projected,
            )
            # Liveness gets first refusal: never tighten below one more
            # heartbeat window from now.
            floor = now + self.sup.heartbeat_timeout
            adaptive = max(adaptive, floor)
            entry.deadline = (adaptive if entry.deadline is None
                              else min(entry.deadline, adaptive))

    # ------------------------------------------------------------------
    # Clock skew
    # ------------------------------------------------------------------

    def _detect_clock_skew(self, now: float, inflight: Dict) -> None:
        last = self._last_tick
        self._last_tick = now
        if last is None:
            return
        gap = now - last
        if gap <= self.sup.skew_threshold:
            return
        # The clock jumped (NTP step, suspend/resume, chaos injection):
        # rebase every deadline and liveness stamp by the gap so healthy
        # workers are not mass-expired by a time discontinuity.
        for entry in inflight.values():
            entry.started += gap
            if entry.deadline is not None:
                entry.deadline += gap
        for state in self._hb.values():
            state.last_change_at += gap
        self._event("clock-skew", gap_seconds=round(gap, 3))
        if self.config.verbose:
            print(f"[supervisor] clock jumped {gap:.0f}s; deadlines "
                  f"rebased", file=sys.stderr)

    # ------------------------------------------------------------------
    # Resource pressure
    # ------------------------------------------------------------------

    def _apply_pressure(self, status) -> None:
        pressured = status.memory_pressure or status.disk_pressure
        if pressured and not self._paused:
            self._paused = True
            if status.memory_pressure and self._workers_target > 1:
                self._workers_target = max(1, self._workers_target // 2)
            self._event(
                "degrade",
                memory=status.memory_pressure, disk=status.disk_pressure,
                available_mb=status.available_mb,
                disk_free_mb=status.disk_free_mb,
                workers_target=self._workers_target,
            )
            if self.config.verbose:
                print(f"[supervisor] resource pressure: submissions "
                      f"paused, worker target {self._workers_target}",
                      file=sys.stderr)
        elif self._paused and not pressured and status.memory_recovered:
            self._paused = False
            self._workers_target = self.config.workers
            self._event("restore", workers_target=self._workers_target)
            if self.config.verbose:
                print("[supervisor] resource pressure cleared: pool "
                      "restored", file=sys.stderr)

    def _disk_guard(self) -> Optional[str]:
        if self._journal is None:
            return None
        free = self._monitor._disk(self._journal.path.parent)
        floor = self.sup.policy.min_free_disk_mb
        if free is not None and free < floor:
            return (f"{free:.1f} MB free under {self._journal.path.parent} "
                    f"(floor {floor:.1f} MB)")
        return None

    # ------------------------------------------------------------------
    # Circuit breakers
    # ------------------------------------------------------------------

    def _seed_breakers(self) -> None:
        """On resume, rebuild breaker state from quarantined journal
        records: each quarantined group starts open with one half-open
        probe available."""
        for rec in self._journal.load().values():
            if rec.get("status") != "quarantined":
                continue
            group = rec.get("group") or rec.get("key")
            breaker = self._breakers.setdefault(group, _Breaker())
            breaker.state = "open"
            breaker.strikes = max(breaker.strikes,
                                  rec.get("failures", 0))
            breaker.tripped_this_run = False
            breaker.probe_spent = False

    def _update_breaker(self, outcome: RunOutcome, job) -> None:
        if isinstance(outcome, QuarantinedRun):
            return  # skipping a job teaches the breaker nothing
        group = self._group(job)
        breaker = self._breakers.get(group)
        if outcome.ok:
            if breaker is not None:
                if breaker.state == "probing":
                    self._probe_verdict(group, outcome.key, "closed")
                if breaker.state != "closed":
                    self._event("breaker-close", group=group)
                breaker.state = "closed"
                breaker.strikes = 0
                breaker.probing_key = None
                breaker.tripped_this_run = False
            return
        breaker = self._breakers.setdefault(group, _Breaker())
        breaker.strikes += 1
        if breaker.state == "probing" and breaker.probing_key == outcome.key:
            breaker.state = "open"
            breaker.probing_key = None
            breaker.probe_spent = True
            self._probe_verdict(group, outcome.key, "reopened")
            self._event("breaker-reopen", group=group,
                        strikes=breaker.strikes)
        elif (breaker.state == "closed"
                and breaker.strikes >= self.sup.quarantine_after):
            breaker.state = "open"
            breaker.tripped_this_run = True
            self._event("breaker-open", group=group,
                        strikes=breaker.strikes)
            if self.config.verbose:
                print(f"[supervisor] quarantining {group} after "
                      f"{breaker.strikes} consecutive failures",
                      file=sys.stderr)

    def _probe_verdict(self, group: str, key: str, outcome: str) -> None:
        """Stamp a half-open probe's result into the audit trail."""
        for entry in reversed(self._probe_history):
            if (entry["group"] == group and entry["key"] == key
                    and entry["outcome"] == "pending"):
                entry["outcome"] = outcome
                entry["resolved_at"] = round(self._now(), 3)
                break
        self._event("breaker-probe-result", group=group, key=key,
                    outcome=outcome)

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------

    def _install_signal_handlers(self) -> Callable[[], None]:
        if (not self.sup.handle_signals
                or threading.current_thread() is not threading.main_thread()):
            return lambda: None

        def handler(signum, frame):
            if not self._drain:
                self._drain = True
                print(f"[supervisor] caught signal {signum}: draining "
                      f"in-flight jobs (signal again to hard-kill)",
                      file=sys.stderr)
                self._event("drain", signal=signum)
            else:
                raise KeyboardInterrupt

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # non-main thread / platform
                pass

        def restore() -> None:
            for sig, prev in previous.items():
                try:
                    signal.signal(sig, prev)
                except (ValueError, OSError):
                    pass

        return restore

    # ------------------------------------------------------------------
    # Manifest + events
    # ------------------------------------------------------------------

    def _event(self, kind: str, **details) -> None:
        event = {"event": kind, "at_monotonic": round(self._now(), 3)}
        event.update(details)
        self._events.append(event)

    def _manifest_path(self) -> Optional[Path]:
        if self.sup.manifest_path is not None:
            return Path(self.sup.manifest_path)
        if self._journal is not None:
            return self._journal.path.with_name(
                self._journal.path.name + ".manifest.json"
            )
        return None

    def _throughput(self) -> Dict[str, Any]:
        """Campaign-level records/sec: the manifest's headline metric.

        ``records_per_sec`` divides records by campaign wall time (what
        the operator experiences — includes scheduling, journal writes,
        degraded pauses).  ``records_per_sec_busy`` divides by summed
        worker seconds (per-worker simulation speed, the number to
        compare against ``BENCH_simcore.json``).  Journal-replayed jobs
        contribute to neither: they did no simulation this run.
        ``engines`` breaks the record count down by the simulator inner
        loop that produced it; ``chunk_sizes`` lists the chunk lengths
        batched jobs ran with (0 = engine default).
        """
        wall = 0.0
        if self._campaign_started is not None:
            wall = max(0.0, self._now() - self._campaign_started)
        return {
            "records_simulated": float(self._records_done),
            "busy_seconds": round(self._busy_seconds, 3),
            "campaign_seconds": round(wall, 3),
            "records_per_sec": (
                round(self._records_done / wall, 1) if wall > 0 else 0.0
            ),
            "records_per_sec_busy": (
                round(self._records_done / self._busy_seconds, 1)
                if self._busy_seconds > 0 else 0.0
            ),
            "engines": dict(sorted(self._engine_records.items())),
            "chunk_sizes": sorted(self._chunk_sizes),
        }

    def _write_manifest(self) -> None:
        path = self._manifest_path()
        if path is None:
            return
        counts: Dict[str, int] = {}
        for _key, status, kind in self._recorded:
            label = status if status != "failed" else f"failed:{kind}"
            counts[label] = counts.get(label, 0) + 1
        manifest = {
            "schema": 1,
            "written_at": time.time(),
            "interrupted": self._drain,
            "hard_killed": self._hard_killed,
            "jobs_recorded": len(self._recorded),
            "counts": counts,
            "quarantined_groups": sorted(
                group for group, b in self._breakers.items()
                if b.state in ("open", "probing")
            ),
            # Every half-open release this run: when the probe was let
            # through (released_at, monotonic) and how it ended
            # ("closed", "reopened", or "pending" if the campaign was
            # drained before the probe's verdict landed).
            "quarantine_probes": self._probe_history,
            "workers": self.config.workers,
            "workers_target_final": self._workers_target,
            "journal": (str(self._journal.path)
                        if self._journal is not None else None),
            "journal_backlog": len(self._journal_backlog),
            "throughput": self._throughput(),
            "events": self._events,
        }
        try:
            # Temp + fsync + rename + directory fsync — same crash
            # discipline as the service WAL, so a SIGKILL mid-write
            # leaves the previous manifest, never a torn one.
            from repro.durability import atomic_write_json

            atomic_write_json(path, manifest, sort_keys=False)
        except OSError:
            pass  # a manifest must never mask the campaign's own outcome
