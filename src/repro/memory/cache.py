"""Set-associative cache model with prefetch metadata.

Each cache line carries, besides tag/valid/dirty, the metadata Berti's
hardware extension needs (paper Figure 5, gray parts):

* ``arrival_cycle`` — cycle at which the fill data actually arrives.  A
  demand that touches the line earlier observes a *late* prefetch and
  stalls for the residual latency.
* ``prefetched`` — line was brought in by a prefetch and has not yet been
  demanded.  Cleared on the first demand hit (which is the moment Berti
  trains, because that hit is a miss that *would have occurred* in the
  baseline).
* ``pf_latency`` — the 12-bit fetch-latency field per L1D line.  Zero
  means "overflowed or already consumed"; Berti skips training then.

The cache is timing-agnostic: the hierarchy decides latencies, the cache
just tracks contents and replacement state.

This module is on the simulation hot path: line/stats objects use
``__slots__``, set indexing is a mask (set counts are enforced powers of
two), and lookup/fill bind their per-call state to locals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.memory.replacement import (
    DRRIPPolicy,
    LRUPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    make_policy,
)


@dataclass(slots=True)
class CacheLine:
    """State of one cache way."""

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    prefetched: bool = False
    arrival_cycle: int = 0
    pf_latency: int = 0
    ip: int = 0          # IP of the access that triggered the fill
    vline: int = -1      # virtual line address (for L1D prefetcher training)
    pf_origin: str = ""  # "l1d" or "l2": which prefetcher issued the fill


@dataclass(slots=True)
class CacheStats:
    """Per-cache event counters, split demand vs. prefetch."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_fills: int = 0
    demand_fills: int = 0
    useful_prefetches: int = 0      # prefetched lines demanded at least once
    late_prefetches: int = 0        # demanded before the data arrived
    useless_prefetches: int = 0     # prefetched lines evicted unused
    writebacks: int = 0

    def reset(self) -> None:
        self.demand_accesses = 0
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_fills = 0
        self.demand_fills = 0
        self.useful_prefetches = 0
        self.late_prefetches = 0
        self.useless_prefetches = 0
        self.writebacks = 0


class Cache:
    """A set-associative, write-back, write-allocate cache.

    Parameters mirror Table II of the paper; ``latency`` is the hit latency
    in cycles, used by the hierarchy, not by the cache itself.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        latency: int,
        line_size: int = 64,
        replacement: str = "lru",
    ) -> None:
        if ways < 1:
            raise ConfigError(
                f"{name}: ways must be >= 1, got {ways}", field="ways"
            )
        if size_bytes <= 0 or size_bytes % (ways * line_size) != 0:
            raise ConfigError(
                f"{name}: size {size_bytes} not divisible by "
                f"ways*line ({ways}*{line_size})",
                field="size_bytes",
            )
        num_sets = size_bytes // (ways * line_size)
        if num_sets & (num_sets - 1):
            raise ConfigError(
                f"{name}: set count must be a power of two, got {num_sets} "
                f"(size {size_bytes}, ways {ways}, line {line_size})",
                field="size_bytes",
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.latency = latency
        self.line_size = line_size
        self.num_sets = num_sets
        self._set_mask = num_sets - 1
        # Way lists are materialised lazily on first fill: a large LLC
        # allocates tens of thousands of line objects, most never touched
        # by short runs.  Untouched sets stay empty lists, which nested
        # iteration (prefetched_line_counts, tests) handles naturally.
        self.sets: List[List[CacheLine]] = [[] for _ in range(num_sets)]
        # Presence index for O(1) probes: line -> way (set is line-derived).
        self._where: dict = {}
        # Valid lines per set, to skip the invalid-way scan when full.
        self._valid_count: List[int] = [0] * num_sets
        self.policy: ReplacementPolicy = make_policy(
            replacement, num_sets, ways
        )
        # DRRIP needs per-set miss notifications; resolve the check once.
        self._drrip: Optional[DRRIPPolicy] = (
            self.policy if isinstance(self.policy, DRRIPPolicy) else None
        )
        # Replacement-policy fast paths: lookup/fill run per access, so
        # the common policies' one-line updates are inlined there instead
        # of paying a method call.  Exact-type checks: subclasses (e.g.
        # DRRIP's dynamic insertion) keep the virtual call.
        policy = self.policy
        self._lru: Optional[LRUPolicy] = (
            policy if type(policy) is LRUPolicy else None
        )
        # SRRIP hits always reset RRPV to 0 — DRRIP inherits that — but
        # only plain SRRIP has a static insertion RRPV for fills.
        self._srrip_hit = (
            policy._rrpv if isinstance(policy, SRRIPPolicy) else None
        )
        self._srrip_fill = (
            policy._rrpv if type(policy) is SRRIPPolicy else None
        )
        self._srrip_insert = SRRIPPolicy.MAX_RRPV - 1
        self.stats = CacheStats()
        # Optional observer invoked with the victim line on eviction.  The
        # line object is reused for the incoming fill after the hook
        # returns — hooks must copy any fields they want to retain.
        self.eviction_hook: Optional[Callable[[CacheLine], None]] = None

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------

    def __getstate__(self):
        # The eviction hook is a closure over the owning hierarchy and
        # cannot be pickled; Hierarchy.__setstate__ rewires it on load.
        state = self.__dict__.copy()
        state["eviction_hook"] = None
        # _where is a pure presence index (line -> way); its insertion
        # order is never read, but it differs between the classic loop
        # (access order) and the native importer (set/way scan order).
        # Canonicalise so snapshot bytes are backend-independent.
        state["_where"] = dict(sorted(self._where.items()))
        return state

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------

    def set_index(self, line: int) -> int:
        return line & self._set_mask

    def _find(self, line: int) -> Tuple[int, Optional[int]]:
        return line & self._set_mask, self._where.get(line)

    def probe(self, line: int) -> bool:
        """Presence check with no side effects (no replacement update)."""
        return line in self._where

    def peek(self, line: int) -> Optional[CacheLine]:
        """Return the line's metadata without touching replacement state."""
        way = self._where.get(line)
        if way is None:
            return None
        return self.sets[line & self._set_mask][way]

    def lookup(self, line: int, is_demand: bool = True) -> Optional[CacheLine]:
        """Access the cache; updates replacement state and hit/miss stats.

        Returns the :class:`CacheLine` on a hit, ``None`` on a miss.  The
        caller is responsible for interpreting the prefetch metadata (late
        vs. timely) and clearing ``prefetched`` via :meth:`demand_touch`.
        """
        way = self._where.get(line)
        stats = self.stats
        if way is None:
            if is_demand:
                stats.demand_accesses += 1
                stats.demand_misses += 1
                if self._drrip is not None:
                    self._drrip.record_miss(line & self._set_mask)
            return None
        sidx = line & self._set_mask
        if is_demand:
            stats.demand_accesses += 1
            stats.demand_hits += 1
        lru = self._lru
        if lru is not None:
            clock = lru._clock[sidx] + 1
            lru._clock[sidx] = clock
            lru._age[sidx][way] = clock
        elif self._srrip_hit is not None:
            self._srrip_hit[sidx][way] = 0
        else:
            self.policy.on_hit(sidx, way)
        return self.sets[sidx][way]

    def demand_touch(self, cl: CacheLine, now: int) -> Tuple[bool, bool, int]:
        """Consume a demand hit on ``cl``.

        Returns ``(was_prefetched, was_late, residual_wait)``: whether this
        was the first demand to a prefetched line, whether that prefetch
        was late, and the extra cycles the demand must wait for the data.
        """
        residual = cl.arrival_cycle - now
        if residual < 0:
            residual = 0
        was_prefetched = cl.prefetched
        was_late = was_prefetched and residual > 0
        if was_prefetched:
            stats = self.stats
            stats.useful_prefetches += 1
            if was_late:
                stats.late_prefetches += 1
            cl.prefetched = False
        return was_prefetched, was_late, residual

    def fill(
        self,
        line: int,
        now: int,
        arrival_cycle: int,
        is_prefetch: bool,
        ip: int = 0,
        vline: int = -1,
        pf_latency: int = 0,
        pf_origin: str = "",
    ) -> Optional[CacheLine]:
        """Install ``line``; returns the evicted line if it needs writeback.

        If the line is already present (e.g. a prefetch raced a demand),
        the existing entry is refreshed instead of allocating a new way.
        A displaced dirty victim is returned as a copy; clean victims are
        reported only through :attr:`eviction_hook` (which receives the
        line object *before* it is reused for the incoming fill).
        """
        where = self._where
        way = where.get(line)
        stats = self.stats
        victim: Optional[CacheLine] = None
        if way is None:
            sidx = line & self._set_mask
            ways_list = self.sets[sidx]
            if not ways_list:
                ways_list += [CacheLine() for _ in range(self.ways)]
            # _pick_victim inlined: fills dominate the miss path.
            if self._valid_count[sidx] >= self.ways:
                way = self.policy.victim(sidx)
            else:
                way = 0
                for candidate in ways_list:
                    if not candidate.valid:
                        break
                    way += 1
                if way >= self.ways:
                    way = self.policy.victim(sidx)  # defensive; count says full
            cl = ways_list[way]
            if cl.valid:
                if cl.prefetched:
                    stats.useless_prefetches += 1
                if cl.dirty:
                    stats.writebacks += 1
                    victim = CacheLine(
                        tag=cl.tag, valid=True, dirty=True,
                        prefetched=cl.prefetched, ip=cl.ip,
                        vline=cl.vline, pf_origin=cl.pf_origin,
                    )
                if self.eviction_hook is not None:
                    self.eviction_hook(cl)
                del where[cl.tag]
            else:
                self._valid_count[sidx] += 1
            where[line] = way
            cl.tag = line
            cl.valid = True
            cl.dirty = False
            cl.prefetched = is_prefetch
            cl.arrival_cycle = arrival_cycle
            cl.pf_latency = pf_latency
            cl.ip = ip
            cl.vline = vline
            cl.pf_origin = pf_origin if is_prefetch else ""
            lru = self._lru
            if lru is not None:
                clock = lru._clock[sidx] + 1
                lru._clock[sidx] = clock
                lru._age[sidx][way] = clock
            elif self._srrip_fill is not None:
                self._srrip_fill[sidx][way] = self._srrip_insert
            else:
                self.policy.on_fill(sidx, way)
        else:
            cl = self.sets[line & self._set_mask][way]
            # Refresh arrival if the new copy arrives earlier.
            if arrival_cycle < cl.arrival_cycle:
                cl.arrival_cycle = arrival_cycle
            if not is_prefetch:
                cl.prefetched = False
        if is_prefetch:
            stats.prefetch_fills += 1
        else:
            stats.demand_fills += 1
        return victim

    def mark_dirty(self, line: int) -> None:
        """Flag ``line`` dirty (stores); no-op if absent."""
        way = self._where.get(line)
        if way is not None:
            self.sets[line & self._set_mask][way].dirty = True

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns True when it was present."""
        way = self._where.get(line)
        if way is None:
            return False
        sidx = line & self._set_mask
        self.sets[sidx][way] = CacheLine()
        del self._where[line]
        self._valid_count[sidx] -= 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.ways

    def occupancy(self) -> int:
        """Number of valid lines (mostly for tests)."""
        return sum(cl.valid for s in self.sets for cl in s)

    def reset_stats(self) -> None:
        self.stats.reset()
