"""Figure 9: per-trace speedups of the L1D prefetchers.

Paper highlights reproduced as assertions:
* mcf-1554B is Berti's best SPEC trace (1.89× in the paper), well above
  IPCP and MLOP there;
* CactuBSSN is the adversarial case: global-delta prefetching (MLOP)
  beats Berti;
* MLOP/IPCP fall below IP-stride on several traces while Berti almost
  never does (paper: Berti's worst is −2.6 % on mcf-1536).
"""

from common import all_memint_traces, once, run_matrix, save_report

from repro.analysis.report import format_table

NAMES = ["ip_stride", "mlop", "ipcp", "berti"]


def test_fig09_per_trace_speedups(benchmark):
    def compute():
        matrix = run_matrix(all_memint_traces(), NAMES)
        rows = []
        for tname, results in matrix.items():
            base = results["ip_stride"]
            rows.append(
                [tname]
                + [results[n].speedup_over(base) for n in NAMES[1:]]
            )
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig09_per_trace",
        format_table(
            ["trace", "mlop", "ipcp", "berti"], rows,
            title="Figure 9 — per-trace speedup vs IP-stride",
        ),
    )

    by = {r[0]: dict(zip(["mlop", "ipcp", "berti"], r[1:])) for r in rows}

    # mcf-1554B: Berti's showcase.
    mcf = by["mcf_s-1554B"]
    assert mcf["berti"] > 1.3
    assert mcf["berti"] > mcf["mlop"]

    # CactuBSSN: the one benchmark where global deltas win.
    cactu = by["cactuBSSN_s-2421B"]
    assert cactu["mlop"] > cactu["berti"]
    assert cactu["berti"] >= 0.95  # Berti stays ~neutral, it does not lose

    # Competitors fall below baseline on several traces; Berti on few.
    def losers(name, threshold=0.99):
        return sum(1 for r in by.values() if r[name] < threshold)

    assert losers("mlop") > losers("berti")
    # Berti's average never collapses: no catastrophic trace.
    assert min(r["berti"] for r in by.values()) > 0.7
