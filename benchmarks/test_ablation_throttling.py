"""Throttling ablation: does Berti need an external aggressiveness
controller?

The paper (§V) argues no: external throttles (FDP-style) pay off for
low-accuracy prefetchers, while "with Berti ... the implicit confidence
mechanism acts like a prefetch throttler".  We wrap both IPCP (low
accuracy on irregular workloads) and Berti in the classic FDP control
loop and compare.
"""

from common import SCALE, gap_traces, once, run, save_report

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.prefetchers.registry import make_prefetcher
from repro.prefetchers.throttle import FDPThrottle
from repro.simulator.engine import simulate


def test_fdp_throttling(benchmark):
    def compute():
        traces = gap_traces()
        base = {t.name: run(t, "ip_stride") for t in traces}

        def geo(factory):
            return geomean([
                simulate(t, l1d_prefetcher=factory()).speedup_over(
                    base[t.name]
                )
                for t in traces
            ])

        rows = [
            ["ipcp", geo(lambda: make_prefetcher("ipcp"))],
            ["fdp(ipcp)", geo(lambda: FDPThrottle(make_prefetcher("ipcp")))],
            ["berti", geo(lambda: make_prefetcher("berti"))],
            ["fdp(berti)",
             geo(lambda: FDPThrottle(make_prefetcher("berti")))],
        ]
        return rows

    rows = once(benchmark, compute)
    save_report(
        "ablation_throttling",
        format_table(
            ["configuration", "geomean speedup (GAP)"], rows,
            title=(
                "Throttling ablation (paper §V: Berti's confidence gating"
                " already throttles — an external FDP loop adds nothing)"
            ),
        ),
    )

    by = dict(rows)
    # FDP changes Berti very little: the confidence mechanism already
    # suppressed the junk an external throttle would catch.
    assert abs(by["fdp(berti)"] - by["berti"]) <= 0.08
    # The throttle's relative effect on Berti is no larger than on IPCP.
    berti_delta = abs(by["fdp(berti)"] - by["berti"])
    ipcp_delta = abs(by["fdp(ipcp)"] - by["ipcp"])
    assert berti_delta <= ipcp_delta + 0.05
