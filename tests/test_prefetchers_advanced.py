"""Unit tests for MLOP, IPCP, SPP-PPF, Bingo, and MISB."""

import pytest

from repro.prefetchers.base import FILL_L1, FILL_L2, AccessInfo
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.ipcp import IPCPPrefetcher
from repro.prefetchers.misb import MISBPrefetcher
from repro.prefetchers.mlop import MLOPPrefetcher
from repro.prefetchers.spp import SPPPrefetcher


def acc(line, ip=0x400, hit=False, now=0, prefetch_hit=False):
    return AccessInfo(ip=ip, line=line, hit=hit, prefetch_hit=prefetch_hit,
                      now=now)


class TestMLOP:
    def test_selects_global_offset_on_stream(self):
        pf = MLOPPrefetcher(update_period=100)
        for i in range(150):
            pf.on_access(acc(i * 2, hit=False, now=i))
        assert 2 in pf.selected

    def test_prefetches_selected_offsets(self):
        pf = MLOPPrefetcher()
        pf.selected = [4, 8] + [0] * (pf.num_lookaheads - 2)
        targets = {r.line for r in pf.on_access(acc(100, hit=True))}
        assert {104, 108} <= targets

    def test_no_selection_below_threshold(self):
        import random
        rng = random.Random(3)
        pf = MLOPPrefetcher(update_period=100)
        for i in range(150):
            pf.on_access(acc(rng.randrange(10**6), hit=False, now=i))
        assert all(d == 0 for d in pf.selected)

    def test_interleaved_streams_confuse_global_deltas(self):
        """§II-B: per-IP strides interleaved -> global deltas degrade."""
        pf = MLOPPrefetcher(update_period=200)
        line_a, line_b = 0, 10**6
        for i in range(300):
            if i % 2:
                line_a += 3
                pf.on_access(acc(line_a, ip=1, hit=False, now=i))
            else:
                line_b += 5
                pf.on_access(acc(line_b, ip=2, hit=False, now=i))
        # The per-IP strides 3 and 5 are invisible; only their global
        # interleave is scored, so neither pure stride is dominant.
        assert pf.selected.count(3) + pf.selected.count(5) < pf.num_lookaheads

    def test_deduplicated_targets(self):
        pf = MLOPPrefetcher()
        pf.selected = [4, 4, 4] + [0] * (pf.num_lookaheads - 3)
        reqs = pf.on_access(acc(0, hit=True))
        assert len(reqs) == 1

    def test_storage_reasonable(self):
        assert 1.0 < MLOPPrefetcher().storage_kb() < 20.0


class TestIPCP:
    def test_cs_class_covers_constant_stride(self):
        pf = IPCPPrefetcher()
        reqs = []
        for i in range(6):
            reqs = pf.on_access(acc(i * 4, ip=0x77))
        targets = [r.line for r in reqs]
        # Last access at line 20: CS prefetches the strided lines ahead.
        assert targets == [24, 28, 32]

    def test_cplx_class_covers_stride_pattern(self):
        pf = IPCPPrefetcher()
        pattern = [1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2]
        line = 0
        reqs = []
        for s in pattern * 4:
            reqs = pf.on_access(acc(line, ip=0x88))
            line += s
        assert reqs, "CPLX should chain predictions on a stable signature"

    def test_nl_fallback_for_unclassified(self):
        pf = IPCPPrefetcher()
        reqs = pf.on_access(acc(500, ip=0x99))
        assert [r.line for r in reqs] == [501]

    def test_gs_fires_on_dense_region(self):
        pf = IPCPPrefetcher()
        reqs = []
        import random
        rng = random.Random(1)
        # Dense ascending walk with enough irregularity to defeat CS/CPLX.
        line = 0
        for i in range(64):
            line += rng.choice([1, 1, 2])
            reqs = pf.on_access(acc(line, ip=0xAA + i % 7))
        assert reqs, "GS or NL should fire on a dense stream"

    def test_separate_ips_tracked(self):
        pf = IPCPPrefetcher()
        for i in range(6):
            pf.on_access(acc(i * 4, ip=0x11))
        reqs = pf.on_access(acc(1000, ip=0x22))
        # New IP: no CS confidence, falls back (no strided targets).
        assert all(r.line != 1000 + 4 for r in reqs)

    def test_storage_small(self):
        assert IPCPPrefetcher().storage_kb() < 2.0


class TestSPP:
    def _train_pages(self, pf, pages=range(10, 40), delta=2, steps=20):
        """SPP generalises across pages: walk many pages with one delta."""
        for page in pages:
            line = page * 64
            for __ in range(steps):
                pf.on_access(acc(line, ip=0x1))
                line += delta

    def test_learns_intra_page_delta(self):
        pf = SPPPrefetcher(use_ppf=False)
        self._train_pages(pf)
        # Fresh page, two accesses to rebuild the signature path.
        pf.on_access(acc(100 * 64, ip=0x1))
        reqs = pf.on_access(acc(100 * 64 + 2, ip=0x1))
        assert any(r.line == 100 * 64 + 4 for r in reqs)

    def test_stays_within_page(self):
        pf = SPPPrefetcher(use_ppf=False)
        self._train_pages(pf)
        pf.on_access(acc(100 * 64 + 58, ip=0x1))
        reqs = pf.on_access(acc(100 * 64 + 60, ip=0x1))
        assert all(100 * 64 <= r.line < 101 * 64 for r in reqs)

    def test_lookahead_produces_multiple_targets(self):
        pf = SPPPrefetcher(use_ppf=False)
        self._train_pages(pf, steps=30)
        pf.on_access(acc(100 * 64, ip=0x1))
        reqs = pf.on_access(acc(100 * 64 + 2, ip=0x1))
        assert len({r.line for r in reqs}) >= 2

    def test_ppf_rejects_after_negative_training(self):
        pf = SPPPrefetcher(use_ppf=True, ppf_threshold=0)
        self._train_pages(pf)
        # Punish every issued prefetch until the perceptron flips.
        for round_ in range(50):
            pf.on_access(acc(100 * 64, ip=0x1))
            reqs = pf.on_access(acc(100 * 64 + 2, ip=0x1))
            for r in reqs:
                pf.on_evict(r.line, was_useful=False)
        assert pf.ppf_rejections > 0

    def test_signature_tables_bounded(self):
        pf = SPPPrefetcher(st_entries=8)
        for page in range(50):
            pf.on_access(acc(page * 64, ip=0x1))
        assert len(pf._st) <= 8

    def test_storage_larger_than_ipcp(self):
        assert SPPPrefetcher().storage_kb() > IPCPPrefetcher().storage_kb()


class TestBingo:
    def test_replays_recorded_footprint(self):
        pf = BingoPrefetcher(accumulation_entries=1)
        region0 = 0
        # Record a footprint in region 0 (trigger + three more lines).
        pf.on_access(acc(region0 * 32 + 4, ip=0x9))
        for off in (6, 9, 20):
            pf.on_access(acc(region0 * 32 + off, ip=0x9))
        # Touch another region: evicts region 0 into the PHT.
        pf.on_access(acc(50 * 32 + 4, ip=0x9))
        # Re-trigger with the same short event (PC+offset) in a new region.
        reqs = pf.on_access(acc(80 * 32 + 4, ip=0x9))
        offsets = {r.line - 80 * 32 for r in reqs}
        assert {6, 9, 20} <= offsets

    def test_no_prediction_without_history(self):
        pf = BingoPrefetcher()
        assert pf.on_access(acc(1000, ip=0x9)) == []

    def test_long_event_takes_priority(self):
        pf = BingoPrefetcher(accumulation_entries=1)
        region = 7
        pf.on_access(acc(region * 32 + 1, ip=0x9))
        pf.on_access(acc(region * 32 + 5, ip=0x9))
        pf.on_access(acc(999 * 32, ip=0x9))  # flush region 7 footprint
        reqs = pf.on_access(acc(region * 32 + 1, ip=0x9))
        assert {r.line - region * 32 for r in reqs} == {5}

    def test_storage_is_heavy(self):
        assert BingoPrefetcher().storage_kb() > 20.0


class TestMISB:
    def test_temporal_stream_replay(self):
        pf = MISBPrefetcher()
        lines = [100, 9000, 42, 77777, 1234]
        # First pass: misses train structural mapping.
        for i, ln in enumerate(lines):
            pf.on_access(acc(ln, ip=0x5, hit=False, now=i))
        # Second pass: accessing the first line prefetches successors.
        reqs = pf.on_access(acc(lines[0], ip=0x5, hit=True, now=100))
        assert 9000 in {r.line for r in reqs}

    def test_spatial_prefetchers_cannot_see_this(self):
        """The stream is spatially random: deltas exceed any delta field."""
        lines = [100, 9000, 42]
        deltas = [b - a for a, b in zip(lines, lines[1:])]
        assert all(abs(d) > (1 << 12) or d < 0 for d in deltas)

    def test_metadata_bounded(self):
        pf = MISBPrefetcher(metadata_entries=8)
        for i in range(100):
            pf.on_access(acc(i * 999, ip=0x5, hit=False, now=i))
        assert len(pf._ps) <= 8

    def test_storage_heaviest(self):
        assert MISBPrefetcher().storage_kb() > 90.0
