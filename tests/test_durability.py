"""Crash-durability primitives and the manifests built on them.

Covers ``repro.durability`` directly (atomic write, torn-tail healing)
and the two manifests that adopted it: the fleet manifest and the
supervisor campaign manifest — both must survive a torn write with a
healed prefix instead of an unreadable file.
"""

import json

import pytest

from repro.durability import (
    atomic_write_json,
    heal_truncated_json,
    tolerant_read_json,
)


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------


def test_atomic_write_json_roundtrip(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_json(path, {"b": 2, "a": [1, 2]})
    assert json.loads(path.read_text()) == {"a": [1, 2], "b": 2}
    # Overwrite is atomic replace, not append.
    atomic_write_json(path, {"only": True})
    assert json.loads(path.read_text()) == {"only": True}
    assert not list(tmp_path.glob("*.tmp*"))  # no temp litter


@pytest.mark.parametrize("cut_frac", [0.3, 0.5, 0.7, 0.9, 0.99])
def test_heal_truncated_json_recovers_a_prefix(cut_frac):
    doc = {"events": [{"event": f"e{i}", "at": i, "note": 'x"y'}
                      for i in range(20)], "version": 1}
    raw = json.dumps(doc, indent=2)
    cut = raw[:int(len(raw) * cut_frac)]
    recovered = heal_truncated_json(cut)
    assert isinstance(recovered, dict)
    events = recovered.get("events", [])
    # Every recovered event is verbatim one of the originals, in order.
    assert events == doc["events"][:len(events)]


def test_heal_truncated_json_intact_and_hopeless():
    assert heal_truncated_json(json.dumps({"a": 1})) == {"a": 1}
    assert heal_truncated_json("####") is None
    # Flat object torn mid-key: falls back to the last complete pair.
    assert heal_truncated_json('{"a": 1, "b') == {"a": 1}


def test_tolerant_read_json(tmp_path):
    path = tmp_path / "m.json"
    path.write_text(json.dumps({"events": [1, 2, 3]}))
    doc, healed = tolerant_read_json(path)
    assert doc == {"events": [1, 2, 3]} and healed is False
    path.write_text(json.dumps({"events": [1, 2, 3]})[:-6])
    doc, healed = tolerant_read_json(path)
    assert healed is True
    assert isinstance(doc, dict)


# ----------------------------------------------------------------------
# Fleet manifest
# ----------------------------------------------------------------------


def test_fleet_manifest_heals_torn_tail(tmp_path):
    from repro.fleet.manifest import FleetManifest

    path = tmp_path / "fleet-manifest.json"
    m = FleetManifest(path)
    for i in range(6):
        m.record(f"event-{i}", worker=f"w{i}")
    raw = path.read_text()
    path.write_text(raw[:len(raw) // 2])  # torn mid-write

    reloaded = FleetManifest(path)
    events = [e["event"] for e in reloaded.events()]
    assert events[-1] == "manifest-healed"
    recovered = [e for e in events if e.startswith("event-")]
    assert recovered == [f"event-{i}" for i in range(len(recovered))]
    # The healed manifest is immediately writable again.
    reloaded.record("after-heal")
    assert json.loads(path.read_text())


def test_fleet_manifest_unrecoverable_garbage(tmp_path):
    from repro.fleet.manifest import FleetManifest

    path = tmp_path / "fleet-manifest.json"
    path.write_text("\x00\x01 not json at all")
    m = FleetManifest(path)
    events = [e["event"] for e in m.events()]
    assert events == ["manifest-unrecoverable"]


# ----------------------------------------------------------------------
# Supervisor campaign manifest
# ----------------------------------------------------------------------


def test_campaign_manifest_heals_torn_tail(tmp_path):
    from repro.runner.supervisor import load_campaign_manifest

    path = tmp_path / "campaign.manifest.json"
    doc = {"campaign": "c1",
           "jobs": [{"trace": f"t{i}", "status": "done"}
                    for i in range(10)]}
    atomic_write_json(path, doc)
    loaded, healed = load_campaign_manifest(path)
    assert loaded == doc and healed is False

    raw = path.read_text()
    path.write_text(raw[:int(len(raw) * 0.6)])
    loaded, healed = load_campaign_manifest(path)
    assert healed is True
    assert loaded is not None and loaded.get("campaign") == "c1"
    jobs = loaded.get("jobs", [])
    assert jobs == doc["jobs"][:len(jobs)]
