"""Stream prefetcher — the classic commercial design (paper §V cites
stream prefetching [24, 28, 53] as deployed in production processors).

Tracks up to N concurrent streams.  A stream is born from two nearby
misses in the same direction; once confirmed it prefetches a run of
lines ahead of the demand pointer, ramping its depth up with successful
hits (the "degree ramping" production streamers use).
"""

from __future__ import annotations

from typing import List, Optional

from repro.prefetchers.base import (
    FILL_L1,
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)


class _Stream:
    __slots__ = ("base", "direction", "confirmed", "depth", "last", "lru")

    def __init__(self, line: int, lru: int) -> None:
        self.base = line
        self.direction = 0
        self.confirmed = False
        self.depth = 1
        self.last = line
        self.lru = lru


class StreamPrefetcher(Prefetcher):
    """Multi-stream detector with depth ramping."""

    name = "streamer"
    level = "l1d"

    WINDOW = 16        # lines: how close a miss must be to join a stream
    MAX_DEPTH = 8

    def __init__(self, streams: int = 16) -> None:
        self.max_streams = streams
        self._streams: List[_Stream] = []
        self._clock = 0

    def _find_stream(self, line: int) -> Optional[_Stream]:
        for s in self._streams:
            if abs(line - s.last) <= self.WINDOW:
                return s
        return None

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        self._clock += 1
        line = access.line
        stream = self._find_stream(line)

        if stream is None:
            if access.hit:
                return []
            if len(self._streams) >= self.max_streams:
                victim = min(self._streams, key=lambda s: s.lru)
                self._streams.remove(victim)
            self._streams.append(_Stream(line, self._clock))
            return []

        stream.lru = self._clock
        step = line - stream.last
        if step == 0:
            return []
        direction = 1 if step > 0 else -1

        if not stream.confirmed:
            stream.direction = direction
            stream.confirmed = True
            stream.last = line
            return []

        if direction != stream.direction:
            # Direction flip: restart the stream.
            stream.direction = direction
            stream.depth = 1
            stream.last = line
            return []

        # Confirmed advance: prefetch ahead, ramping depth.
        stream.last = line
        stream.depth = min(self.MAX_DEPTH, stream.depth + 1)
        requests = []
        for k in range(1, stream.depth + 1):
            fill = FILL_L1 if k <= 2 else FILL_L2
            requests.append(
                PrefetchRequest(
                    line=line + stream.direction * k, fill_level=fill
                )
            )
        return requests

    def storage_bits(self) -> int:
        # 16 streams x (24-bit pointer + 4-bit depth + dir + state + LRU).
        return self.max_streams * (24 + 4 + 1 + 1 + 5)

    def reset(self) -> None:
        self._streams.clear()
        self._clock = 0
