"""Result records produced by a simulation run.

:class:`SimResult` is the single object every experiment consumes: IPC,
per-level demand MPKI, prefetch accuracy/timeliness, per-link traffic and
the raw event counts the energy model needs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict


@dataclass
class PrefetchSummary:
    issued: int = 0
    fills: int = 0
    useful: int = 0
    late: int = 0
    useless: int = 0
    promoted: int = 0
    dropped_translation: int = 0
    dropped_duplicate: int = 0
    dropped_queue_full: int = 0
    dropped_mshr_full: int = 0

    @property
    def timely(self) -> int:
        return max(0, self.useful - self.late)

    @property
    def resolved(self) -> int:
        """Prefetches whose outcome is known (demanded or evicted)."""
        return self.useful + self.useless

    @property
    def accuracy(self) -> float:
        """(timely + late) / resolved — the artifact's accuracy formula,
        restricted to resolved prefetches so short traces are unbiased."""
        return self.useful / self.resolved if self.resolved else 0.0

    @property
    def timely_fraction(self) -> float:
        return self.timely / self.resolved if self.resolved else 0.0

    @property
    def late_fraction(self) -> float:
        return self.late / self.resolved if self.resolved else 0.0


@dataclass
class SimResult:
    """Everything measured over the measurement window of one run."""

    trace_name: str
    prefetcher_l1d: str
    prefetcher_l2: str
    instructions: int = 0
    cycles: float = 0.0

    l1d_demand_accesses: int = 0
    l1d_demand_misses: int = 0
    l2_demand_accesses: int = 0
    l2_demand_misses: int = 0
    llc_demand_accesses: int = 0
    llc_demand_misses: int = 0

    pf_l1d: PrefetchSummary = field(default_factory=PrefetchSummary)
    pf_l2: PrefetchSummary = field(default_factory=PrefetchSummary)

    traffic_l1d_l2: int = 0
    traffic_l2_llc: int = 0
    traffic_llc_dram: int = 0

    dram_reads: int = 0
    dram_writes: int = 0
    dram_row_hits: int = 0
    dram_row_misses: int = 0
    avg_dram_read_latency: float = 0.0

    l1d_writebacks: int = 0
    l2_writebacks: int = 0
    llc_writebacks: int = 0

    l1d_prefetch_fills: int = 0
    l2_prefetch_fills: int = 0
    llc_prefetch_fills: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def _mpki(self, misses: int) -> float:
        if self.instructions == 0:
            return 0.0
        return misses * 1000.0 / self.instructions

    @property
    def l1d_mpki(self) -> float:
        return self._mpki(self.l1d_demand_misses)

    @property
    def l2_mpki(self) -> float:
        return self._mpki(self.l2_demand_misses)

    @property
    def llc_mpki(self) -> float:
        return self._mpki(self.llc_demand_misses)

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio vs. a baseline run of the same trace."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON-serialisable form (for the runner's journal)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimResult":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        data = dict(data)
        pf_l1d = PrefetchSummary(**data.pop("pf_l1d", {}))
        pf_l2 = PrefetchSummary(**data.pop("pf_l2", {}))
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["pf_l1d"] = pf_l1d
        kwargs["pf_l2"] = pf_l2
        return cls(**kwargs)

    def summary_line(self) -> str:
        return (
            f"{self.trace_name:<28s} l1d={self.prefetcher_l1d:<10s} "
            f"l2={self.prefetcher_l2:<8s} IPC={self.ipc:6.3f} "
            f"L1D-MPKI={self.l1d_mpki:7.2f} acc={self.pf_l1d.accuracy:5.1%}"
        )
