"""Unit tests for Berti's history table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BertiConfig
from repro.core.history_table import HistoryTable


IP = 0x402DC7


class TestInsertSearch:
    def test_empty_search_finds_nothing(self):
        h = HistoryTable()
        assert h.search_timely(IP, 100, demand_time=1000, latency=10) == []

    def test_timely_delta_found(self):
        """Figure 4b: address 2 at t=0, address 12 demanded later with a
        latency smaller than the gap -> delta +10 is timely."""
        h = HistoryTable()
        h.insert(IP, 2, now=0)
        deltas = h.search_timely(IP, 12, demand_time=500, latency=100)
        assert deltas == [10]

    def test_too_recent_access_is_not_timely(self):
        h = HistoryTable()
        h.insert(IP, 2, now=450)
        deltas = h.search_timely(IP, 12, demand_time=500, latency=100)
        assert deltas == []

    def test_boundary_age_equal_latency_is_timely(self):
        h = HistoryTable()
        h.insert(IP, 2, now=400)
        assert h.search_timely(IP, 12, demand_time=500, latency=100) == [10]

    def test_multiple_timely_deltas_figure4c(self):
        """Figure 4c: accessing 15, both +10 and +13 are timely."""
        h = HistoryTable()
        h.insert(IP, 2, now=0)
        h.insert(IP, 5, now=100)
        h.insert(IP, 10, now=600)
        deltas = h.search_timely(IP, 15, demand_time=700, latency=150)
        assert set(deltas) == {13, 10}

    def test_youngest_first_order(self):
        h = HistoryTable()
        h.insert(IP, 2, now=0)
        h.insert(IP, 5, now=10)
        deltas = h.search_timely(IP, 15, demand_time=700, latency=100)
        assert deltas == [10, 13]

    def test_zero_delta_excluded(self):
        h = HistoryTable()
        h.insert(IP, 12, now=0)
        assert h.search_timely(IP, 12, demand_time=500, latency=10) == []

    def test_delta_beyond_13_bits_excluded(self):
        h = HistoryTable()
        h.insert(IP, 0, now=0)
        assert h.search_timely(IP, 5000, demand_time=500, latency=10) == []

    def test_negative_delta(self):
        h = HistoryTable()
        h.insert(IP, 100, now=0)
        assert h.search_timely(IP, 90, demand_time=500, latency=10) == [-10]

    def test_max_eight_deltas_per_search(self):
        cfg = BertiConfig()
        h = HistoryTable(cfg)
        for i in range(12):
            h.insert(IP, i, now=i)
        deltas = h.search_timely(IP, 100, demand_time=5000, latency=10)
        assert len(deltas) == cfg.max_deltas_per_search


class TestIsolation:
    def test_different_ips_do_not_mix(self):
        h = HistoryTable()
        other = IP + 1
        h.insert(other, 2, now=0)
        assert h.search_timely(IP, 12, demand_time=500, latency=10) == []

    def test_fifo_replacement_evicts_oldest(self):
        cfg = BertiConfig()
        h = HistoryTable(cfg)
        for i in range(cfg.history_ways + 1):
            h.insert(IP, i * 2, now=i)
        # line 0 (oldest) evicted: delta to it cannot be found.
        deltas = h.search_timely(IP, 100, demand_time=10_000, latency=1)
        assert 100 not in deltas

    def test_set_index_spreads_aligned_ips(self):
        """Aligned IPs (x86 code is byte-addressed but our synthetic IPs
        are multiples of 8/16) must not all land in one set."""
        h = HistoryTable()
        sets = {h._set_index(0x430000 + 16 * k) for k in range(16)}
        assert len(sets) > 2


class TestTimestampWraparound:
    def test_wrapped_timestamp_age(self):
        h = HistoryTable()
        mask = (1 << 16) - 1
        h.insert(IP, 2, now=mask - 10)  # just before wrap
        deltas = h.search_timely(IP, 12, demand_time=(1 << 16) + 50,
                                 latency=20)
        assert deltas == [10]  # age 60 >= 20 despite the wrap

    def test_stale_entries_beyond_half_range_ignored(self):
        h = HistoryTable()
        h.insert(IP, 2, now=0)
        deltas = h.search_timely(IP, 12, demand_time=40_000, latency=10)
        assert deltas == []


class TestBookkeeping:
    def test_counters(self):
        h = HistoryTable()
        h.insert(IP, 1, 0)
        h.search_timely(IP, 2, 100, 10)
        assert h.inserts == 1 and h.searches == 1

    def test_occupancy_and_reset(self):
        h = HistoryTable()
        for i in range(5):
            h.insert(IP, i, i)
        assert h.occupancy() == 5
        h.reset()
        assert h.occupancy() == 0 and h.inserts == 0


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),   # line
                st.integers(min_value=0, max_value=20_000),  # time
            ),
            min_size=1, max_size=40,
        ),
        st.integers(min_value=1, max_value=500),  # latency
    )
    def test_all_returned_deltas_are_timely_and_bounded(self, inserts, latency):
        h = HistoryTable()
        for line, ts in inserts:
            h.insert(IP, line, ts)
        demand_time = 25_000
        cur = 1500
        deltas = h.search_timely(IP, cur, demand_time, latency)
        cfg = h.config
        assert len(deltas) <= cfg.max_deltas_per_search
        for d in deltas:
            assert d != 0
            assert -(1 << 12) <= d <= (1 << 12) - 1
            # The delta corresponds to some inserted line old enough.
            src = cur - d
            assert any(
                line == src and demand_time - ts >= latency
                for line, ts in inserts
            )
