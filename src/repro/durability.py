"""Shared crash-durability primitives for JSON artifacts.

Three layers of the system persist whole-document JSON next to their
append-only journals: the fleet event manifest
(:mod:`repro.fleet.manifest`), the campaign supervisor's manifest
(:mod:`repro.runner.supervisor`), and the fuzzing campaign reports
(:mod:`repro.fuzz`).  They all need the same three guarantees:

* **atomic visibility** — readers never observe a half-written file
  (temp file + ``fsync`` + ``os.replace``);
* **durable renames** — the rename itself survives power loss where the
  platform allows it (``fsync`` of the containing directory);
* **tolerant reload** — a document written by an older, non-atomic
  writer (or truncated by a dying filesystem) is *healed* rather than
  silently discarded: the longest structurally complete prefix is
  recovered and the caller is told bytes were lost.

:func:`heal_truncated_json` is the torn-tail recovery: it scans the
prefix once to learn the open bracket/string state, then tries a
bounded number of cut points from the tail backwards, closing whatever
is open.  It is deliberately conservative — it only ever *removes*
trailing data and appends closers, so a healed document contains only
key/value pairs that were fully present in the bytes on disk.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Tuple

__all__ = [
    "atomic_write_json",
    "fsync_dir",
    "heal_truncated_json",
    "tolerant_read_json",
]


def fsync_dir(directory: str | Path) -> None:
    """Flush a directory's metadata (making a rename durable), best effort."""
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def atomic_write_json(path: str | Path, doc: Any, indent: int = 2,
                      sort_keys: bool = True) -> None:
    """Write ``doc`` to ``path`` so a crash leaves the old file or the new.

    Temp file in the target directory, ``flush`` + ``fsync``, then
    ``os.replace`` and a directory fsync — the same discipline as the
    snapshot writer and the service WAL.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=indent, sort_keys=sort_keys)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(path.parent)


def _scan_state(text: str) -> Tuple[list, bool, bool]:
    """Bracket stack, in-string flag, and escape flag after ``text``."""
    stack: list = []
    in_string = False
    escaped = False
    for ch in text:
        if escaped:
            escaped = False
            continue
        if in_string:
            if ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch == '"':
            in_string = True
        elif ch in "{[":
            stack.append(ch)
        elif ch == "}":
            if stack and stack[-1] == "{":
                stack.pop()
        elif ch == "]":
            if stack and stack[-1] == "[":
                stack.pop()
    return stack, in_string, escaped


def heal_truncated_json(raw: str | bytes,
                        max_attempts: int = 256) -> Optional[Any]:
    """Recover the longest parseable prefix of a torn JSON document.

    Returns the healed object, or ``None`` when nothing structurally
    complete survives (e.g. the file was cut inside the opening brace).
    A valid document is parsed unchanged.  Healing never invents data:
    cut points after a complete substructure (closing bracket) are
    tried first — so a torn array of objects heals to a verbatim
    prefix of its complete elements — then closing-quote/comma cuts
    for flat documents, and only closing brackets are ever appended.
    """
    if isinstance(raw, bytes):
        raw = raw.decode("utf-8", errors="replace")
    raw = raw.rstrip()
    if not raw:
        return None
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        pass

    # Cut candidates, scanned from the tail.  Cuts after a closing
    # bracket are preferred: they drop a partially-written trailing
    # element *whole*, so for the array-of-objects manifests a healed
    # document is a verbatim prefix of the elements that were written
    # (never an object with half its keys).  Quote/comma cuts are the
    # fallback for flat documents with no complete substructure to
    # cut at.
    strong, weak = [], []
    for i in range(len(raw) - 1, 0, -1):
        if raw[i] in "}]":
            strong.append(i + 1)
        elif raw[i] == '"':
            weak.append(i + 1)
        elif raw[i] == ",":
            weak.append(i)
        if len(strong) >= max_attempts and len(weak) >= max_attempts:
            break
    for cut in strong[:max_attempts] + weak[:max_attempts]:
        prefix = raw[:cut].rstrip()
        # Drop a trailing comma / colon left dangling by the cut; a
        # dangling colon drags its key string down with it.
        while prefix and prefix[-1] in ",:":
            if prefix[-1] == ",":
                prefix = prefix[:-1].rstrip()
                continue
            prefix = prefix[:-1].rstrip()
            if not prefix.endswith('"'):
                prefix = ""
                break
            j = prefix.rfind('"', 0, len(prefix) - 1)
            while j > 0 and prefix[j - 1] == "\\":
                j = prefix.rfind('"', 0, j)
            if j < 0:
                prefix = ""
                break
            prefix = prefix[:j].rstrip()
        if not prefix:
            continue
        stack, in_string, escaped = _scan_state(prefix)
        if in_string or escaped:
            continue
        closers = "".join("}" if b == "{" else "]" for b in reversed(stack))
        try:
            return json.loads(prefix + closers)
        except json.JSONDecodeError:
            continue
    return None


def tolerant_read_json(path: str | Path) -> Tuple[Optional[Any], bool]:
    """Read a JSON document, healing a torn tail.

    Returns ``(doc, healed)``: ``doc`` is ``None`` when the file is
    missing or beyond recovery; ``healed`` is ``True`` when the strict
    parse failed and the torn-tail recovery produced the document (the
    caller should record that data was lost).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return None, False
    try:
        return json.loads(raw.decode("utf-8")), False
    except (json.JSONDecodeError, UnicodeDecodeError):
        return heal_truncated_json(raw), True
