"""Trace containers: the unit of work every experiment consumes.

A trace is an ordered sequence of memory accesses annotated with the
number of non-memory instructions preceding each access — the same
information a ChampSim trace carries after decoding.  Records:

``(ip, vaddr, is_write, gap, dep)``

* ``ip``   — instruction pointer of the memory instruction
* ``vaddr``— virtual byte address accessed
* ``is_write`` — store vs. load
* ``gap``  — non-memory instructions between the previous access and this
* ``dep``  — 0, or *d* when the address depends on the value loaded by the
  *d*-th previous memory record (pointer chasing / indirect indexing)

Storage is **columnar**: one ``array('q')`` per field plus a precomputed
line-address column (``vaddr >> 6``), so the simulation hot loop iterates
flat C arrays instead of a list of Python tuples.  The :attr:`Trace.records`
view preserves the historical row-oriented API (append/extend/index/slice/
iterate/compare) for tests, generators, and the fault-injection harness.
"""

from __future__ import annotations

import json
from array import array
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

TraceRecord = Tuple[int, int, bool, int, int]

_LINE_SHIFT = 6
_PAGE_SHIFT = 12


class _RecordsView:
    """Row-oriented (list-of-tuples-like) view over a trace's columns.

    Cheap to construct; mutations write through to the owning trace's
    column arrays.  Slicing materialises a plain list of tuples.
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace._ips)

    def __iter__(self) -> Iterator[TraceRecord]:
        t = self._trace
        for ip, va, w, g, d in zip(t._ips, t._addrs, t._writes, t._gaps,
                                   t._deps):
            yield (ip, va, bool(w), g, d)

    def __getitem__(self, idx):
        t = self._trace
        if isinstance(idx, slice):
            return [
                (ip, va, bool(w), g, d)
                for ip, va, w, g, d in zip(
                    t._ips[idx], t._addrs[idx], t._writes[idx], t._gaps[idx],
                    t._deps[idx],
                )
            ]
        return (
            t._ips[idx], t._addrs[idx], bool(t._writes[idx]),
            t._gaps[idx], t._deps[idx],
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, _RecordsView):
            other = list(other)
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        return list(self) == list(other)

    def __mul__(self, times: int) -> List[TraceRecord]:
        return list(self) * times

    def append(self, record: Sequence) -> None:
        ip, va, w, g, d = record
        self._trace.append(ip, va, w, g, d)

    def extend(self, records: Iterable[Sequence]) -> None:
        self._trace.extend(records)

    def __repr__(self) -> str:
        return f"_RecordsView({list(self)!r})"


class Trace:
    """A named memory-access trace plus bookkeeping (columnar storage)."""

    __slots__ = (
        "name", "suite", "description",
        "_ips", "_addrs", "_writes", "_gaps", "_deps", "_lines",
        "_pages_cache",
    )

    def __init__(
        self,
        name: str,
        records: Optional[Iterable[Sequence]] = None,
        suite: str = "",
        description: str = "",
    ) -> None:
        self.name = name
        self.suite = suite
        self.description = description
        self._ips = array("q")
        self._addrs = array("q")
        self._writes = array("q")   # 0/1
        self._gaps = array("q")
        self._deps = array("q")
        self._lines = array("q")    # precomputed vaddr >> 6
        self._pages_cache: Optional[array] = None
        if records:
            self.extend(records)

    def __len__(self) -> int:
        return len(self._ips)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.name == other.name
            and self.suite == other.suite
            and self.description == other.description
            and self._ips == other._ips
            and self._addrs == other._addrs
            and self._writes == other._writes
            and self._gaps == other._gaps
            and self._deps == other._deps
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def append(
        self,
        ip: int,
        vaddr: int,
        is_write: bool = False,
        gap: int = 0,
        dep: int = 0,
    ) -> None:
        self._ips.append(ip)
        self._addrs.append(vaddr)
        self._writes.append(1 if is_write else 0)
        self._gaps.append(gap)
        self._deps.append(dep)
        self._lines.append(vaddr >> _LINE_SHIFT)

    def extend(self, records: Iterable[Sequence]) -> None:
        ips, addrs = self._ips, self._addrs
        writes, gaps, deps = self._writes, self._gaps, self._deps
        lines = self._lines
        for ip, vaddr, is_write, gap, dep in records:
            ips.append(ip)
            addrs.append(vaddr)
            writes.append(1 if is_write else 0)
            gaps.append(gap)
            deps.append(dep)
            lines.append(vaddr >> _LINE_SHIFT)

    # ------------------------------------------------------------------
    # Row and column access
    # ------------------------------------------------------------------

    @property
    def records(self) -> _RecordsView:
        """Row-oriented view: behaves like the old list of tuples."""
        return _RecordsView(self)

    def columns(self) -> Tuple[array, array, array, array, array]:
        """The raw ``(ips, addrs, writes, gaps, deps)`` column arrays.

        The hot simulation loop iterates these directly; callers must not
        mutate them behind the trace's back (use :meth:`append`).
        """
        return self._ips, self._addrs, self._writes, self._gaps, self._deps

    def line_addresses(self) -> array:
        """Precomputed line-address column (``vaddr >> 6`` per record)."""
        return self._lines

    def decoded_columns(self) -> Tuple[array, array]:
        """``(vlines, vpages)`` derived columns, vectorized and cached.

        The page column is produced in one numpy pass (an arithmetic
        shift, so negative addresses floor-divide exactly like Python's
        ``>>``) and cached; staleness is detected by length, which is
        sufficient because the column arrays are append-only.  Both the
        batched fused loop and the native span kernel consume these —
        the same decode, shared by pointer.
        """
        pages = self._pages_cache
        if pages is None or len(pages) != len(self._addrs):
            addrs = self._addrs
            if len(addrs):
                a = np.frombuffer(addrs, dtype=np.int64)
                pages = array("q")
                pages.frombytes((a >> _PAGE_SHIFT).tobytes())
            else:
                pages = array("q")
            self._pages_cache = pages
        return self._lines, pages

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total instructions (memory + the gaps between them)."""
        return len(self._ips) + sum(self._gaps)

    @property
    def unique_ips(self) -> int:
        return len(set(self._ips))

    @property
    def unique_lines(self) -> int:
        return len(set(self._lines))

    @property
    def write_fraction(self) -> float:
        if not self._ips:
            return 0.0
        return sum(self._writes) / len(self._writes)

    def footprint_bytes(self) -> int:
        """Approximate data footprint (unique lines × 64 B)."""
        return self.unique_lines * 64

    def validate(self) -> None:
        """Check every record is well-formed; raise ``TraceError`` if not.

        Guards the simulator against corrupted trace files (and is what
        the fault-injection harness's ``corrupt`` fault trips): negative
        addresses/IPs/gaps, or a ``dep`` pointing before the trace start.
        """
        from repro.errors import TraceError

        for i, (ip, vaddr, gap, dep) in enumerate(
            zip(self._ips, self._addrs, self._gaps, self._deps)
        ):
            if ip < 0 or vaddr < 0 or gap < 0 or dep < 0:
                raise TraceError(
                    f"corrupt record {i}: negative field "
                    f"(ip={ip}, vaddr={vaddr}, gap={gap}, dep={dep})",
                    trace=self.name,
                )

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------

    def _copy_meta(self, name: str) -> "Trace":
        return Trace(name=name, suite=self.suite,
                     description=self.description)

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace over record indices [start, stop)."""
        out = self._copy_meta(f"{self.name}[{start}:{stop}]")
        out._ips = self._ips[start:stop]
        out._addrs = self._addrs[start:stop]
        out._writes = self._writes[start:stop]
        out._gaps = self._gaps[start:stop]
        out._deps = self._deps[start:stop]
        out._lines = self._lines[start:stop]
        return out

    def repeated(self, times: int) -> "Trace":
        """The trace concatenated ``times`` times (multi-core replay)."""
        out = self._copy_meta(self.name)
        out._ips = self._ips * times
        out._addrs = self._addrs * times
        out._writes = self._writes * times
        out._gaps = self._gaps * times
        out._deps = self._deps * times
        out._lines = self._lines * times
        return out

    # ------------------------------------------------------------------
    # Serialisation (npz + json sidecar)
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        path = Path(path)
        np.savez_compressed(
            path,
            ips=np.asarray(self._ips, dtype=np.int64),
            addrs=np.asarray(self._addrs, dtype=np.int64),
            writes=np.asarray(self._writes, dtype=np.int64).astype(np.bool_),
            gaps=np.asarray(self._gaps, dtype=np.int32),
            deps=np.asarray(self._deps, dtype=np.int32),
        )
        meta = {
            "name": self.name,
            "suite": self.suite,
            "description": self.description,
        }
        Path(str(path) + ".json").write_text(json.dumps(meta))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        data = np.load(path if path.suffix == ".npz" else str(path) + ".npz")
        meta_path = Path(str(path) + ".json")
        meta = json.loads(meta_path.read_text()) if meta_path.exists() else {}
        out = cls(
            name=meta.get("name", path.stem),
            suite=meta.get("suite", ""),
            description=meta.get("description", ""),
        )
        for col, key in (
            (out._ips, "ips"), (out._addrs, "addrs"), (out._writes, "writes"),
            (out._gaps, "gaps"), (out._deps, "deps"),
        ):
            col.frombytes(
                np.ascontiguousarray(data[key], dtype=np.int64).tobytes()
            )
        addrs = out._addrs
        out._lines.frombytes(
            (np.frombuffer(addrs, dtype=np.int64) >> _LINE_SHIFT).tobytes()
        )
        return out


def interleave(traces: Sequence[Trace], name: str, chunk: int = 1) -> Trace:
    """Round-robin interleave several traces at ``chunk``-record granularity.

    Used to build patterns like CactuBSSN's hundreds of interleaved strided
    instructions, and heterogeneous phases within one synthetic benchmark.
    """
    out = Trace(name=name, suite=traces[0].suite if traces else "")
    iters = [iter(t.records) for t in traces]
    live = list(range(len(iters)))
    while live:
        next_live = []
        for idx in live:
            taken = 0
            for rec in iters[idx]:
                out.records.append(rec)
                taken += 1
                if taken >= chunk:
                    break
            if taken >= chunk:
                next_live.append(idx)
        live = next_live
    return out


def concatenate(traces: Sequence[Trace], name: str) -> Trace:
    """Phases executed back to back (program phase changes)."""
    out = Trace(name=name, suite=traces[0].suite if traces else "")
    for t in traces:
        out.records.extend(t.records)
    return out
