"""Tests for the workload generators (SPEC-like, GAP-like, CloudSuite-like,
synthetic primitives, multi-core mixes)."""

import pytest

from repro.workloads import (
    cloudsuite_suite,
    gap_suite,
    gap_trace,
    random_mixes,
    spec17_suite,
)
from repro.workloads import gap as gap_mod
from repro.workloads import spec_like
from repro.workloads.synthetic import (
    pattern_stream,
    pointer_chase,
    random_access,
    strided_stream,
    temporal_sequence,
)


class TestPrimitives:
    def test_strided_stream_stride(self):
        recs = strided_stream(0x1, 0, 3, 10, region_lines=1 << 20)
        lines = [r[1] >> 6 for r in recs]
        assert all(b - a == 3 for a, b in zip(lines, lines[1:]))

    def test_strided_stream_wraps_region(self):
        recs = strided_stream(0x1, 0, 2, 100, region_lines=10)
        lines = {r[1] >> 6 for r in recs}
        assert max(lines) < 10

    def test_pattern_stream_follows_pattern(self):
        recs = pattern_stream(0x1, 0, [1, 2], 6, region_lines=1 << 20)
        lines = [r[1] >> 6 for r in recs]
        deltas = [b - a for a, b in zip(lines, lines[1:])]
        assert deltas == [1, 2, 1, 2, 1]

    def test_pointer_chase_is_dependent(self):
        recs = pointer_chase(0x1, 0, [-1], 5, region_lines=100)
        assert all(r[4] == 1 for r in recs)

    def test_pointer_chase_deterministic(self):
        a = pointer_chase(0x1, 0, [-1, -2], 20, seed=3, region_lines=100)
        b = pointer_chase(0x1, 0, [-1, -2], 20, seed=3, region_lines=100)
        assert a == b

    def test_random_access_within_region(self):
        recs = random_access(0x1, 0, 16, 50, seed=1)
        assert all(0 <= (r[1] >> 6) < 16 for r in recs)

    def test_temporal_sequence_repeats(self):
        recs = temporal_sequence(0x1, [5, 9, 2], repetitions=2)
        lines = [r[1] >> 6 for r in recs]
        assert lines == [5, 9, 2, 5, 9, 2]


class TestSpecSuite:
    def test_suite_size(self):
        suite = spec17_suite(0.05)
        assert len(suite) == 14

    def test_names_unique_and_stable(self):
        names = [t.name for t in spec17_suite(0.05)]
        assert len(set(names)) == len(names)
        assert "mcf_s-1554B" in names
        assert "cactuBSSN_s-2421B" in names

    def test_deterministic(self):
        a = spec_like.mcf_s_1554(0.1)
        b = spec_like.mcf_s_1554(0.1)
        assert a.records == b.records

    def test_scale_controls_length(self):
        small = spec_like.lbm_2676(0.1)
        large = spec_like.lbm_2676(0.3)
        assert len(large) > len(small)

    def test_cactu_has_many_ips(self):
        t = spec_like.cactuBSSN(0.2)
        assert t.unique_ips >= 100

    def test_lbm_alternating_strides(self):
        """The headline +1/+2 IP pattern from the paper (§II-B)."""
        t = spec_like.lbm_2676(0.2)
        lines = [r[1] >> 6 for r in t.records if r[0] == 0x401CB0]
        deltas = {b - a for a, b in zip(lines, lines[1:])}
        assert deltas <= {1, 2} or (1 in deltas and 2 in deltas)

    def test_suites_marked(self):
        assert all(t.suite == "spec17" for t in spec17_suite(0.05))


class TestGapSuite:
    def test_csr_graphs_valid(self):
        for name, build in gap_mod.GRAPHS.items():
            offsets, edges = build(0.05)
            assert offsets[0] == 0
            assert offsets[-1] == len(edges)
            assert all(b >= a for a, b in zip(offsets, offsets[1:]))
            n = len(offsets) - 1
            assert all(0 <= v < n for v in edges[:200])

    def test_gap_trace_names(self):
        t = gap_trace("bfs", "kron", 0.05)
        assert t.name == "bfs-kron"
        assert t.suite == "gap"

    def test_record_budget_respected(self):
        t = gap_trace("pr", "urand", 0.05)
        assert len(t) <= 1100  # budget + one node's overshoot

    def test_kernels_have_dependent_gathers(self):
        t = gap_trace("bfs", "urand", 0.05)
        dep_records = [r for r in t.records if r[4] > 0]
        assert len(dep_records) > len(t) // 10

    def test_suite_composition(self):
        traces = gap_suite(0.05, kernels=["bfs", "cc"], graphs=["kron"])
        assert [t.name for t in traces] == ["bfs-kron", "cc-kron"]

    def test_deterministic(self):
        a = gap_trace("sssp", "road", 0.05)
        b = gap_trace("sssp", "road", 0.05)
        assert a.records == b.records

    def test_hub_cap_keeps_windows_representative(self):
        t = gap_trace("pr", "kron", 0.05)
        offsets_records = sum(
            1 for r in t.records if r[0] == gap_mod.IP_OFFSETS
        )
        assert offsets_records > 10  # not swallowed by one hub's adjacency


class TestCloudSuite:
    def test_suite(self):
        suite = cloudsuite_suite(0.1)
        assert {t.name for t in suite} == {
            "cassandra", "classification", "cloud9", "nutch",
        }

    def test_low_intensity(self):
        """CloudSuite is frontend-heavy: large gaps between accesses."""
        for t in cloudsuite_suite(0.1):
            avg_gap = sum(r[3] for r in t.records) / len(t)
            assert avg_gap >= 20


class TestMixes:
    def test_mix_shape(self):
        mixes = random_mixes(3, cores=4, scale=0.05, seed=1)
        assert len(mixes) == 3
        assert all(len(m) == 4 for m in mixes)

    def test_mixes_deterministic(self):
        a = random_mixes(2, scale=0.05, seed=7)
        b = random_mixes(2, scale=0.05, seed=7)
        assert [[t.name for t in m] for m in a] == [
            [t.name for t in m] for m in b
        ]

    def test_custom_pool(self):
        pool = spec17_suite(0.05)[:2]
        mixes = random_mixes(2, pool=pool, seed=0)
        names = {t.name for m in mixes for t in m}
        assert names <= {p.name for p in pool}
