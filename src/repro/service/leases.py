"""Time-bounded job leases: ownership that survives worker death.

A job is never "given" to a worker — the worker *leases* it.  The lease
carries an expiry; the daemon's lease monitor renews it whenever the
worker's heartbeat file (the same channel the campaign supervisor
polls, :mod:`repro.runner.resources`) shows fresh progress.  A lease
whose expiry passes without progress is *expired*: the job is requeued
**exactly once per expiry** with the next attempt number, and the full
attempt lineage (grant → renew high-water → expiry reason) is recorded
so no result can be silently lost or double-counted.

Leases also carry the daemon **epoch** (one per process start).  After
a SIGKILL every lease of the dead epoch is provably orphaned — the
threads holding them died with the process — so replay expires them
immediately instead of waiting out the clock.

A late result from an expired lease is *not* discarded blindly: the
first result recorded for a job wins (simulation is deterministic, so
whichever attempt lands first is the same bytes), and every later
completion is dropped with a ``late-result`` lineage entry — never a
duplicate record.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LeaseExpired

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One worker's bounded ownership of one job attempt."""

    lease_id: str
    job_key: str
    attempt: int
    epoch: int
    granted_at: float           # daemon monotonic clock
    expires_at: float
    heartbeat_path: Optional[str] = None
    last_seq: Optional[int] = None  # heartbeat sequence high-water mark
    renewals: int = 0
    agent: Optional[str] = None  # remote agent holding it (None = local)

    def describe(self) -> Dict[str, object]:
        return {
            "lease_id": self.lease_id,
            "attempt": self.attempt,
            "epoch": self.epoch,
            "renewals": self.renewals,
            "agent": self.agent,
        }


@dataclass
class _JobLineage:
    """Attempt history for one job key (grants, expiries, outcomes)."""

    events: List[Dict[str, object]] = field(default_factory=list)
    expiries: int = 0
    completed: bool = False


class LeaseTable:
    """All live leases plus per-job attempt lineage.

    Purely in-memory and clock-injected; durability comes from the WAL
    records the daemon writes around each transition.  ``max_requeues``
    bounds how many times expiry may resurrect one job — beyond it the
    job fails with a typed :class:`~repro.errors.LeaseExpired` instead
    of looping forever on a host that kills every worker.
    """

    def __init__(self, duration: float, epoch: int = 1,
                 max_requeues: int = 1) -> None:
        if duration <= 0:
            raise ValueError(f"lease duration must be positive: {duration}")
        self.duration = duration
        self.epoch = epoch
        self.max_requeues = max_requeues
        self._live: Dict[str, Lease] = {}        # lease_id -> Lease
        self._by_job: Dict[str, str] = {}        # job_key -> lease_id
        self._lineage: Dict[str, _JobLineage] = {}
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------

    def grant(self, job_key: str, attempt: int, now: float,
              heartbeat_path: Optional[str] = None,
              agent: Optional[str] = None) -> Lease:
        """Lease ``job_key`` to a worker; one live lease per job."""
        if job_key in self._by_job:
            raise LeaseExpired(
                f"job {job_key!r} already holds lease "
                f"{self._by_job[job_key]}; grant refused", status=409,
            )
        lease = Lease(
            lease_id=f"L{self.epoch}-{next(self._ids)}",
            job_key=job_key, attempt=attempt, epoch=self.epoch,
            granted_at=now, expires_at=now + self.duration,
            heartbeat_path=heartbeat_path, agent=agent,
        )
        self._live[lease.lease_id] = lease
        self._by_job[job_key] = lease.lease_id
        self._event(job_key, "grant", lease_id=lease.lease_id,
                    attempt=attempt, epoch=self.epoch, agent=agent)
        return lease

    def renew(self, lease_id: str, now: float,
              seq: Optional[int] = None) -> bool:
        """Observed progress: push the expiry out one full duration.

        Returns ``False`` for a dead lease — the remote renewal path
        uses that to tell the agent its lease is lost (the job was
        requeued; any result it still produces will be a late one)."""
        lease = self._live.get(lease_id)
        if lease is None:
            return False  # already expired/released; the worker is on its own
        lease.expires_at = now + self.duration
        lease.renewals += 1
        if seq is not None:
            lease.last_seq = seq
        self._event(lease.job_key, "renew", lease_id=lease_id,
                    renewals=lease.renewals)
        return True

    def release(self, lease_id: str, outcome: str) -> Optional[Lease]:
        """The worker finished (ok/failed): drop the lease.

        Returns the lease, or ``None`` when it had already expired — the
        caller uses that to route a late result through the
        first-wins/drop-late path instead of recording it twice.
        """
        lease = self._live.pop(lease_id, None)
        if lease is None:
            return None
        self._by_job.pop(lease.job_key, None)
        self._event(lease.job_key, outcome, lease_id=lease_id)
        if outcome == "ok":
            self._lineage[lease.job_key].completed = True
        return lease

    def expire(self, now: float) -> List[Lease]:
        """Collect and drop every lease past its expiry (or from a dead
        epoch); each expiry is recorded in the job's lineage exactly
        once, which is what makes the requeue exactly-once."""
        dead = [
            lease for lease in self._live.values()
            if lease.expires_at <= now or lease.epoch != self.epoch
        ]
        for lease in dead:
            self._live.pop(lease.lease_id, None)
            self._by_job.pop(lease.job_key, None)
            line = self._lineage_for(lease.job_key)
            line.expiries += 1
            reason = ("daemon epoch lost" if lease.epoch != self.epoch
                      else "no heartbeat before expiry")
            self._event(lease.job_key, "expired", lease_id=lease.lease_id,
                        attempt=lease.attempt, reason=reason)
        return dead

    def may_requeue(self, job_key: str) -> bool:
        """Whether this expiry may resurrect the job one more time."""
        line = self._lineage_for(job_key)
        return not line.completed and line.expiries <= self.max_requeues

    def record_late_result(self, job_key: str, lease_id: str) -> None:
        self._event(job_key, "late-result", lease_id=lease_id)

    def record_refusal(self, job_key: str, lease_id: str,
                       agent: Optional[str] = None) -> bool:
        """An agent refused the job (digest mismatch) without running it.

        A refusal burns one unit of the same requeue budget an expiry
        does — a persistently poisoned trace store must fail typed, not
        ping-pong between agents forever.  Returns whether the job may
        be requeued.  The ``refused`` lineage event itself comes from
        the caller's :meth:`release`; this only charges the budget.
        """
        del lease_id, agent  # identity lives in the release event
        line = self._lineage_for(job_key)
        line.expiries += 1
        return self.may_requeue(job_key)

    def absorb_history(self, records) -> None:
        """Rebuild per-job lineage from replayed WAL records.

        Called once during recovery with the full record stream, so a
        restarted daemon reports the complete grant/expiry/result
        history of every job — including leases held by remote agents
        in earlier epochs — instead of starting each lineage blank.
        """
        for rec in records:
            kind = rec.get("type")
            key = rec.get("content_key")
            if not key:
                continue
            if kind == "lease":
                self._event(key, "grant", lease_id=rec.get("lease_id"),
                            attempt=rec.get("attempt"),
                            epoch=rec.get("epoch"),
                            agent=rec.get("agent"))
            elif kind == "lease-expired":
                line = self._lineage_for(key)
                line.expiries += 1
                self._event(key, "expired", lease_id=rec.get("lease_id"),
                            reason=rec.get("reason"),
                            agent=rec.get("agent"))
            elif kind == "refused":
                line = self._lineage_for(key)
                line.expiries += 1
                self._event(key, "refused", lease_id=rec.get("lease_id"),
                            agent=rec.get("agent"))
            elif kind == "result":
                outcome = ("ok" if rec.get("status") == "ok" else "failed")
                self._event(key, outcome, lease_id=rec.get("lease_id"),
                            agent=rec.get("agent"))
                if outcome == "ok":
                    self._lineage_for(key).completed = True

    # ------------------------------------------------------------------

    def leases_of_agent(self, agent: str) -> List[Lease]:
        """Every live lease currently held by one remote agent."""
        return [lease for lease in self._live.values()
                if lease.agent == agent]

    def lease_for(self, job_key: str) -> Optional[Lease]:
        lease_id = self._by_job.get(job_key)
        return self._live.get(lease_id) if lease_id else None

    def live(self) -> List[Lease]:
        return list(self._live.values())

    def lineage(self, job_key: str) -> List[Dict[str, object]]:
        return list(self._lineage_for(job_key).events)

    def expiry_error(self, job_key: str) -> LeaseExpired:
        line = self._lineage_for(job_key)
        return LeaseExpired(
            f"job {job_key!r} lost {line.expiries} leases (requeue budget "
            f"{self.max_requeues}); giving up", field="lease",
        )

    # ------------------------------------------------------------------

    def _lineage_for(self, job_key: str) -> _JobLineage:
        return self._lineage.setdefault(job_key, _JobLineage())

    def _event(self, job_key: str, kind: str, **details) -> None:
        event: Dict[str, object] = {"event": kind}
        event.update(details)
        self._lineage_for(job_key).events.append(event)
