"""Berti — the paper's contribution: local-delta L1D prefetching."""

from repro.core.berti import BertiPrefetcher
from repro.core.berti_page import BertiPagePrefetcher
from repro.core.config import BertiConfig
from repro.core.delta_table import (
    L1D_PREF,
    L2_PREF,
    L2_PREF_REPL,
    NO_PREF,
    DeltaTable,
)
from repro.core.history_table import HistoryTable

__all__ = [
    "BertiPrefetcher",
    "BertiPagePrefetcher",
    "BertiConfig",
    "DeltaTable",
    "HistoryTable",
    "NO_PREF",
    "L1D_PREF",
    "L2_PREF",
    "L2_PREF_REPL",
]
