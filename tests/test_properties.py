"""System-level property tests: invariants under randomised request
storms (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.prefetchers.registry import make_prefetcher
from repro.simulator.config import default_config
from repro.simulator.engine import build_hierarchy, simulate
from repro.workloads.trace import Trace


def _storm(seed_accesses, l1d="berti", l2="spp_ppf"):
    h = build_hierarchy(
        default_config(),
        make_prefetcher(l1d),
        make_prefetcher(l2),
    )
    now = 0
    for ip, line, is_write, gap in seed_accesses:
        now += gap
        h.demand_access(0x400 + ip, line << 6, now, is_write)
    return h


accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=12),       # ip selector
        st.integers(min_value=0, max_value=4000),     # line
        st.booleans(),                                 # write
        st.integers(min_value=1, max_value=50),       # time gap
    ),
    min_size=1,
    max_size=120,
)


class TestHierarchyInvariants:
    @settings(max_examples=25, deadline=None)
    @given(accesses)
    def test_demand_accounting_consistent(self, seq):
        h = _storm(seq)
        s = h.l1d.stats
        assert s.demand_hits + s.demand_misses == s.demand_accesses
        assert s.demand_accesses == len(seq)

    @settings(max_examples=25, deadline=None)
    @given(accesses)
    def test_prefetch_outcomes_bounded_by_fills(self, seq):
        h = _storm(seq)
        for origin in ("l1d", "l2"):
            st_ = h.pf_stats[origin]
            assert st_.useful + st_.useless <= st_.fills
            assert st_.late <= st_.useful
            assert st_.issued == st_.fills

    @settings(max_examples=25, deadline=None)
    @given(accesses)
    def test_cache_capacity_never_exceeded(self, seq):
        h = _storm(seq)
        for cache in (h.l1d, h.l2, h.llc):
            assert cache.occupancy() <= cache.num_lines

    @settings(max_examples=25, deadline=None)
    @given(accesses)
    def test_latency_always_positive(self, seq):
        h = build_hierarchy(default_config(), make_prefetcher("berti"))
        now = 0
        for ip, line, w, gap in seq:
            now += gap
            lat = h.demand_access(0x400 + ip, line << 6, now, w)
            assert lat >= h.l1d.latency

    @settings(max_examples=15, deadline=None)
    @given(accesses, st.sampled_from(["ip_stride", "mlop", "ipcp", "berti",
                                      "streamer", "next_line"]))
    def test_every_prefetcher_survives_storm(self, seq, pf_name):
        h = _storm(seq, l1d=pf_name, l2="none")
        assert h.l1d.stats.demand_accesses == len(seq)

    @settings(max_examples=15, deadline=None)
    @given(accesses, st.sampled_from(["spp_ppf", "bingo", "misb", "vldp",
                                      "pythia_lite"]))
    def test_every_l2_prefetcher_survives_storm(self, seq, pf_name):
        h = _storm(seq, l1d="ip_stride", l2=pf_name)
        assert h.l1d.stats.demand_accesses == len(seq)


class TestEngineInvariants:
    @settings(max_examples=10, deadline=None)
    @given(accesses)
    def test_simulate_metrics_consistent(self, seq):
        t = Trace("prop")
        for ip, line, w, gap in seq:
            t.append(0x400 + ip, line << 6, is_write=w, gap=gap % 10)
        r = simulate(t, l1d_prefetcher=make_prefetcher("berti"),
                     warmup_fraction=0.0)
        assert r.instructions == t.instruction_count
        assert r.cycles > 0
        assert 0 <= r.pf_l1d.accuracy <= 1.0
        assert r.l1d_demand_misses <= r.l1d_demand_accesses

    @settings(max_examples=10, deadline=None)
    @given(accesses)
    def test_prefetching_never_changes_instruction_count(self, seq):
        t = Trace("prop")
        for ip, line, w, gap in seq:
            t.append(0x400 + ip, line << 6, is_write=w, gap=gap % 10)
        a = simulate(t, warmup_fraction=0.0)
        b = simulate(t, l1d_prefetcher=make_prefetcher("ipcp"),
                     warmup_fraction=0.0)
        assert a.instructions == b.instructions
