"""Trace store: mmap-backed columnar trace files (repro.memory.tracestore).

Covers the format contract end to end: round-trip equivalence against
the legacy catalog loader (including a bit-identical SimResult through
the worker), typed rejection of truncated/corrupt/byte-swapped files,
the read-only mapping contract, pickling-by-path, and journal-backed
resume where the resumed campaign consumes mmapped stores.
"""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.errors import TraceError
from repro.memory.tracestore import (
    ENDIAN_SENTINEL,
    FORMAT_VERSION,
    MAGIC,
    MappedTrace,
    TraceStoreError,
    attach_trace_stores,
    ensure_store,
    load_trace_store,
    store_info,
    store_path,
    write_trace_store,
)
from repro.runner import ExperimentRunner, JobSpec, RunnerConfig
from repro.runner.worker import run_job
from repro.workloads.catalog import resolve_trace

TRACE = "bfs-kron"
SCALE = 0.2


@pytest.fixture()
def store(tmp_path):
    """One converted store for the canonical (trace, scale) pair."""
    return ensure_store(tmp_path, TRACE, SCALE)


# ----------------------------------------------------------------------
# Round trip vs the legacy loader
# ----------------------------------------------------------------------


class TestRoundTrip:
    def test_columns_match_legacy_loader(self, store):
        mapped = load_trace_store(store)
        legacy = resolve_trace(TRACE, SCALE)
        assert len(mapped) == len(legacy)
        assert mapped.name == legacy.name
        assert mapped.suite == legacy.suite
        for got, want in zip(mapped.columns(), legacy.columns()):
            assert list(got) == list(want)
        assert list(mapped.line_addresses()) == list(legacy.line_addresses())
        mapped.close()

    def test_records_view_matches(self, store):
        mapped = load_trace_store(store)
        legacy = resolve_trace(TRACE, SCALE)
        assert list(mapped.records)[:50] == list(legacy.records)[:50]
        mapped.close()

    def test_simresult_bit_identical_through_worker(self, store):
        via_store = run_job(JobSpec(trace=TRACE, scale=SCALE, l1d="berti",
                                    trace_path=str(store)))
        via_catalog = run_job(JobSpec(trace=TRACE, scale=SCALE, l1d="berti"))
        assert via_store.to_dict() == via_catalog.to_dict()

    def test_info_reports_header(self, store):
        info = store_info(store)
        assert info["records"] == len(resolve_trace(TRACE, SCALE))
        assert info["name"] == TRACE
        assert info["version"] == FORMAT_VERSION

    def test_ensure_store_is_idempotent(self, tmp_path):
        first = ensure_store(tmp_path, TRACE, SCALE)
        stamp = first.stat().st_mtime_ns
        again = ensure_store(tmp_path, TRACE, SCALE)
        assert again == first
        assert again.stat().st_mtime_ns == stamp  # no re-conversion

    def test_store_path_is_scale_specific(self, tmp_path):
        assert (store_path(tmp_path, TRACE, 0.2)
                != store_path(tmp_path, TRACE, 0.4))


# ----------------------------------------------------------------------
# Typed rejection of malformed stores
# ----------------------------------------------------------------------


def _mutate(store, tmp_path, offset, payload):
    data = bytearray(store.read_bytes())
    data[offset:offset + len(payload)] = payload
    bad = tmp_path / "bad.trc"
    bad.write_bytes(bytes(data))
    return bad


class TestRejection:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceStoreError, match="not found"):
            load_trace_store(tmp_path / "nope.trc")

    def test_truncated_header(self, tmp_path):
        bad = tmp_path / "short.trc"
        bad.write_bytes(MAGIC + b"\x01")
        with pytest.raises(TraceStoreError, match="truncated"):
            load_trace_store(bad)

    def test_truncated_columns(self, store, tmp_path):
        data = store.read_bytes()
        bad = tmp_path / "cut.trc"
        bad.write_bytes(data[: len(data) - 64])
        with pytest.raises(TraceStoreError, match="truncated"):
            load_trace_store(bad)

    def test_bad_magic(self, store, tmp_path):
        bad = _mutate(store, tmp_path, 0, b"NOTATRCE")
        with pytest.raises(TraceStoreError, match="magic"):
            load_trace_store(bad)

    def test_unsupported_version(self, store, tmp_path):
        bad = _mutate(store, tmp_path, 8, struct.pack("<I", 99))
        with pytest.raises(TraceStoreError, match="version 99"):
            load_trace_store(bad)

    def test_endianness_pin(self, store, tmp_path):
        # A store written on an opposite-endian host would carry the
        # byte-swapped sentinel; zero-copy casting it would misread every
        # column, so the loader must refuse outright.
        swapped = struct.pack(">Q", ENDIAN_SENTINEL)
        bad = _mutate(store, tmp_path, 16, swapped)
        with pytest.raises(TraceStoreError, match="[Ee]ndian"):
            load_trace_store(bad)

    def test_corrupt_metadata_json(self, store, tmp_path):
        bad = _mutate(store, tmp_path, struct.calcsize("<8sIIQQ"), b"{notjso")
        with pytest.raises(TraceStoreError, match="metadata"):
            load_trace_store(bad)

    def test_error_is_a_trace_error(self, tmp_path):
        # The runner's failure taxonomy classifies TraceError as a
        # permanent "trace" failure — a corrupt store must not be retried.
        with pytest.raises(TraceError):
            load_trace_store(tmp_path / "nope.trc")


# ----------------------------------------------------------------------
# Read-only mapping contract
# ----------------------------------------------------------------------


class TestMappingContract:
    def test_mapped_trace_is_read_only(self, store):
        mapped = load_trace_store(store)
        with pytest.raises(TraceStoreError, match="read-only"):
            mapped.append(1, 2)
        with pytest.raises(TraceStoreError, match="read-only"):
            mapped.extend([(1, 2, False, 0, 0)])
        mapped.close()

    def test_validate_is_structural_only(self, store):
        mapped = load_trace_store(store)
        mapped.validate()  # must not scan or raise
        mapped.close()

    def test_pickle_reopens_by_path(self, store):
        mapped = load_trace_store(store)
        blob = pickle.dumps(mapped)
        # The pickle must carry the path, not the columns: far smaller
        # than the store itself.
        assert len(blob) < 512
        clone = pickle.loads(blob)
        assert isinstance(clone, MappedTrace)
        assert list(clone.columns()[1])[:20] == list(mapped.columns()[1])[:20]
        clone.close()
        mapped.close()

    def test_attach_trace_stores_rewrites_jobs(self, tmp_path):
        jobs = [JobSpec(trace=TRACE, scale=SCALE, l1d=pf)
                for pf in ("none", "berti")]
        rewritten = attach_trace_stores(jobs, tmp_path)
        expected = str(store_path(tmp_path, TRACE, SCALE))
        assert [j.trace_path for j in rewritten] == [expected, expected]
        # trace_path is a transport detail: the journal key is unchanged.
        assert [j.key for j in rewritten] == [j.key for j in jobs]


# ----------------------------------------------------------------------
# Journal resume over mmapped stores
# ----------------------------------------------------------------------


class TestJournalResume:
    def test_resume_replays_store_backed_jobs(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        jobs = attach_trace_stores(
            [JobSpec(trace=TRACE, scale=SCALE, l1d=pf)
             for pf in ("none", "berti")],
            tmp_path / "stores",
        )
        first = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=str(journal))
        ).run(jobs)
        assert not first.failures

        resumed = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=str(journal), resume=True)
        ).run(jobs)
        assert not resumed.failures
        assert all(o.from_journal for o in resumed.completed)
        for job in jobs:
            assert (resumed.result(job.key).to_dict()
                    == first.result(job.key).to_dict())

    def test_journal_written_without_store_replays_with_store(self, tmp_path):
        # Campaigns can adopt --trace-store mid-way: keys match either way.
        journal = tmp_path / "campaign.jsonl"
        plain = [JobSpec(trace=TRACE, scale=SCALE, l1d="berti")]
        first = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=str(journal))
        ).run(plain)
        assert not first.failures

        with_store = attach_trace_stores(plain, tmp_path / "stores")
        resumed = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=str(journal), resume=True)
        ).run(with_store)
        assert all(o.from_journal for o in resumed.completed)


# ----------------------------------------------------------------------
# Zero-record refusal + content digests (PR 6)
# ----------------------------------------------------------------------


class TestZeroRecordRefusal:
    """A zero-record store carries no work and is indistinguishable
    from a conversion that died before writing records: refused at
    write *and* open time, always with the typed error."""

    def test_write_refuses_an_empty_trace(self, tmp_path):
        from repro.workloads.synthetic import Trace

        empty = Trace(name="empty", suite="test")
        with pytest.raises(TraceStoreError, match="0 records"):
            write_trace_store(empty, tmp_path / "empty.trc")
        assert not (tmp_path / "empty.trc").exists()

    def test_open_refuses_a_zero_length_file(self, tmp_path):
        hollow = tmp_path / "hollow.trc"
        hollow.touch()
        with pytest.raises(TraceStoreError, match="zero-length"):
            load_trace_store(hollow)

    def test_open_refuses_a_zero_record_header(self, store, tmp_path):
        # Forge a store whose header claims 0 records (written before
        # the write-side guard existed, or truncated by a bad copy).
        header_fmt = "<8sIIQQ"
        raw = store.read_bytes()
        magic, version, meta_len, sentinel, _n = struct.unpack_from(
            header_fmt, raw)
        bad = _mutate(store, tmp_path, 0, struct.pack(
            header_fmt, magic, version, meta_len, sentinel, 0))
        with pytest.raises(TraceStoreError, match="0 records"):
            load_trace_store(bad)


class TestFileDigest:
    def test_digest_matches_hashlib(self, tmp_path):
        import hashlib

        from repro.memory.tracestore import file_digest

        blob = tmp_path / "blob.bin"
        blob.write_bytes(b"x" * 4096 + b"tail")
        expected = hashlib.sha256(blob.read_bytes()).hexdigest()
        assert file_digest(blob) == f"sha256:{expected}"
        # Chunked streaming reads must not change the digest.
        assert file_digest(blob, chunk=7) == f"sha256:{expected}"

    def test_missing_file_raises_typed_error(self, tmp_path):
        from repro.memory.tracestore import file_digest

        with pytest.raises(TraceStoreError, match="cannot digest"):
            file_digest(tmp_path / "nope.trc")

    def test_store_info_reports_the_digest(self, store):
        from repro.memory.tracestore import file_digest

        info = store_info(store)
        assert info["digest"] == file_digest(store)
        assert info["digest"].startswith("sha256:")
