"""Figure 13: demand MPKI at L2/LLC with multi-level prefetching.

Paper reference: adding Bingo/SPP-PPF at L2 under MLOP reduces L2/LLC
MPKI consistently; under Berti the L2 prefetcher adds little because
Berti's line preloading already covered those misses.
"""

from common import (
    MULTILEVEL_SET,
    once,
    run_matrix,
    run_multilevel,
    save_report,
    spec_traces,
)

from repro.analysis.metrics import average_mpki
from repro.analysis.report import format_table


def test_fig13_multilevel_mpki(benchmark):
    def compute():
        traces = spec_traces()
        single = run_matrix(traces, ["mlop", "berti"])
        multi = run_multilevel(traces, MULTILEVEL_SET)
        rows = []
        for cfg in ("mlop", "berti"):
            rs = [single[t.name][cfg] for t in traces]
            rows.append([cfg, average_mpki(rs, "l2"), average_mpki(rs, "llc")])
        for combo in ("mlop+bingo", "mlop+spp_ppf", "berti+bingo",
                      "berti+spp_ppf"):
            rs = [multi[t.name][combo] for t in traces]
            rows.append([combo, average_mpki(rs, "l2"),
                         average_mpki(rs, "llc")])
        return rows

    rows = once(benchmark, compute)
    save_report(
        "fig13_multilevel_mpki",
        format_table(
            ["configuration", "L2 MPKI", "LLC MPKI"], rows,
            title=(
                "Figure 13 — L2/LLC demand MPKI with multi-level prefetching"
                " (SPEC17)\n(paper: L2 prefetchers help MLOP more than Berti)"
            ),
        ),
    )

    by = {r[0]: (r[1], r[2]) for r in rows}
    # An L2 prefetcher reduces MLOP's L2 MPKI (the paper's 13.8 -> 11.7).
    assert min(by["mlop+bingo"][0], by["mlop+spp_ppf"][0]) <= by["mlop"][0]
    # The relative gain it brings Berti is smaller than the gain for MLOP.
    mlop_gain = by["mlop"][0] - min(by["mlop+bingo"][0], by["mlop+spp_ppf"][0])
    berti_gain = by["berti"][0] - min(by["berti+bingo"][0],
                                      by["berti+spp_ppf"][0])
    assert berti_gain <= mlop_gain + 0.5
