"""Unit tests for the extended prefetcher set: VLDP, streamer, per-page
Berti, and Pythia-lite."""

import pytest

from repro.core.berti import BertiPrefetcher
from repro.core.berti_page import BertiPagePrefetcher
from repro.prefetchers.base import FILL_L1, AccessInfo, FillInfo
from repro.prefetchers.pythia_lite import ACTIONS, PythiaLitePrefetcher
from repro.prefetchers.streamer import StreamPrefetcher
from repro.prefetchers.vldp import VLDPPrefetcher


def acc(line, ip=0x400, hit=False, now=0):
    return AccessInfo(ip=ip, line=line, hit=hit, prefetch_hit=False, now=now)


class TestVLDP:
    def _train(self, pf, pattern, pages=range(10, 30), steps=24):
        for page in pages:
            offset = 0
            for i in range(steps):
                pf.on_access(acc(page * 64 + offset))
                offset += pattern[i % len(pattern)]
                if offset >= 64:
                    break

    def test_single_delta_prediction(self):
        pf = VLDPPrefetcher()
        self._train(pf, [2])
        pf.on_access(acc(100 * 64))
        reqs = pf.on_access(acc(100 * 64 + 2))
        assert any(r.line == 100 * 64 + 4 for r in reqs)

    def test_multi_delta_history_disambiguates(self):
        """The +1,+2 alternation: a length-2 history predicts which delta
        comes next, which a single-delta table aliases."""
        pf = VLDPPrefetcher()
        self._train(pf, [1, 2], steps=40)
        pf.on_access(acc(200 * 64 + 0))
        pf.on_access(acc(200 * 64 + 1))   # history [.., +1]
        reqs = pf.on_access(acc(200 * 64 + 3))  # history [+1, +2]
        assert any(r.line == 200 * 64 + 4 for r in reqs)

    def test_stays_in_page(self):
        pf = VLDPPrefetcher()
        self._train(pf, [4])
        pf.on_access(acc(300 * 64 + 56))
        reqs = pf.on_access(acc(300 * 64 + 60))
        assert all(300 * 64 <= r.line < 301 * 64 for r in reqs)

    def test_tables_bounded(self):
        pf = VLDPPrefetcher(dhb_entries=4, dpt_entries=8)
        import random
        rng = random.Random(0)
        for i in range(500):
            pf.on_access(acc(rng.randrange(1 << 18)))
        assert len(pf._dhb) <= 4
        assert all(len(t) <= 8 for t in pf._dpt)

    def test_reset(self):
        pf = VLDPPrefetcher()
        self._train(pf, [2])
        pf.reset()
        assert not pf._dhb and all(not t for t in pf._dpt)


class TestStreamer:
    def test_confirmed_stream_prefetches_ahead(self):
        pf = StreamPrefetcher()
        reqs = []
        for i in range(5):
            reqs = pf.on_access(acc(100 + i))
        assert reqs
        assert all(r.line > 104 for r in reqs)

    def test_descending_stream(self):
        pf = StreamPrefetcher()
        reqs = []
        for i in range(5):
            reqs = pf.on_access(acc(1000 - i))
        assert reqs
        assert all(r.line < 996 for r in reqs)

    def test_depth_ramps(self):
        pf = StreamPrefetcher()
        lens = []
        for i in range(10):
            lens.append(len(pf.on_access(acc(100 + i))))
        assert lens[-1] > lens[3]
        assert lens[-1] <= StreamPrefetcher.MAX_DEPTH

    def test_direction_flip_resets(self):
        pf = StreamPrefetcher()
        for i in range(5):
            pf.on_access(acc(100 + i))
        reqs = pf.on_access(acc(100))  # reversal
        assert reqs == []

    def test_stream_capacity(self):
        pf = StreamPrefetcher(streams=2)
        for base in (0, 10_000, 20_000):
            pf.on_access(acc(base))
        assert len(pf._streams) == 2

    def test_random_hits_do_not_spawn_streams(self):
        pf = StreamPrefetcher()
        pf.on_access(acc(5_000, hit=True))
        assert len(pf._streams) == 0


class TestBertiPage:
    def _train(self, pf, lines, period=400, latency=100):
        for i, line in enumerate(lines):
            now = i * period
            # Alternate IPs: per-page context must still see one stream.
            ip = 0x400 + (i % 3)
            pf.on_access(AccessInfo(ip=ip, line=line, hit=False,
                                    prefetch_hit=False, now=now))
            pf.on_fill(FillInfo(line=line, now=now + latency,
                                latency=latency, was_prefetch=False, ip=ip))

    def test_key_is_page(self):
        pf = BertiPagePrefetcher()
        assert pf._key(0x1234, 130) == 130 // 64
        assert pf._key(0x9999, 130) == pf._key(0x1, 130)

    def test_learns_within_page_across_ips(self):
        """The page context aggregates deltas across IPs — its strength
        (and, per the MICRO paper, its weakness vs per-IP context)."""
        pf = BertiPagePrefetcher()
        base = 100 * 64  # one page... use consecutive lines within pages
        self._train(pf, [base + i for i in range(30)])
        # All lines were in pages 100..; check some page learned delta 1.
        snap = pf.deltas.entry_snapshot(100)
        assert snap, "per-page entry should exist"

    def test_per_ip_beats_per_page_on_interleaved_ips(self):
        """Two IPs stride through the same page range with different
        strides: per-IP Berti separates them, per-page Berti sees an
        interleaved mess (the paper's core argument for the IP key)."""
        def run(pf):
            line_a, line_b = 0, 7
            for i in range(240):
                now = i * 300
                ip, line = ((0x400, line_a) if i % 2 == 0
                            else (0x500, line_b))
                pf.on_access(AccessInfo(ip=ip, line=line, hit=False,
                                        prefetch_hit=False, now=now))
                pf.on_fill(FillInfo(line=line, now=now + 100, latency=100,
                                    was_prefetch=False, ip=ip))
                if i % 2 == 0:
                    line_a += 2
                else:
                    line_b += 5
            reqs = pf.on_access(AccessInfo(
                ip=0x400, line=line_a, hit=True, prefetch_hit=False,
                now=100_000,
            ))
            return {r.line - line_a for r in reqs}

        per_ip = run(BertiPrefetcher())
        per_page = run(BertiPagePrefetcher())
        # The per-IP prefetcher fires multiples of its own stride.
        assert per_ip and all(d % 2 == 0 for d in per_ip)
        # The per-page variant cannot be that clean on interleaved IPs.
        assert not per_page or any(d % 2 != 0 for d in per_page) or \
            len(per_page) < len(per_ip)


class TestPythiaLite:
    def test_learns_to_prefetch_stride(self):
        # Exploration is required to discover the rewarding action.
        pf = PythiaLitePrefetcher(epsilon=0.2, seed=1)
        useful = 0
        line = 0
        # Train: issue, then reward any prefetch matching the next access.
        for i in range(4000):
            reqs = pf.on_access(acc(line, ip=0x7))
            nxt = line + 2
            for r in reqs:
                if r.line == nxt:
                    pf.on_prefetch_hit(acc(nxt), pf_latency=10)
                    useful += 1
                else:
                    pf.on_evict(r.line, was_useful=False)
            line = nxt
            if line % 64 > 60:
                line = (line // 64 + 1) * 64
        # By the end, the policy picks the +2 action often.
        assert useful > 200

    def test_no_prefetch_action_exists(self):
        assert 0 in ACTIONS

    def test_stays_in_page(self):
        pf = PythiaLitePrefetcher(epsilon=1.0, seed=2)  # random policy
        for i in range(200):
            for r in pf.on_access(acc(i, ip=0x7)):
                assert r.line // 64 == i // 64

    def test_negative_reward_discourages(self):
        pf = PythiaLitePrefetcher(epsilon=0.0, seed=3)
        state = pf._state(0x7, 100)
        pf._q[state][1] = 1.0  # make action 1 attractive
        pf._inflight[100 + ACTIONS[1]] = (state, 1)
        pf.on_evict(100 + ACTIONS[1], was_useful=False)
        assert pf._q[state][1] < 1.0

    def test_reset(self):
        pf = PythiaLitePrefetcher()
        pf.on_access(acc(1))
        pf.reset()
        assert pf.issued == 0 and not pf._inflight
