"""Variable Length Delta Prefetching (VLDP) — Shevgoor et al., MICRO 2015.

VLDP (paper §II-A) predicts the next delta within an OS page from
*histories of deltas* of increasing length: a table indexed by the last
delta, one by the last two deltas, one by the last three.  Longer
histories take precedence when they hit, which lets VLDP cover repeating
multi-delta patterns that a single-delta predictor aliases.

Structures:

* **DHB** (delta history buffer) — per-page last offset plus the last
  three deltas;
* **DPT[k]** (delta prediction tables) — map a tuple of the last *k*
  deltas to the most likely next delta with a 2-bit confidence;
* **OPT** (offset prediction table) — first-access prediction per page
  offset (first access has no delta history yet).

The paper positions VLDP below SPP-PPF in coverage; it serves here as an
additional L2 baseline and as a reference point for the delta-history
design space.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.prefetchers.base import (
    FILL_L2,
    AccessInfo,
    Prefetcher,
    PrefetchRequest,
)

_LINES_PER_PAGE = 64


class _PageState:
    __slots__ = ("last_offset", "deltas")

    def __init__(self, offset: int) -> None:
        self.last_offset = offset
        self.deltas: List[int] = []


class VLDPPrefetcher(Prefetcher):
    """Multi-length delta-history prediction at the L2."""

    name = "vldp"
    level = "l2"

    CONF_MAX = 3
    CONF_THRESHOLD = 1

    def __init__(
        self,
        dhb_entries: int = 64,
        dpt_entries: int = 256,
        max_history: int = 3,
        degree: int = 4,
    ) -> None:
        self.dhb_entries = dhb_entries
        self.dpt_entries = dpt_entries
        self.max_history = max_history
        self.degree = degree
        # page -> state
        self._dhb: Dict[int, _PageState] = {}
        # One prediction table per history length: key tuple -> [delta, conf]
        self._dpt: List[Dict[Tuple[int, ...], List[int]]] = [
            {} for _ in range(max_history)
        ]
        # First-access offset predictor: offset -> [delta, conf]
        self._opt: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------

    def _train(self, history: List[int], delta: int, first_offset: int) -> None:
        for k in range(1, min(len(history), self.max_history) + 1):
            key = tuple(history[-k:])
            table = self._dpt[k - 1]
            slot = table.get(key)
            if slot is None:
                if len(table) >= self.dpt_entries:
                    table.pop(next(iter(table)))
                table[key] = [delta, 1]
            elif slot[0] == delta:
                slot[1] = min(self.CONF_MAX, slot[1] + 1)
            else:
                slot[1] -= 1
                if slot[1] <= 0:
                    slot[0] = delta
                    slot[1] = 1
        if not history:
            slot = self._opt.get(first_offset)
            if slot is None:
                self._opt[first_offset] = [delta, 1]
            elif slot[0] == delta:
                slot[1] = min(self.CONF_MAX, slot[1] + 1)
            else:
                slot[1] -= 1
                if slot[1] <= 0:
                    self._opt[first_offset] = [delta, 1]

    def _predict_next(self, history: List[int], offset: int) -> int:
        """Longest-match lookup across the DPTs; 0 means no prediction."""
        for k in range(min(len(history), self.max_history), 0, -1):
            slot = self._dpt[k - 1].get(tuple(history[-k:]))
            if slot is not None and slot[1] >= self.CONF_THRESHOLD:
                return slot[0]
        slot = self._opt.get(offset)
        if slot is not None and slot[1] >= self.CONF_THRESHOLD:
            return slot[0]
        return 0

    # ------------------------------------------------------------------

    def on_access(self, access: AccessInfo) -> List[PrefetchRequest]:
        line = access.line
        page = line // _LINES_PER_PAGE
        offset = line % _LINES_PER_PAGE

        state = self._dhb.get(page)
        if state is None:
            if len(self._dhb) >= self.dhb_entries:
                self._dhb.pop(next(iter(self._dhb)))
            state = _PageState(offset)
            self._dhb[page] = state
        else:
            delta = offset - state.last_offset
            if delta != 0:
                self._train(state.deltas, delta, state.last_offset)
                state.deltas.append(delta)
                if len(state.deltas) > self.max_history:
                    state.deltas.pop(0)
                state.last_offset = offset

        # Chained prediction: walk predicted deltas up to the degree.
        requests: List[PrefetchRequest] = []
        history = list(state.deltas)
        cur = offset
        for __ in range(self.degree):
            nxt = self._predict_next(history, cur)
            if nxt == 0:
                break
            cur += nxt
            if not 0 <= cur < _LINES_PER_PAGE:
                break
            requests.append(
                PrefetchRequest(
                    line=page * _LINES_PER_PAGE + cur, fill_level=FILL_L2
                )
            )
            history.append(nxt)
            history = history[-self.max_history:]
        return requests

    def storage_bits(self) -> int:
        # DHB: 64 x (page tag 16 + offset 6 + 3 deltas x 7);
        # DPTs: 3 x 256 x (key ~21 + delta 7 + conf 2); OPT: 64 x 9.
        return (
            self.dhb_entries * (16 + 6 + 3 * 7)
            + self.max_history * self.dpt_entries * (21 + 7 + 2)
            + 64 * 9
        )

    def reset(self) -> None:
        self._dhb.clear()
        self._dpt = [{} for _ in range(self.max_history)]
        self._opt.clear()
