"""JSONL checkpoint journal: crash-safe progress for long campaigns.

One line per finished job (completed *or* given up on), appended and
flushed immediately, so an interrupted suite loses at most the jobs that
were still in flight.  On ``--resume`` the journal is replayed: jobs
with a stored ``ok`` record return their deserialised result without
re-running; failed records are retried.

Line format (all lines are independent JSON objects)::

    {"key": "<job key>", "status": "ok", "attempts": 1, "elapsed": 1.2,
     "result": {<SimResult.to_dict()>}}
    {"key": "<job key>", "status": "failed", "kind": "timeout",
     "error_type": "JobTimeout", "message": "...", "attempts": 2,
     "elapsed": 30.1, "context": {"trace": "...", "prefetcher": "..."}}

The *last* record for a key wins, so re-runs simply append.  Truncated
or corrupt lines (a worker killed mid-write) are skipped, not fatal.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.runner.jobs import CompletedRun, RunOutcome
from repro.simulator.stats import SimResult


class Journal:
    """Append-only JSONL record of job outcomes."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def load(self) -> Dict[str, dict]:
        """Parse the journal; returns the last record per job key."""
        records: Dict[str, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted run
                key = rec.get("key")
                if key:
                    records[key] = rec
        return records

    def append(self, outcome: RunOutcome) -> None:
        """Record one outcome, durable on disk before returning.

        Write-temp-then-rename: the journal's existing bytes plus the
        new line go to a temp file in the same directory, are fsynced,
        and replace the journal atomically.  A crash at any point leaves
        either the old journal or the new one — never a torn line in the
        middle of the file (a torn *tail* from pre-hardening journals is
        still tolerated by :meth:`load`).  Journals are one line per
        finished job, so the rewrite is a few kilobytes per append.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            existing = self.path.read_bytes()
        except FileNotFoundError:
            existing = b""
        if existing and not existing.endswith(b"\n"):
            existing += b"\n"  # heal a torn tail so the new record parses
        line = (json.dumps(self._encode(outcome)) + "\n").encode("utf-8")
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(existing + line)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        try:
            dir_fd = os.open(str(self.path.parent), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)

    @staticmethod
    def _encode(outcome: RunOutcome) -> dict:
        if outcome.ok:
            result = outcome.result
            return {
                "key": outcome.key,
                "status": "ok",
                "attempts": outcome.attempts,
                "elapsed": round(outcome.elapsed, 4),
                "result": result.to_dict()
                if isinstance(result, SimResult) else result,
            }
        return {
            "key": outcome.key,
            "status": "failed",
            "kind": outcome.kind,
            "error_type": outcome.error_type,
            "message": outcome.message,
            "attempts": outcome.attempts,
            "elapsed": round(outcome.elapsed, 4),
            "context": outcome.context,
        }

    @staticmethod
    def decode_completed(rec: dict) -> Optional[CompletedRun]:
        """Rebuild a :class:`CompletedRun` from an ``ok`` journal record."""
        if rec.get("status") != "ok":
            return None
        result = rec.get("result")
        if isinstance(result, dict) and "trace_name" in result:
            result = SimResult.from_dict(result)
        return CompletedRun(
            key=rec["key"],
            result=result,
            attempts=rec.get("attempts", 1),
            elapsed=rec.get("elapsed", 0.0),
            from_journal=True,
        )
