"""Command-line interface: run reproduction experiments from a shell.

Examples::

    python -m repro list
    python -m repro trace-info --trace mcf_s-1554B
    python -m repro run --trace mcf_s-1554B --l1d berti
    python -m repro compare --trace bc-kron --l1d ip_stride,ipcp,berti
    python -m repro suite --suite spec17 --l1d mlop,ipcp,berti --scale 0.3
    python -m repro storage
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.analysis.metrics import geomean_speedup
from repro.analysis.report import format_table
from repro.prefetchers.registry import available, make_prefetcher, storage_kb
from repro.simulator.config import default_config
from repro.simulator.engine import simulate
from repro.workloads.cloudsuite_like import GENERATORS as CS_GENERATORS
from repro.workloads.gap import GRAPHS, KERNELS, gap_trace
from repro.workloads.spec_like import GENERATORS as SPEC_GENERATORS
from repro.workloads.trace import Trace


def resolve_trace(name: str, scale: float) -> Trace:
    """Find a trace generator by name across all suites."""
    if name in SPEC_GENERATORS:
        return SPEC_GENERATORS[name](scale)
    if name in CS_GENERATORS:
        return CS_GENERATORS[name](scale)
    if "-" in name:
        kernel, __, graph = name.partition("-")
        if kernel in KERNELS and graph in GRAPHS:
            return gap_trace(kernel, graph, scale)
    raise SystemExit(
        f"unknown trace {name!r}; run `python -m repro list` for options"
    )


def all_trace_names() -> List[str]:
    gap_names = [f"{k}-{g}" for k in KERNELS for g in GRAPHS]
    return list(SPEC_GENERATORS) + gap_names + list(CS_GENERATORS)


def _config(args) -> object:
    cfg = default_config()
    if getattr(args, "mtps", None):
        cfg = cfg.with_dram_mtps(args.mtps)
    return cfg


def cmd_list(args) -> int:
    print("Prefetchers:")
    for name in available():
        pf = make_prefetcher(name)
        print(f"  {name:12s} level={pf.level:4s} "
              f"storage={pf.storage_kb():7.2f} KB")
    print("\nTraces:")
    for name in all_trace_names():
        print(f"  {name}")
    return 0


def cmd_trace_info(args) -> int:
    t = resolve_trace(args.trace, args.scale)
    print(f"name:          {t.name}")
    print(f"suite:         {t.suite}")
    print(f"description:   {t.description}")
    print(f"records:       {len(t)}")
    print(f"instructions:  {t.instruction_count}")
    print(f"load IPs:      {t.unique_ips}")
    print(f"footprint:     {t.footprint_bytes() / 1024:.0f} KB")
    print(f"write frac:    {t.write_fraction:.1%}")
    return 0


def cmd_run(args) -> int:
    t = resolve_trace(args.trace, args.scale)
    result = simulate(
        t,
        l1d_prefetcher=make_prefetcher(args.l1d),
        l2_prefetcher=make_prefetcher(args.l2),
        config=_config(args),
    )
    pf = result.pf_l1d
    print(result.summary_line())
    print(f"  IPC              {result.ipc:.3f}")
    print(f"  MPKI l1d/l2/llc  {result.l1d_mpki:.1f} / {result.l2_mpki:.1f}"
          f" / {result.llc_mpki:.1f}")
    print(f"  prefetch issued  {pf.issued}")
    print(f"  useful (late)    {pf.useful} ({pf.late})")
    print(f"  accuracy         {pf.accuracy:.1%}")
    print(f"  dram reads       {result.dram_reads} "
          f"(avg latency {result.avg_dram_read_latency:.0f} cycles)")
    return 0


def cmd_compare(args) -> int:
    t = resolve_trace(args.trace, args.scale)
    names = args.l1d.split(",")
    cfg = _config(args)
    results = {
        n: simulate(t, l1d_prefetcher=make_prefetcher(n), config=cfg)
        for n in names
    }
    base = results.get(args.baseline) or simulate(
        t, l1d_prefetcher=make_prefetcher(args.baseline), config=cfg
    )
    rows = [
        [n, r.ipc, r.speedup_over(base), r.l1d_mpki, r.pf_l1d.accuracy]
        for n, r in results.items()
    ]
    print(format_table(
        ["prefetcher", "IPC", f"speedup vs {args.baseline}", "L1D MPKI",
         "accuracy"],
        rows, title=f"{t.name} ({len(t)} accesses)",
    ))
    return 0


def cmd_suite(args) -> int:
    if args.suite == "spec17":
        traces = [g(args.scale) for g in SPEC_GENERATORS.values()]
    elif args.suite == "gap":
        traces = [
            gap_trace(k, g, args.scale) for k in KERNELS for g in
            (GRAPHS if args.all_graphs else ["kron", "urand"])
        ]
    elif args.suite == "cloudsuite":
        traces = [g(args.scale) for g in CS_GENERATORS.values()]
    else:
        raise SystemExit(f"unknown suite {args.suite!r}")

    names = args.l1d.split(",")
    if args.baseline not in names:
        names = [args.baseline] + names
    cfg = _config(args)
    per_trace: Dict[str, Dict[str, object]] = {}
    for t in traces:
        print(f"simulating {t.name}...", file=sys.stderr)
        per_trace[t.name] = {
            n: simulate(t, l1d_prefetcher=make_prefetcher(n), config=cfg)
            for n in names
        }
    speeds = geomean_speedup(per_trace, baseline_name=args.baseline)
    rows = [[n, speeds[n]] for n in names]
    print(format_table(
        ["prefetcher", "geomean speedup"], rows,
        title=f"suite {args.suite} ({len(traces)} traces, "
              f"scale {args.scale})",
    ))
    return 0


def cmd_storage(args) -> int:
    from repro.core.config import BertiConfig

    rows = [
        [name, round(storage_kb(name), 2)]
        for name in available() if name != "none"
    ]
    print(format_table(["prefetcher", "storage KB"], rows,
                       title="Hardware budgets"))
    print("\nBerti breakdown (Table I):")
    for k, v in BertiConfig().storage_breakdown_kb().items():
        print(f"  {k:22s} {v:5.2f} KB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Berti (MICRO 2022) reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list prefetchers and traces")

    info = sub.add_parser("trace-info", help="describe a trace")
    info.add_argument("--trace", required=True)
    info.add_argument("--scale", type=float, default=0.5)

    run = sub.add_parser("run", help="simulate one configuration")
    run.add_argument("--trace", required=True)
    run.add_argument("--l1d", default="berti")
    run.add_argument("--l2", default="none")
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--mtps", type=int, default=None,
                     help="DRAM transfer rate (6400/3200/1600)")

    cmp_ = sub.add_parser("compare", help="compare prefetchers on a trace")
    cmp_.add_argument("--trace", required=True)
    cmp_.add_argument("--l1d", default="ip_stride,mlop,ipcp,berti")
    cmp_.add_argument("--baseline", default="ip_stride")
    cmp_.add_argument("--scale", type=float, default=0.5)
    cmp_.add_argument("--mtps", type=int, default=None)

    suite = sub.add_parser("suite", help="geomean speedups over a suite")
    suite.add_argument("--suite", default="spec17",
                       choices=["spec17", "gap", "cloudsuite"])
    suite.add_argument("--l1d", default="mlop,ipcp,berti")
    suite.add_argument("--baseline", default="ip_stride")
    suite.add_argument("--scale", type=float, default=0.4)
    suite.add_argument("--all-graphs", action="store_true")
    suite.add_argument("--mtps", type=int, default=None)

    sub.add_parser("storage", help="hardware budgets incl. Table I")
    return p


COMMANDS = {
    "list": cmd_list,
    "trace-info": cmd_trace_info,
    "run": cmd_run,
    "compare": cmd_compare,
    "suite": cmd_suite,
    "storage": cmd_storage,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
