#!/usr/bin/env python3
"""Quickstart: simulate one trace with and without Berti.

Builds a small mcf-like pointer-chasing trace, runs it through the
simulated memory hierarchy against the IP-stride baseline (the paper's
baseline system) and with Berti at the L1D, and prints the headline
metrics: IPC speedup, L1D MPKI, prefetch accuracy, and timeliness.

Run:  python examples/quickstart.py
"""

from repro import BertiPrefetcher, simulate
from repro.prefetchers.registry import make_prefetcher
from repro.workloads.spec_like import mcf_s_1554


def main() -> None:
    trace = mcf_s_1554(scale=0.5)
    print(f"trace: {trace.name} — {len(trace)} memory accesses, "
          f"{trace.instruction_count} instructions, "
          f"{trace.unique_ips} load IPs\n")

    baseline = simulate(trace, l1d_prefetcher=make_prefetcher("ip_stride"))
    berti = simulate(trace, l1d_prefetcher=BertiPrefetcher())

    print(f"{'':16s}{'IP-stride':>12s}{'Berti':>12s}")
    print(f"{'IPC':16s}{baseline.ipc:12.3f}{berti.ipc:12.3f}")
    print(f"{'L1D MPKI':16s}{baseline.l1d_mpki:12.1f}{berti.l1d_mpki:12.1f}")
    print(f"{'LLC MPKI':16s}{baseline.llc_mpki:12.1f}{berti.llc_mpki:12.1f}")

    pf = berti.pf_l1d
    print(f"\nBerti prefetching:")
    print(f"  issued        {pf.issued}")
    print(f"  useful        {pf.useful} "
          f"({pf.timely} timely, {pf.late} late)")
    print(f"  accuracy      {pf.accuracy:.1%}")
    print(f"\nspeedup over IP-stride: {berti.speedup_over(baseline):.3f}x")
    print(f"Berti hardware budget:  {BertiPrefetcher().storage_kb():.2f} KB")


if __name__ == "__main__":
    main()
