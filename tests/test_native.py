"""Bit-identity, demotion guards, and error mapping for ``repro.native``.

The native backend (``simulate(..., engine="native")``) runs the Berti
kernel hooks and the L1D/L2 demand ladder in a C shared object compiled
at first use.  Its contract is the batched engine's, one level down:
every counter, every structural state, every snapshot byte must match
the classic engine, and anything the C side was not sized for must
demote to the batched Python loop — never engage and silently diverge.

Tests that need the compiled kernel are skipped (not failed) on hosts
without a C compiler; the demotion/fallback tests run everywhere — that
*is* the pure-Python path.
"""

import pickle

import pytest

from repro.core.berti import BertiPrefetcher
from repro.errors import ConfigError, SimulationError
from repro.memory.replacement import LRUPolicy
from repro.native import build as native_build
from repro.native.marshal import RIX
from repro.native.runner import (
    DEMOTION_REASONS,
    NativeRunner,
    make_native_runner,
    native_mode,
)
from repro.prefetchers.registry import make_prefetcher
from repro.sanitizer.lockstep import _state_digest, lockstep_engines, quick_trace
from repro.sanitizer.snapshot import simulate_with_snapshots, snapshot_path
from repro.simulator.engine import build_hierarchy, simulate
from repro.workloads.trace import Trace

RECORDS = 1200

_KERNEL_FN, _KERNEL_DIAG = native_build.kernel_available()
needs_kernel = pytest.mark.skipif(
    _KERNEL_FN is None, reason=f"no native kernel: {_KERNEL_DIAG}"
)


@pytest.fixture(scope="module")
def trace():
    return quick_trace(RECORDS, "native_trace")


def run(trace, l1d, engine, chunk_size=0, **kw):
    cap = {}
    res = simulate(
        trace, l1d_prefetcher=make_prefetcher(l1d),
        post_build=lambda h: cap.update(h=h),
        engine=engine, chunk_size=chunk_size, **kw,
    )
    return res, cap["h"]


def strip_native(result_dict):
    """Drop the reporting-only ``native_*`` extra markers."""
    d = dict(result_dict)
    d["extra"] = {k: v for k, v in d.get("extra", {}).items()
                  if not k.startswith("native")}
    return d


@needs_kernel
class TestBitIdentity:
    @pytest.mark.parametrize("l1d", ["none", "berti"])
    def test_native_matches_classic(self, trace, l1d):
        rc, hc = run(trace, l1d, "classic")
        rn, hn = run(trace, l1d, "native")
        assert rn.extra["native_spans"] > 0
        assert rn.extra["native_demoted_spans"] == 0
        assert strip_native(rn.to_dict()) == rc.to_dict()
        assert _state_digest(hn) == _state_digest(hc)
        assert pickle.dumps(hn) == pickle.dumps(hc)

    @pytest.mark.parametrize("chunk_size", [1, 17, 333, 10**9])
    def test_chunk_size_invariant(self, trace, chunk_size):
        rc, hc = run(trace, "berti", "classic")
        rn, hn = run(trace, "berti", "native", chunk_size=chunk_size)
        assert strip_native(rn.to_dict()) == rc.to_dict()
        assert _state_digest(hn) == _state_digest(hc)

    @pytest.mark.parametrize("at", [0, 1, 600, 1199])
    def test_forced_mid_run_demotion_matches(self, trace, at):
        # Spans after `at` fall back to the batched loop: the marshal
        # round-trip at the switch point must be lossless.
        rc, hc = run(trace, "berti", "classic")
        rn, hn = run(trace, "berti", "native", native_demote_at=at)
        assert rn.extra["native_demoted_spans"] > 0
        assert rn.extra["native_demotion_code"] == 5.0
        assert strip_native(rn.to_dict()) == rc.to_dict()
        assert pickle.dumps(hn) == pickle.dumps(hc)

    def test_lockstep_engines_native(self, trace):
        report = lockstep_engines(trace, l1d="berti", engine="native")
        assert report.ok, report.describe()
        assert report.engine == "native"

    def test_lockstep_detects_planted_divergence(self, trace):
        report = lockstep_engines(
            trace, l1d="berti", engine="native", seed_divergence=700
        )
        assert not report.ok
        assert report.diverged_at is not None


@needs_kernel
class TestSnapshots:
    def test_snapshot_files_byte_identical_across_engines(
        self, trace, tmp_path
    ):
        paths = {}
        for engine in ("classic", "native"):
            d = tmp_path / engine
            d.mkdir()
            simulate_with_snapshots(
                trace, l1d_prefetcher=make_prefetcher("berti"),
                snapshot_every=333, snapshot_dir=str(d), engine=engine,
            )
            paths[engine] = sorted(p.name for p in d.iterdir())
        assert paths["native"] == paths["classic"] != []
        for name in paths["classic"]:
            classic = (tmp_path / "classic" / name).read_bytes()
            native = (tmp_path / "native" / name).read_bytes()
            assert native == classic, f"snapshot {name} differs"

    @pytest.mark.parametrize(
        "writer,resumer", [("classic", "native"), ("native", "batched"),
                           ("batched", "native")]
    )
    def test_resume_across_backends(self, trace, tmp_path, writer, resumer):
        baseline = simulate(
            trace, l1d_prefetcher=make_prefetcher("berti")
        ).to_dict()
        d = tmp_path / "ckpts"
        d.mkdir()
        simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            snapshot_every=333, snapshot_dir=str(d), engine=writer,
        )
        resumed = simulate_with_snapshots(
            trace, l1d_prefetcher=make_prefetcher("berti"),
            resume_from=snapshot_path(str(d), 333), engine=resumer,
        )
        assert strip_native(resumed.to_dict()) == baseline


class TestDemotionGuards:
    """The kernel must never engage against anything non-stock."""

    def make_parts(self, l1d="berti", l2=None):
        from repro.cpu.core_model import CoreModel
        from repro.simulator.config import default_config

        cfg = default_config()
        h = build_hierarchy(
            cfg,
            l1d if not isinstance(l1d, str) else make_prefetcher(l1d),
            make_prefetcher(l2) if isinstance(l2, str) else l2,
        )
        return h, CoreModel(cfg.core)

    def test_stock_berti_is_native_ok(self):
        h, core = self.make_parts()
        ok, code, _ = native_mode(h, core)
        assert ok and code == 0

    def test_fault_injection_subclass_demotes(self):
        class SilentSubclass(BertiPrefetcher):
            name = "berti"
            kernel_hooks = True
            kernel_batch_hooks = True
            kernel_batch_key = "ip"

        h, core = self.make_parts(SilentSubclass())
        ok, code, detail = native_mode(h, core)
        assert not ok and code == 3
        assert DEMOTION_REASONS[code] == "unsupported-prefetcher"
        assert "SilentSubclass" in detail

    def test_wrapped_demand_access_demotes(self):
        h, core = self.make_parts()
        inner = h.demand_access
        h.demand_access = (
            lambda ip, vaddr, now, is_write=False:
            inner(ip, vaddr, now, is_write)
        )
        ok, code, _ = native_mode(h, core)
        assert not ok and code == 2

    def test_l2_prefetcher_demotes(self):
        h, core = self.make_parts(l2="spp")
        ok, code, _ = native_mode(h, core)
        assert not ok and code == 2  # batch_mode already demotes

    def test_replacement_subclass_demotes(self):
        class TracingLRU(LRUPolicy):
            pass

        h, core = self.make_parts()
        h.l1d.policy = TracingLRU(1, 1)  # only the type is inspected
        ok, code, detail = native_mode(h, core)
        assert not ok and code == 4
        assert "TracingLRU" in detail

    def test_oversized_delta_geometry_demotes(self):
        from repro.core.config import BertiConfig

        pf = BertiPrefetcher(BertiConfig(deltas_per_entry=65,
                                         delta_table_entries=16))
        h, core = self.make_parts(pf)
        ok, code, detail = native_mode(h, core)
        assert not ok and code == 3
        assert "geometry" in detail

    def test_demoted_run_still_matches_classic(self, ):
        # A config the kernel refuses must still produce classic-identical
        # results through the native entry point (via the batched twin).
        t = quick_trace(400, "native_demoted")
        classic = simulate(
            t, l1d_prefetcher=make_prefetcher("berti"),
            l2_prefetcher=make_prefetcher("spp"), engine="classic",
        ).to_dict()
        native = simulate(
            t, l1d_prefetcher=make_prefetcher("berti"),
            l2_prefetcher=make_prefetcher("spp"), engine="native",
        )
        assert native.extra["native_spans"] == 0
        assert native.extra["native_demoted"] == 1.0
        assert strip_native(native.to_dict()) == classic

    def test_guard_clearing_resumes_native_with_full_reexport(self):
        # native span -> demoted span (guard trips) -> native span again.
        # The demoted span mutates the Python cache objects directly, so
        # the third span must re-export the full state (mark_stale path)
        # and still land bit-identical with a pure classic run.
        from repro.cpu.core_model import CoreModel
        from repro.simulator.config import default_config

        t = quick_trace(1200, "native_flipflop")
        cfg = default_config()
        hn = build_hierarchy(cfg, make_prefetcher("berti"), None)
        runner = make_native_runner(t, hn, CoreModel(cfg.core))
        if runner._fn is None:
            pytest.skip(f"no native kernel: {runner.compiler_diagnostic}")
        core = runner.core
        runner(0, 400)
        inner = hn.demand_access
        hn.demand_access = (
            lambda ip, vaddr, now, is_write=False:
            inner(ip, vaddr, now, is_write)
        )
        runner(400, 800)
        del hn.demand_access  # restore the class method: guard clears
        runner(800, 1200)
        assert runner.native_spans == 2
        assert runner.demoted_spans == 1

        hc = build_hierarchy(default_config(), make_prefetcher("berti"), None)
        cc = CoreModel(default_config().core)
        ips, addrs, writes, gaps, deps = t.columns()
        for i in range(1200):
            if gaps[i]:
                cc.advance_nonmem(gaps[i])
            cc.issue_memory(hc.demand_access, ips[i], addrs[i],
                            bool(writes[i]), deps[i])
        assert _state_digest(hn) == _state_digest(hc)
        assert pickle.dumps(hn) == pickle.dumps(hc)

    def test_negative_addresses_demote(self):
        t = Trace("negative_addrs")
        t.extend([(0x400, -4096 * (i + 1), False, 1, 0)
                  for i in range(64)])
        h, core = self.make_parts()
        runner = make_native_runner(t, h, core)
        runner(0, len(t))
        assert runner.native_spans == 0
        assert runner.demoted_spans == 1
        assert runner.demotion_code == 2


class TestCompilerFallback:
    """The pure-Python path when no compiler exists on the host."""

    @pytest.fixture
    def no_compiler(self, monkeypatch):
        native_build.reset_build_cache()
        monkeypatch.setattr(native_build, "find_compiler", lambda: None)
        monkeypatch.setattr(native_build, "cache_dir",
                            lambda: native_build.Path("/nonexistent/repro"))
        yield
        native_build.reset_build_cache()

    def test_auto_demotes_with_structured_reason(self, no_compiler):
        t = quick_trace(300, "no_cc_auto")
        classic = simulate(
            t, l1d_prefetcher=make_prefetcher("berti"), engine="classic"
        ).to_dict()
        res = simulate(
            t, l1d_prefetcher=make_prefetcher("berti"), engine="native"
        )
        assert res.extra["native_spans"] == 0
        assert res.extra["native_demotion_code"] == 1.0
        assert DEMOTION_REASONS[1] == "no-compiler"
        assert strip_native(res.to_dict()) == classic

    def test_force_raises_config_error_with_diagnostic(self, no_compiler):
        t = quick_trace(300, "no_cc_force")
        with pytest.raises(ConfigError) as exc:
            simulate(t, l1d_prefetcher=make_prefetcher("berti"),
                     engine="native", native="force")
        assert exc.value.context()["field"] == "engine"
        assert "no C compiler" in str(exc.value)

    def test_off_pins_batched_fallback(self, trace):
        rc, hc = run(trace, "berti", "classic")
        rn, hn = run(trace, "berti", "native", native="off")
        assert rn.extra["native_spans"] == 0.0
        assert rn.extra["native_demoted_spans"] == 0.0
        assert "native_demoted" not in rn.extra
        assert strip_native(rn.to_dict()) == rc.to_dict()
        assert pickle.dumps(hn) == pickle.dumps(hc)

    def test_unknown_native_policy_rejected(self, trace):
        with pytest.raises(ConfigError) as exc:
            simulate(trace, engine="native", native="eventually")
        assert exc.value.context()["field"] == "native"


@needs_kernel
class TestErrorMapping:
    """rc != 0 from the kernel maps to the batched loop's exceptions."""

    def make_runner(self, trace):
        from repro.cpu.core_model import CoreModel
        from repro.simulator.config import default_config

        cfg = default_config()
        h = build_hierarchy(cfg, make_prefetcher("berti"), None)
        return make_native_runner(trace, h, CoreModel(cfg.core))

    def _run_with_rc(self, monkeypatch, rc, a=3, b=3, c=777, d=0x40):
        t = quick_trace(200, "err_map")
        runner = self.make_runner(t)

        def fake_call_span(fn, state):
            R = state.R
            R[RIX["ERR_A"]], R[RIX["ERR_B"]] = a, b
            R[RIX["ERR_C"]], R[RIX["ERR_D"]] = c, d
            return rc

        monkeypatch.setattr(native_build, "call_span", fake_call_span)
        runner(0, len(t))
        return runner

    def test_mshr_full_message_matches_python_engine(self, monkeypatch):
        # Byte-for-byte the message MSHR.allocate raises, so the fuzz
        # triage fingerprints agree across engines.
        from repro.memory.mshr import MSHR

        with pytest.raises(SimulationError) as native_exc:
            self._run_with_rc(monkeypatch, rc=1, a=3, b=3, c=777, d=0x40)
        mshr = MSHR(size=3)
        for i in range(3):
            mshr.allocate(0x100 + i, now=777, ready_cycle=1000,
                          is_prefetch=False)
        with pytest.raises(SimulationError) as python_exc:
            mshr.allocate(0x40, now=777, ready_cycle=1000,
                          is_prefetch=False)
        assert str(native_exc.value) == str(python_exc.value)
        assert native_exc.value.context()["field"] == "mshr"

    def test_internal_error_rc_is_typed(self, monkeypatch):
        with pytest.raises(SimulationError) as exc:
            self._run_with_rc(monkeypatch, rc=9)
        assert exc.value.context()["field"] == "engine"
        assert "internal error 9" in str(exc.value)


@needs_kernel
class TestPredecodeSharing:
    """The NumPy chunk pre-decode feeds both engines from one cache."""

    def test_decoded_columns_cached_and_plain_int(self, trace):
        vlines1, vpages1 = trace.decoded_columns()
        vlines2, vpages2 = trace.decoded_columns()
        assert vpages1 is vpages2  # memoised
        assert len(vlines1) == len(trace)
        assert type(vpages1[0]) is int

    def test_decoded_columns_track_appends(self):
        t = Trace("growing")
        t.extend([(0x400, 0x1000 * i, False, 1, 0) for i in range(8)])
        _, pages = t.decoded_columns()
        assert len(pages) == 8
        t.extend([(0x400, 0x9000, False, 1, 0)])
        _, pages = t.decoded_columns()
        assert len(pages) == 9
        assert pages[-1] == 0x9000 >> 12
