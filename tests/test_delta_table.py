"""Unit tests for Berti's table of deltas."""

import pytest

from repro.core.config import BertiConfig
from repro.core.delta_table import (
    L1D_PREF,
    L2_PREF,
    L2_PREF_REPL,
    NO_PREF,
    DeltaTable,
)

IP = 0x402DC7


def run_phase(table, ip, deltas_per_search, searches=16):
    """Drive one full learning phase (counter_max searches)."""
    for __ in range(searches):
        table.record_search(ip, list(deltas_per_search))


class TestCoverageAccumulation:
    def test_snapshot_mid_phase(self):
        t = DeltaTable()
        t.record_search(IP, [3, 5])
        t.record_search(IP, [3])
        snap = dict((d, c) for d, c, __ in t.entry_snapshot(IP))
        assert snap[3] == 2 and snap[5] == 1

    def test_no_prefetch_before_warmup_threshold(self):
        t = DeltaTable()
        for __ in range(7):
            t.record_search(IP, [3])
        assert t.prefetch_deltas(IP) == []

    def test_warmup_issue_at_80_percent(self):
        cfg = BertiConfig()
        t = DeltaTable(cfg)
        for __ in range(cfg.warmup_min_searches):
            t.record_search(IP, [3])
        assert (3, L1D_PREF) in t.prefetch_deltas(IP)

    def test_warmup_excludes_low_coverage(self):
        cfg = BertiConfig()
        t = DeltaTable(cfg)
        for i in range(cfg.warmup_min_searches):
            t.record_search(IP, [3] if i % 2 == 0 else [5])
        # 50% coverage each: below the 80% warmup watermark.
        assert t.prefetch_deltas(IP) == []


class TestPhaseClose:
    def test_high_coverage_gets_l1d_status(self):
        t = DeltaTable()
        run_phase(t, IP, [7])  # 16/16 coverage
        assert (7, L1D_PREF) in t.prefetch_deltas(IP)

    def test_medium_coverage_gets_l2_status(self):
        t = DeltaTable()
        for i in range(16):
            # delta 7 in 9 of 16 searches: 56% -> between 35% and 65%,
            # and >= 50% -> plain L2_PREF.
            t.record_search(IP, [7] if i < 9 else [9])
        deltas = dict(t.prefetch_deltas(IP))
        assert deltas.get(7) == L2_PREF

    def test_low_half_medium_gets_repl_status(self):
        t = DeltaTable()
        for i in range(16):
            # 7 of 16 = 44%: above 35%, below 50% -> L2_PREF_REPL.
            t.record_search(IP, [7] if i < 7 else [])
        deltas = dict(t.prefetch_deltas(IP))
        assert deltas.get(7) == L2_PREF_REPL

    def test_below_medium_no_prefetch(self):
        t = DeltaTable()
        for i in range(16):
            t.record_search(IP, [7] if i < 4 else [])  # 25%
        assert t.prefetch_deltas(IP) == []

    def test_coverages_reset_after_close(self):
        t = DeltaTable()
        run_phase(t, IP, [7])
        snap = t.entry_snapshot(IP)
        assert all(c == 0 for __, c, __s in snap)

    def test_statuses_persist_into_next_phase(self):
        t = DeltaTable()
        run_phase(t, IP, [7])
        t.record_search(IP, [7])  # phase 2 under way
        assert (7, L1D_PREF) in t.prefetch_deltas(IP)

    def test_relearn_after_pattern_change(self):
        t = DeltaTable()
        run_phase(t, IP, [7])
        run_phase(t, IP, [11])
        deltas = dict(t.prefetch_deltas(IP))
        assert deltas.get(11) == L1D_PREF
        assert deltas.get(7, NO_PREF) == NO_PREF

    def test_max_prefetch_deltas_bound(self):
        cfg = BertiConfig()
        t = DeltaTable(cfg)
        run_phase(t, IP, list(range(1, 15)))  # 14 deltas, all 100%
        assert len(t.prefetch_deltas(IP)) <= cfg.max_prefetch_deltas

    def test_l1d_status_sorted_first(self):
        t = DeltaTable()
        for i in range(16):
            deltas = [1]
            if i < 9:
                deltas.append(2)  # 56% -> L2 tier
            t.record_search(IP, deltas)
        selected = t.prefetch_deltas(IP)
        statuses = [s for __, s in selected]
        assert statuses == sorted(statuses, key=lambda s: s != L1D_PREF)


class TestSlotEviction:
    def test_new_delta_evicts_no_pref_slot(self):
        cfg = BertiConfig()
        t = DeltaTable(cfg)
        # Fill all 16 slots with garbage that closes a phase as NO_PREF.
        run_phase(t, IP, list(range(1, 17)))
        run_phase(t, IP, [])  # everything decays to NO_PREF
        t.record_search(IP, [99])
        snap = [d for d, __, __s in t.entry_snapshot(IP)]
        assert 99 in snap

    def test_new_delta_discarded_when_all_protected(self):
        cfg = BertiConfig()
        t = DeltaTable(cfg)
        protected = list(range(1, cfg.deltas_per_entry + 1))
        run_phase(t, IP, protected)  # all 100% -> first 12 L1D, rest NO.
        # Deltas with NO_PREF status exist (slots beyond 12), so eviction
        # should still be possible; force all slots protected instead:
        # re-run with exactly 12 deltas so remaining slots stay NO_PREF.
        before = t.discarded_deltas
        t.record_search(IP, [999])
        assert t.discarded_deltas == before  # an evictable slot existed


class TestEntryManagement:
    def test_fifo_entry_eviction(self):
        cfg = BertiConfig()
        t = DeltaTable(cfg)
        ips = [0x1000 + i * 64 for i in range(cfg.delta_table_entries + 1)]
        for ip in ips:
            t.record_search(ip, [1])
        # The first IP's entry was evicted by the FIFO.
        assert t.entry_snapshot(ips[0]) == []

    def test_tag_lookup_consistency(self):
        t = DeltaTable()
        t.record_search(IP, [4])
        assert t.entry_snapshot(IP) == [(4, 1, NO_PREF)]

    def test_reset(self):
        t = DeltaTable()
        run_phase(t, IP, [7])
        t.reset()
        assert t.entry_snapshot(IP) == []
        assert t.phase_completions == 0


class TestWatermarkConfig:
    def test_custom_watermarks_change_tiering(self):
        cfg = BertiConfig().with_watermarks(high=0.9, medium=0.5)
        t = DeltaTable(cfg)
        for i in range(16):
            t.record_search(IP, [7] if i < 12 else [])  # 75%
        deltas = dict(t.prefetch_deltas(IP))
        # 75% under the 90% high watermark -> only an L2-tier status.
        assert deltas.get(7) in (L2_PREF, L2_PREF_REPL)

    def test_invalid_watermarks_raise(self):
        with pytest.raises(ValueError):
            BertiConfig().with_watermarks(high=0.3, medium=0.6)
