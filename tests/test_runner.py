"""Tests for the resilient experiment runner.

The acceptance bar: faulted campaigns complete with correct failure
classification, survivors are bit-identical to a clean serial run, and
an interrupted + resumed campaign executes exactly the jobs that were
missing — with an identical final table.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.runner import (
    CallableJob,
    CompletedRun,
    ExperimentRunner,
    FailedRun,
    FaultSpec,
    JobSpec,
    Journal,
    RunnerConfig,
    build_matrix_jobs,
    per_trace_results,
    run_callable,
)

TRACE = "lbm_s-2676B"
TRACE2 = "mcf_s-1554B"
SCALE = 0.05


def make_jobs(prefetchers=("ip_stride", "berti"), traces=(TRACE, TRACE2)):
    return build_matrix_jobs(list(traces), list(prefetchers), scale=SCALE)


class TestInline:
    def test_all_complete(self):
        suite = ExperimentRunner(RunnerConfig(workers=0)).run(make_jobs())
        assert len(suite.completed) == 4 and not suite.failures
        assert suite.banner() == "4/4 jobs completed"

    def test_outcomes_in_submission_order(self):
        jobs = make_jobs()
        suite = ExperimentRunner(RunnerConfig(workers=0)).run(jobs)
        assert [o.key for o in suite.outcomes] == [j.key for j in jobs]

    def test_crash_isolated_to_one_job(self):
        jobs = list(make_jobs(traces=(TRACE,))) + [
            JobSpec(trace=TRACE2, l1d="berti", scale=SCALE,
                    fault=FaultSpec(kind="crash", period=3)),
        ]
        suite = ExperimentRunner(RunnerConfig(workers=0, retries=0)).run(jobs)
        assert len(suite.completed) == 2
        [failed] = suite.failures
        assert failed.kind == "crash"
        assert failed.error_type == "SimulationError"
        assert "InjectedCrash" in failed.message
        assert failed.context["trace"] == TRACE2
        assert "1 crash" in suite.banner()

    def test_trace_error_never_retried(self):
        calls = []

        def run_fn(job, attempt):
            calls.append(attempt)
            from repro.errors import TraceError
            raise TraceError("permanently bad")

        suite = ExperimentRunner(RunnerConfig(workers=0, retries=3)).run(
            [JobSpec(trace=TRACE, scale=SCALE)], run_fn=run_fn
        )
        assert calls == [1]
        assert suite.failures[0].kind == "trace"

    def test_flaky_job_retried_then_succeeds(self):
        job = JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE,
                      fault=FaultSpec(kind="flaky", fail_attempts=1))
        cfg = RunnerConfig(workers=0, retries=1, backoff_base=0.01)
        suite = ExperimentRunner(cfg).run([job])
        [done] = suite.completed
        assert done.attempts == 2

    def test_flaky_job_exhausts_retries(self):
        job = JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE,
                      fault=FaultSpec(kind="flaky", fail_attempts=5))
        cfg = RunnerConfig(workers=0, retries=1, backoff_base=0.01)
        suite = ExperimentRunner(cfg).run([job])
        [failed] = suite.failures
        assert failed.kind == "crash" and failed.attempts == 2

    def test_duplicate_keys_rejected(self):
        job = JobSpec(trace=TRACE, scale=SCALE)
        with pytest.raises(ConfigError):
            ExperimentRunner(RunnerConfig()).run([job, job])

    def test_callable_jobs(self):
        jobs = [CallableJob(key=f"k{i}", fn=lambda i=i: i * i)
                for i in range(3)]
        suite = ExperimentRunner(RunnerConfig(workers=0)).run(
            jobs, run_fn=run_callable
        )
        assert [o.result for o in suite.completed] == [0, 1, 4]


class TestConfigValidation:
    def test_negative_workers(self):
        with pytest.raises(ConfigError):
            RunnerConfig(workers=-1)

    def test_nonpositive_backoff_base(self):
        with pytest.raises(ConfigError) as exc:
            RunnerConfig(backoff_base=0)
        assert exc.value.field == "backoff_base"

    def test_negative_backoff_base(self):
        with pytest.raises(ConfigError):
            RunnerConfig(backoff_base=-0.5)

    def test_nonpositive_backoff_factor(self):
        with pytest.raises(ConfigError) as exc:
            RunnerConfig(backoff_factor=0)
        assert exc.value.field == "backoff_factor"

    def test_negative_retries(self):
        with pytest.raises(ConfigError):
            RunnerConfig(retries=-1)

    def test_nonpositive_timeout(self):
        with pytest.raises(ConfigError):
            RunnerConfig(timeout=0)

    def test_resume_requires_journal(self):
        with pytest.raises(ConfigError):
            RunnerConfig(resume=True)


class TestPool:
    """Process-pool backend: parallel == serial, and real preemption."""

    def test_parallel_bit_identical_to_serial(self):
        jobs = make_jobs()
        serial = ExperimentRunner(RunnerConfig(workers=0)).run(jobs)
        parallel = ExperimentRunner(RunnerConfig(workers=2)).run(jobs)
        assert not parallel.failures
        for job in jobs:
            a = serial.result(job.key)
            b = parallel.result(job.key)
            assert a.to_dict() == b.to_dict(), job.key

    def test_crash_classified_in_pool(self):
        jobs = [
            JobSpec(trace=TRACE, l1d="berti", scale=SCALE),
            JobSpec(trace=TRACE2, l1d="berti", scale=SCALE,
                    fault=FaultSpec(kind="crash", period=3)),
        ]
        suite = ExperimentRunner(RunnerConfig(workers=2, retries=0)).run(jobs)
        assert len(suite.completed) == 1
        [failed] = suite.failures
        assert failed.kind == "crash"
        assert failed.context["trace"] == TRACE2

    def test_hang_times_out_and_survivors_unaffected(self):
        jobs = [
            JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE),
            JobSpec(trace=TRACE2, l1d="ip_stride", scale=SCALE,
                    fault=FaultSpec(kind="hang", hang_seconds=120.0)),
        ]
        cfg = RunnerConfig(workers=2, timeout=1.5, retries=1)
        suite = ExperimentRunner(cfg).run(jobs)
        [failed] = suite.failures
        assert failed.kind == "timeout"
        assert failed.error_type == "JobTimeout"
        assert failed.attempts == 1  # timeouts not retried by default

        clean = ExperimentRunner(RunnerConfig(workers=0)).run([jobs[0]])
        assert (suite.result(jobs[0].key).to_dict()
                == clean.result(jobs[0].key).to_dict())


class TestJournal:
    def test_resume_runs_exactly_the_missing_jobs(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        jobs = make_jobs()

        # Interrupt after k=2 of n=4 jobs: only the first two ran.
        first = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal)
        ).run(jobs[:2])
        assert len(first.completed) == 2
        assert len(journal.read_text().splitlines()) == 2

        executed = []

        def counting_run_fn(job, attempt):
            executed.append(job.key)
            from repro.runner.worker import run_job
            return run_job(job, attempt)

        resumed = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal, resume=True)
        ).run(jobs, run_fn=counting_run_fn)

        # Exactly n - k jobs executed; the rest replayed from disk.
        assert executed == [j.key for j in jobs[2:]]
        assert len(resumed.completed) == 4
        assert sum(o.from_journal for o in resumed.completed) == 2

        # The final table is identical to an uninterrupted run.
        clean = ExperimentRunner(RunnerConfig(workers=0)).run(jobs)
        for job in jobs:
            assert (resumed.result(job.key).to_dict()
                    == clean.result(job.key).to_dict()), job.key

    def test_failed_jobs_are_rerun_on_resume(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        job = JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE,
                      fault=FaultSpec(kind="flaky", fail_attempts=1))
        cfg = RunnerConfig(workers=0, retries=0, journal_path=journal)
        first = ExperimentRunner(cfg).run([job])
        assert first.failures

        # Second invocation (attempt numbering restarts): flaky now passes.
        cfg2 = RunnerConfig(workers=0, retries=1, backoff_base=0.01,
                            journal_path=journal, resume=True)
        second = ExperimentRunner(cfg2).run([job])
        assert second.completed and not second.completed[0].from_journal

    def test_corrupt_lines_skipped(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        good = {"key": "a", "status": "ok", "result": 7}
        journal.write_text(
            json.dumps(good) + "\n" + '{"key": "b", "status"' + "\n"
        )
        records = Journal(journal).load()
        assert records == {"a": good}

    def test_last_record_wins(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        journal.write_text(
            json.dumps({"key": "a", "status": "failed", "kind": "crash",
                        "error_type": "X", "message": "m"}) + "\n"
            + json.dumps({"key": "a", "status": "ok", "result": 1}) + "\n"
        )
        assert Journal(journal).load()["a"]["status"] == "ok"

    def test_journal_round_trips_sim_results(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        jobs = make_jobs(traces=(TRACE,))
        run = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal)
        ).run(jobs)
        replayed = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal, resume=True)
        ).run(jobs, run_fn=lambda j, a: pytest.fail("should not re-run"))
        for job in jobs:
            assert (replayed.result(job.key).to_dict()
                    == run.result(job.key).to_dict())


class TestJournalDurability:
    """PR 3 hardening: appends are write-temp-then-rename atomic, and a
    journal torn mid-line by a crash is healed by the next append."""

    def _completed(self, key, result=7):
        from repro.runner.jobs import CompletedRun
        return CompletedRun(key=key, result=result)

    def test_append_heals_truncated_tail(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        good = json.dumps({"key": "a", "status": "ok", "result": 1})
        # A crash mid-write left a torn final line with no newline.
        journal.write_text(good + "\n" + '{"key": "b", "status": "o')

        Journal(journal).append(self._completed("c"))

        lines = journal.read_text().splitlines()
        assert lines[0] == good  # prior record preserved byte-identically
        records = Journal(journal).load()
        assert records["a"]["result"] == 1
        assert records["c"]["status"] == "ok"
        assert "b" not in records  # torn record stays dead, not resurrected

    def test_append_to_missing_file_creates_parents(self, tmp_path):
        journal = tmp_path / "deep" / "nested" / "suite.jsonl"
        Journal(journal).append(self._completed("a"))
        assert Journal(journal).load()["a"]["status"] == "ok"

    def test_no_temp_files_left_behind(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        j = Journal(journal)
        for i in range(5):
            j.append(self._completed(f"job{i}"))
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".journal-")]
        assert leftovers == []
        assert len(j.load()) == 5

    def test_appends_preserve_existing_records_bytewise(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        j = Journal(journal)
        j.append(self._completed("a", result=1))
        first_bytes = journal.read_bytes()
        j.append(self._completed("b", result=2))
        assert journal.read_bytes().startswith(first_bytes)


class TestJournalSchemaV2:
    """PR 4: records carry attempt / elapsed_seconds / worker_pid;
    version-1 journals still resume (fields default)."""

    def test_new_records_carry_v2_fields(self, tmp_path):
        import os

        journal = tmp_path / "suite.jsonl"
        jobs = make_jobs(traces=(TRACE,), prefetchers=("ip_stride",))
        ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal)
        ).run(jobs)
        [rec] = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert rec["schema"] >= 2   # v3 keeps every v2 field
        assert rec["attempt"] == 1
        assert rec["elapsed_seconds"] > 0
        assert rec["worker_pid"] == os.getpid()  # inline = this process

    def test_pool_records_tag_the_worker_pid(self, tmp_path):
        import os

        journal = tmp_path / "suite.jsonl"
        jobs = make_jobs(traces=(TRACE,), prefetchers=("ip_stride",))
        suite = ExperimentRunner(
            RunnerConfig(workers=1, journal_path=journal)
        ).run(jobs)
        [done] = suite.completed
        assert done.worker_pid is not None
        assert done.worker_pid != os.getpid()  # ran in a pool worker
        [rec] = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert rec["worker_pid"] == done.worker_pid

    def test_v1_journal_still_resumes(self, tmp_path):
        """A journal written before the schema bump (no ``schema`` field,
        ``attempts``/``elapsed`` names, no ``worker_pid``) must replay."""
        journal = tmp_path / "suite.jsonl"
        jobs = make_jobs(traces=(TRACE,), prefetchers=("ip_stride",))
        reference = ExperimentRunner(RunnerConfig(workers=0)).run(jobs)

        v1 = {
            "key": jobs[0].key,
            "status": "ok",
            "attempts": 3,
            "elapsed": 1.25,
            "result": reference.completed[0].result.to_dict(),
        }
        journal.write_text(json.dumps(v1) + "\n")

        resumed = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal, resume=True)
        ).run(jobs, run_fn=lambda j, a: pytest.fail("must replay, not run"))
        [done] = resumed.completed
        assert done.from_journal
        assert done.attempts == 3       # migrated from "attempts"
        assert done.elapsed == 1.25     # migrated from "elapsed"
        assert done.worker_pid is None  # absent in v1: defaults
        assert done.result.to_dict() == v1["result"]

    def test_decode_quarantined_record(self):
        from repro.runner import QuarantinedRun

        rec = {"schema": 2, "key": "k", "status": "quarantined",
               "group": "t|pf", "failures": 3, "message": ""}
        q = Journal.decode_quarantined(rec)
        assert isinstance(q, QuarantinedRun)
        assert q.group == "t|pf" and q.failures == 3 and not q.ok
        assert Journal.decode_quarantined({"status": "ok", "key": "k"}) is None


class TestSuiteHelpers:
    def test_per_trace_results_groups_survivors(self):
        jobs = make_jobs()
        suite = ExperimentRunner(RunnerConfig(workers=0)).run(jobs)
        grouped = per_trace_results(jobs, suite)
        assert set(grouped) == {TRACE, TRACE2}
        assert set(grouped[TRACE]) == {"ip_stride", "berti"}

    def test_banner_mixed_failures(self):
        jobs = [
            JobSpec(trace=TRACE, l1d="ip_stride", scale=SCALE),
            JobSpec(trace=TRACE2, l1d="ip_stride", scale=SCALE,
                    fault=FaultSpec(kind="crash")),
        ]
        suite = ExperimentRunner(RunnerConfig(workers=0, retries=0)).run(jobs)
        assert suite.banner() == "1/2 jobs completed (1 crash)"


class TestJournalSchemaV3:
    """PR 6: schema 3 adds *optional* lease provenance (``lease_id``,
    ``lineage``) for campaign-service executions.  Direct runs keep
    writing v2-shaped lines, and v1/v2 journals still replay."""

    def test_direct_runs_keep_the_v2_line_shape(self, tmp_path):
        journal = tmp_path / "suite.jsonl"
        jobs = make_jobs(traces=(TRACE,), prefetchers=("ip_stride",))
        ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal)
        ).run(jobs)
        [rec] = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert rec["schema"] == 3
        # No lease was involved: the provenance fields must be absent,
        # not null — the line shape is exactly what v2 wrote.
        assert "lease_id" not in rec
        assert "lineage" not in rec

    def test_lease_provenance_roundtrips(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        lineage = [{"event": "grant", "lease_id": "L1-1", "attempt": 1},
                   {"event": "ok", "lease_id": "L1-1"}]
        journal.append(CompletedRun(key="k", result={"cycles": 1},
                                    lease_id="L1-1", lineage=lineage))
        rec = journal.load()["k"]
        assert rec["schema"] == 3
        assert rec["lease_id"] == "L1-1"
        assert rec["lineage"] == lineage
        done = Journal.decode_completed(rec)
        assert done.from_journal
        assert done.lease_id == "L1-1"
        assert done.lineage == lineage

    def test_failed_run_provenance_is_encoded_too(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(FailedRun(
            key="k", kind="timeout", error_type="LeaseExpired",
            message="lease lost", lease_id="L2-3",
            lineage=[{"event": "expired", "lease_id": "L2-3"}],
        ))
        rec = journal.load()["k"]
        assert rec["status"] == "failed"
        assert rec["lease_id"] == "L2-3"
        assert rec["lineage"] == [{"event": "expired", "lease_id": "L2-3"}]

    def test_v2_journal_resumes_with_default_provenance(self, tmp_path):
        jobs = make_jobs(traces=(TRACE,), prefetchers=("ip_stride",))
        reference = ExperimentRunner(RunnerConfig(workers=0)).run(jobs)
        v2 = {
            "schema": 2, "key": jobs[0].key, "status": "ok",
            "attempt": 2, "elapsed_seconds": 0.5, "worker_pid": 77,
            "result": reference.completed[0].result.to_dict(),
        }
        journal = tmp_path / "suite.jsonl"
        journal.write_text(json.dumps(v2) + "\n")
        resumed = ExperimentRunner(
            RunnerConfig(workers=0, journal_path=journal, resume=True)
        ).run(jobs, run_fn=lambda j, a: pytest.fail("must replay, not run"))
        [done] = resumed.completed
        assert done.from_journal
        assert done.attempts == 2 and done.worker_pid == 77
        assert done.lease_id is None    # absent in v2: defaults
        assert done.lineage == []


class TestJournalTornTail:
    """A journal truncated at *any* byte of its final record must load
    cleanly (the intact prefix wins) and heal on the next append."""

    def _journal_bytes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(CompletedRun(key="a", result={"cycles": 1}))
        journal.append(CompletedRun(key="b", result={"cycles": 2}))
        return path, path.read_bytes()

    def test_load_survives_truncation_at_every_offset(self, tmp_path):
        path, raw = self._journal_bytes(tmp_path)
        tail_start = raw.rindex(b"\n", 0, len(raw) - 1) + 1
        for cut in range(tail_start, len(raw)):
            path.write_bytes(raw[:cut])
            records = Journal(path).load()
            if cut == len(raw) - 1:
                # Only the newline is torn: the record itself is whole.
                assert set(records) == {"a", "b"}, f"cut at byte {cut}"
            else:
                assert set(records) == {"a"}, f"cut at byte {cut}"

    def test_append_after_truncation_heals_the_tail(self, tmp_path):
        path, raw = self._journal_bytes(tmp_path)
        path.write_bytes(raw[:-7])  # tear the final record mid-JSON
        Journal(path).append(CompletedRun(key="c", result={"cycles": 3}))
        records = Journal(path).load()
        assert set(records) == {"a", "c"}  # the torn "b" line is skipped
        # The heal terminated the torn bytes with a newline, so every
        # subsequent line starts clean and the new record parses.
        lines = path.read_text().splitlines()
        assert json.loads(lines[-1])["key"] == "c"
