"""Write-ahead service journal: the daemon's single source of truth.

Every state transition the campaign scheduler makes — a submission
accepted, a lease granted, a lease expired, a result recorded, a
cancellation, a daemon (re)start — is appended to this log *before* the
in-memory state changes, flushed and fsync'd, so a SIGKILL at any byte
offset loses at most the record being written.  On restart the daemon
replays the log and reconstructs its full queue and in-flight state
bit-identically.

Frame format (one JSON object per line)::

    {"seq": 7, "crc": 3735928559, "rec": {"type": "lease", ...}}

``crc`` is the CRC32 of the canonical JSON encoding of ``rec`` (sorted
keys, no whitespace), so a torn or bit-flipped record is detected on
replay.  ``seq`` is strictly monotonic; a gap or repeat means the log
was edited or interleaved and replay refuses it.

Failure handling on replay:

* a malformed / CRC-mismatched **final** line is the classic torn tail
  of a mid-append kill — it is healed (the file is truncated back to
  the last good record) and replay proceeds;
* a malformed record **before** the tail means real corruption and
  raises a typed :class:`~repro.errors.ServiceError` — the daemon must
  not guess at history.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ServiceError

__all__ = ["ServiceWAL", "canonical_json", "crc32_of"]


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, pure ASCII."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def crc32_of(payload: Any) -> int:
    """CRC32 over the canonical JSON encoding of ``payload``."""
    return zlib.crc32(canonical_json(payload).encode("ascii")) & 0xFFFFFFFF


class ServiceWAL:
    """Append-only, fsync'd, torn-tail-healing record log.

    ``append`` keeps the file descriptor open across calls (the daemon
    appends on every state transition); ``replay`` is called once at
    startup, before the first append, and heals a torn tail in place.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None
        self._seq = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, rec: Dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number."""
        self._seq += 1
        frame = canonical_json(
            {"seq": self._seq, "crc": crc32_of(rec), "rec": rec}
        )
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        self._fh.write(frame.encode("ascii") + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        return self._seq

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    # ------------------------------------------------------------------
    # Replay + healing
    # ------------------------------------------------------------------

    def replay(self) -> List[Dict[str, Any]]:
        """Parse the log, heal a torn tail, return the record payloads.

        After replay the internal sequence counter continues from the
        last good record, so appends from a resumed daemon extend the
        same monotonic history.
        """
        if self._fh is not None:
            raise ServiceError(
                "replay() must run before the first append", status=500
            )
        if not self.path.exists():
            return []
        try:
            raw = self.path.read_bytes()
        except OSError as exc:
            raise ServiceError(
                f"cannot read service journal {self.path}: {exc}",
                status=500,
            ) from exc
        records: List[Dict[str, Any]] = []
        good_end = 0   # byte offset just past the last verified record
        offset = 0
        last_seq = 0
        while offset < len(raw):
            nl = raw.find(b"\n", offset)
            line = raw[offset:(nl if nl >= 0 else len(raw))]
            at_tail = nl < 0 or nl == len(raw) - 1 or not raw[nl + 1:].strip()
            frame = self._decode_frame(line, last_seq)
            if frame is None:
                if at_tail:
                    break  # torn tail: heal below, keep everything before
                raise ServiceError(
                    f"service journal corrupt before EOF at byte {offset} "
                    f"of {self.path} ({line[:60]!r}); refusing to guess "
                    f"at campaign history", status=500,
                )
            records.append(frame["rec"])
            last_seq = frame["seq"]
            good_end = (nl + 1) if nl >= 0 else len(raw)
            if nl < 0:
                break
            offset = nl + 1
        if good_end < len(raw):
            # Heal: truncate the torn bytes so the next append starts a
            # clean line (the lost record's transition never happened as
            # far as durable state is concerned — exactly the contract).
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
        self._seq = last_seq
        return records

    @staticmethod
    def _decode_frame(line: bytes, last_seq: int) -> Optional[Dict]:
        """One verified frame, or ``None`` for torn/corrupt bytes."""
        if not line.strip():
            return None
        try:
            frame = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(frame, dict) or not isinstance(frame.get("rec"),
                                                         dict):
            return None
        if frame.get("crc") != crc32_of(frame["rec"]):
            return None
        seq = frame.get("seq")
        if not isinstance(seq, int) or seq != last_seq + 1:
            return None
        return frame
