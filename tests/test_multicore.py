"""Tests for the multi-core simulator."""

import pytest

from repro.prefetchers.registry import make_prefetcher
from repro.simulator.multicore import simulate_multicore, weighted_speedup
from repro.workloads.synthetic import (
    make_trace,
    pattern_stream,
    pointer_chase,
    strided_stream,
)


def small_traces(n=2):
    traces = []
    for k in range(n):
        parts = [
            strided_stream(0x400 + k, 0x1000000 * (k + 1), 2, 1200, gap=22,
                           region_lines=4096),
            # Dependent alternating-stride chain: IP-stride never gains
            # confidence on it, Berti covers it with local deltas.
            pattern_stream(0x500 + k, 0x2000000 * (k + 1), [1, 2], 1200,
                           gap=22, dep=1, region_lines=4096),
        ]
        traces.append(make_trace(f"core{k}", parts))
    return traces


@pytest.fixture(scope="module")
def duo_results():
    traces = small_traces(2)
    return traces, simulate_multicore(traces)


class TestBasics:
    def test_one_result_per_core(self, duo_results):
        traces, results = duo_results
        assert len(results) == 2
        assert [r.trace_name for r in results] == ["core0", "core1"]

    def test_all_cores_measured(self, duo_results):
        __, results = duo_results
        assert all(r.instructions > 0 and r.cycles > 0 for r in results)

    def test_deterministic(self):
        traces = small_traces(2)
        a = simulate_multicore(traces)
        b = simulate_multicore(traces)
        assert [r.ipc for r in a] == [r.ipc for r in b]


class TestSharing:
    def test_contention_slows_cores_down(self):
        traces = small_traces(4)
        solo = simulate_multicore(traces[:1])[0]
        together = simulate_multicore(traces)
        same = together[0]
        # Same trace, shared DRAM with three contenders: no faster.
        assert same.ipc <= solo.ipc * 1.05

    def test_per_core_prefetchers(self):
        traces = small_traces(2)
        results = simulate_multicore(
            traces,
            [make_prefetcher("berti"), make_prefetcher("ip_stride")],
        )
        assert results[0].prefetcher_l1d == "berti"
        assert results[1].prefetcher_l1d == "ip_stride"

    def test_prefetching_helps_under_contention(self):
        traces = small_traces(2)
        base = simulate_multicore(traces)  # no prefetching
        berti = simulate_multicore(
            traces, [make_prefetcher("berti") for _ in traces]
        )
        assert weighted_speedup(berti, base) > 1.5


class TestWeightedSpeedup:
    def test_identity(self, duo_results):
        __, results = duo_results
        assert weighted_speedup(results, results) == pytest.approx(1.0)

    def test_empty(self):
        assert weighted_speedup([], []) == 0.0
