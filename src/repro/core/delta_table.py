"""Berti's table of deltas (paper §III-C, Figures 5 and 6) — kernelized.

A 16-entry fully-associative FIFO cache tagged by a 10-bit hash of the
IP.  Each entry holds a 4-bit search counter and an array of 16 deltas,
each with a 4-bit coverage counter and a 2-bit status:

* ``L1D_PREF``      — coverage crossed the high watermark (65 %): prefetch
  and fill up to the L1D (when the L1D MSHR is below its watermark).
* ``L2_PREF``       — coverage between the medium (35 %) and high
  watermarks: prefetch, fill up to L2.
* ``L2_PREF_REPL``  — same as ``L2_PREF`` but the coverage was below 50 %,
  so the slot is an eviction candidate for newly seen deltas.
* ``NO_PREF``       — low coverage: keep learning, do not prefetch.

Statuses are assigned when the search counter overflows (16 searches);
the counter and coverages are then reset and a new learning phase begins.
While the first phase is still warming up, deltas are used for L1D
prefetching with a stricter 80 % watermark once at least eight searches
have been gathered.

Kernel layout.  Entries are parallel preallocated lists (no per-slot
objects): coverage is maintained *incrementally* by running counters on
the per-entry slot lists, and every read-side product is cached with
dirty-bit invalidation —

* ``_pf_cache`` memoises the warmed-up selected-delta list (invalidated
  only at phase close and on the rare eviction of a prefetching slot),
* ``_warm_cache`` memoises the warmup selection (invalidated whenever
  the entry's counter or slots change, i.e. on each ``record_search``
  that touches the entry),
* ``_evict_heap`` keeps the replacement-candidate slots as a lazy
  min-heap of ``(coverage, slot)`` pairs — lexicographic order is
  exactly the reference scan's lowest-coverage-first-occurrence victim
  rule.  Entries go stale when a slot's coverage moves (a fresh pair is
  pushed; the old one is discarded on pop against the live columns), and
  the heap is rebuilt at phase close, the only time statuses change.
  This matters because irregular traces (graph kernels) present mostly
  *unseen* deltas: nearly every timely delta needs a victim, and the
  reference rescans all 16 slots each time,

so :meth:`prefetch_deltas` — called on **every** L1D access — is a dict
probe plus a list return on the common path, and a victim election on
the training path is a heap pop.  Slots fill densely from index 0 (the
victim scan prefers the first empty slot and slots never empty
mid-lifetime), so slot validity is a single ``_slot_count`` per entry
rather than a flag per slot.

The original object-per-slot implementation is preserved as
:class:`~repro.core.reference_tables.ReferenceDeltaTable` and drives the
differential lockstep oracle; both produce bit-identical results.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Optional, Tuple

from repro.core.config import BertiConfig

NO_PREF = 0
L1D_PREF = 1
L2_PREF = 2
L2_PREF_REPL = 3

STATUS_NAMES = {
    NO_PREF: "no_pref",
    L1D_PREF: "l1d_pref",
    L2_PREF: "l2_pref",
    L2_PREF_REPL: "l2_pref_repl",
}


class DeltaTable:
    """Per-IP delta coverage accumulation and prefetch-status selection."""

    def __init__(self, config: BertiConfig | None = None) -> None:
        self.config = config or BertiConfig()
        cfg = self.config
        entries = cfg.delta_table_entries
        per_entry = cfg.deltas_per_entry
        # Entry-level columns.
        self._valid = [False] * entries
        self._tags = [0] * entries
        self._counters = [0] * entries
        self._orders = [0] * entries
        self._warmed = [False] * entries
        # Slot-level columns: per-entry parallel lists, preallocated.
        # Valid slots are the dense prefix [0, _slot_count).
        self._slot_count = [0] * entries
        self._slot_delta = [[0] * per_entry for _ in range(entries)]
        self._slot_cov = [[0] * per_entry for _ in range(entries)]
        self._slot_status = [[NO_PREF] * per_entry for _ in range(entries)]
        # Per-entry indices and caches.
        self._by_delta: List[dict] = [{} for _ in range(entries)]
        self._pf_cache: List[Optional[List[Tuple[int, int]]]] = [None] * entries
        self._warm_cache: List[Optional[List[Tuple[int, int]]]] = [None] * entries
        # Lazy victim heaps: (coverage, slot) pairs for every slot whose
        # status allows replacement.  May hold stale pairs; pops validate
        # against the live columns.  Invariant: the *current* pair of
        # every replacement-candidate slot is present.
        self._evict_heap: List[List[Tuple[int, int]]] = [
            [] for _ in range(entries)
        ]
        self._by_tag: dict = {}  # tag -> entry index, for O(1) lookup
        self._fifo_clock = 0
        self._fifo_ptr = 0
        self._tag_mask = (1 << cfg.delta_tag_bits) - 1
        self._coverage_cap = (1 << cfg.coverage_bits) - 1
        self.phase_completions = 0
        self.discarded_deltas = 0

    # ------------------------------------------------------------------

    def _tag_of(self, ip: int) -> int:
        """10-bit IP hash (folded XOR, cheap in hardware)."""
        h = ip
        h ^= h >> 10
        h ^= h >> 20
        return h & self._tag_mask

    def _allocate(self, tag: int) -> int:
        # FIFO replacement: a circular pointer over the entries.
        victim = self._fifo_ptr
        self._fifo_ptr = (victim + 1) % len(self._valid)
        if self._valid[victim]:
            self._by_tag.pop(self._tags[victim], None)
        self._fifo_clock += 1
        self._valid[victim] = True
        self._tags[victim] = tag
        self._counters[victim] = 0
        self._orders[victim] = self._fifo_clock
        self._warmed[victim] = False
        self._slot_count[victim] = 0
        deltas = self._slot_delta[victim]
        covs = self._slot_cov[victim]
        statuses = self._slot_status[victim]
        for i in range(len(deltas)):
            deltas[i] = 0
            covs[i] = 0
            statuses[i] = NO_PREF
        self._by_delta[victim].clear()
        self._pf_cache[victim] = None
        self._warm_cache[victim] = None
        del self._evict_heap[victim][:]
        self._by_tag[tag] = victim
        return victim

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def record_search(self, ip: int, timely_deltas: List[int]) -> None:
        """Accumulate one history-search result for ``ip``.

        Bumps the entry's search counter, increments coverage of each
        timely delta (inserting unseen deltas when an evictable slot
        exists), and closes the learning phase when the counter overflows.
        """
        cfg = self.config
        tag = self._tag_of(ip)
        e = self._by_tag.get(tag)
        if e is None:
            e = self._allocate(tag)

        counter = self._counters[e] + 1
        self._counters[e] = counter
        # The warmup selection depends on the counter (threshold) and on
        # every slot this loop may touch: invalidate unconditionally.
        self._warm_cache[e] = None
        if timely_deltas:
            coverage_cap = self._coverage_cap
            by_delta = self._by_delta[e]
            deltas = self._slot_delta[e]
            covs = self._slot_cov[e]
            statuses = self._slot_status[e]
            per_entry = cfg.deltas_per_entry
            heap = self._evict_heap[e]
            count = self._slot_count[e]
            for delta in timely_deltas:
                s = by_delta.get(delta)
                if s is not None:
                    c = covs[s]
                    if c < coverage_cap:
                        covs[s] = c + 1
                        st = statuses[s]
                        if st == NO_PREF or st == L2_PREF_REPL:
                            # Keep the heap's view of this candidate
                            # current; the (c, s) pair goes stale.
                            heappush(heap, (c + 1, s))
                    continue
                if count < per_entry:
                    # First empty slot in slot order == the dense tail.
                    s = count
                    count += 1
                    self._slot_count[e] = count
                else:
                    # Lowest-coverage slot whose status allows
                    # replacement; ties keep the first occurrence — the
                    # reference's min() semantics, i.e. the lexicographic
                    # minimum over (coverage, slot), i.e. the heap order.
                    # Pairs that no longer match the live columns are
                    # stale leftovers: discard and keep popping.
                    s = -1
                    while heap:
                        c, i = heappop(heap)
                        st = statuses[i]
                        if covs[i] == c and (
                            st == NO_PREF or st == L2_PREF_REPL
                        ):
                            s = i
                            break
                    if s < 0:
                        self.discarded_deltas += 1
                        continue
                    del by_delta[deltas[s]]
                    if statuses[s] != NO_PREF:
                        # Evicting a prefetching (L2_PREF_REPL) slot
                        # changes the selected set for warmed-up entries.
                        self._pf_cache[e] = None
                deltas[s] = delta
                covs[s] = 1
                statuses[s] = NO_PREF
                by_delta[delta] = s
                heappush(heap, (1, s))

        if counter >= cfg.counter_max:
            self._close_phase(e)

    def _close_phase(self, e: int) -> None:
        """Counter overflowed: assign statuses, reset for the next phase."""
        cfg = self.config
        self.phase_completions += 1
        high = cfg.high_watermark * cfg.counter_max
        medium = cfg.medium_watermark * cfg.counter_max
        repl = cfg.repl_watermark * cfg.counter_max

        count = self._slot_count[e]
        covs = self._slot_cov[e]
        statuses = self._slot_status[e]
        promoted = 0
        max_prefetch = cfg.max_prefetch_deltas
        # Consider highest-coverage deltas first so the 12-delta bound
        # keeps the best ones (stable: equal coverages keep slot order).
        for i in sorted(range(count), key=covs.__getitem__, reverse=True):
            coverage = covs[i]
            if coverage > high and promoted < max_prefetch:
                statuses[i] = L1D_PREF
                promoted += 1
            elif coverage > medium and promoted < max_prefetch:
                statuses[i] = L2_PREF_REPL if coverage < repl else L2_PREF
                promoted += 1
            else:
                statuses[i] = NO_PREF
            covs[i] = 0
        self._counters[e] = 0
        self._warmed[e] = True
        self._pf_cache[e] = None   # statuses changed: recompute lazily
        self._warm_cache[e] = None
        # Rebuild the victim heap: statuses changed and every coverage is
        # back to zero.  Ascending slot index with equal coverages is
        # already heap-ordered, so no heapify is needed.
        heap = self._evict_heap[e]
        del heap[:]
        for i in range(count):
            st = statuses[i]
            if st == NO_PREF or st == L2_PREF_REPL:
                heap.append((0, i))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def prefetch_deltas(self, ip: int) -> List[Tuple[int, int]]:
        """Deltas to prefetch for ``ip`` as ``(delta, status)`` pairs.

        After the first completed phase this returns the stored statuses.
        During warmup (no phase completed yet) it applies the stricter
        80 % watermark once ``warmup_min_searches`` searches have been
        gathered, returning those deltas as ``L1D_PREF``.

        This runs on every L1D access; both branches return a memoised
        list (callers must not mutate it).
        """
        e = self._by_tag.get(self._tag_of(ip))
        if e is None:
            return []
        cfg = self.config
        if self._warmed[e]:
            selected = self._pf_cache[e]
            if selected is None:
                count = self._slot_count[e]
                deltas = self._slot_delta[e]
                statuses = self._slot_status[e]
                selected = [
                    (deltas[i], statuses[i])
                    for i in range(count)
                    if statuses[i] != NO_PREF
                ]
                # High-coverage deltas first: under PQ pressure the queue
                # sheds the low-coverage tail, not the best predictions.
                selected.sort(key=lambda ds: ds[1] != L1D_PREF)
                selected = selected[: cfg.max_prefetch_deltas]
                self._pf_cache[e] = selected
            return selected
        counter = self._counters[e]
        if counter < cfg.warmup_min_searches:
            return []
        selected = self._warm_cache[e]
        if selected is None:
            threshold = cfg.warmup_watermark * counter
            count = self._slot_count[e]
            deltas = self._slot_delta[e]
            covs = self._slot_cov[e]
            selected = [
                (deltas[i], L1D_PREF)
                for i in range(count)
                if covs[i] >= threshold
            ][: cfg.max_prefetch_deltas]
            self._warm_cache[e] = selected
        return selected

    def entry_snapshot(self, ip: int) -> List[Tuple[int, int, int]]:
        """(delta, coverage, status) triples for inspection/tests."""
        e = self._by_tag.get(self._tag_of(ip))
        if e is None:
            return []
        count = self._slot_count[e]
        deltas = self._slot_delta[e]
        covs = self._slot_cov[e]
        statuses = self._slot_status[e]
        return [(deltas[i], covs[i], statuses[i]) for i in range(count)]

    def reset(self) -> None:
        cfg = self.config
        entries = cfg.delta_table_entries
        per_entry = cfg.deltas_per_entry
        self._valid = [False] * entries
        self._tags = [0] * entries
        self._counters = [0] * entries
        self._orders = [0] * entries
        self._warmed = [False] * entries
        self._slot_count = [0] * entries
        self._slot_delta = [[0] * per_entry for _ in range(entries)]
        self._slot_cov = [[0] * per_entry for _ in range(entries)]
        self._slot_status = [[NO_PREF] * per_entry for _ in range(entries)]
        self._by_delta = [{} for _ in range(entries)]
        self._pf_cache = [None] * entries
        self._warm_cache = [None] * entries
        self._evict_heap = [[] for _ in range(entries)]
        self._by_tag = {}
        self._fifo_clock = 0
        self._fifo_ptr = 0
        self.phase_completions = 0
        self.discarded_deltas = 0

    def __getstate__(self):
        # Canonicalise for backend-independent snapshot bytes: the two
        # lookup indexes are keyed-access only (their dict order is never
        # iterated), and the two memo caches are recomputed on demand —
        # the native importer rebuilds the former in slot-scan order and
        # drops the latter, so a classic-engine snapshot must match.
        state = self.__dict__.copy()
        state["_by_tag"] = dict(sorted(self._by_tag.items()))
        state["_by_delta"] = [dict(sorted(d.items())) for d in self._by_delta]
        state["_pf_cache"] = [None] * len(self._pf_cache)
        state["_warm_cache"] = [None] * len(self._warm_cache)
        return state
