"""Differential lockstep oracle tests.

The reference engine (pure virtual dispatch, no memoised fast paths)
must be bit-identical to the optimized engine on every access; a seeded
divergence must be localized to the exact access index.
"""

import pytest

from repro.prefetchers.base import NoPrefetcher
from repro.prefetchers.registry import make_prefetcher
from repro.sanitizer.lockstep import (
    lockstep_multicore,
    lockstep_run,
    quick_trace,
)
from repro.sanitizer.reference import (
    ReferenceCache,
    ReferenceMSHR,
    ReferenceNoPrefetcher,
    is_reference,
    to_reference,
)
from repro.simulator.engine import build_hierarchy, simulate


# A representative subset; the full registry sweep is `repro sancheck
# --quick` (exercised by the CI sanitize-smoke job).
L1D_SUBSET = ["none", "berti", "bop", "streamer"]


class TestLockstepAgreement:
    @pytest.mark.parametrize("l1d", L1D_SUBSET)
    def test_l1d_prefetchers_bit_identical(self, l1d):
        report = lockstep_run(quick_trace(900), l1d=l1d)
        assert report.ok, report.describe()
        assert report.diverged_at is None
        assert report.accesses == 900

    def test_l2_prefetcher_bit_identical(self):
        report = lockstep_run(quick_trace(900), l1d="berti", l2="spp")
        assert report.ok, report.describe()

    def test_multicore_bit_identical(self):
        traces = [quick_trace(500, "mix0"), quick_trace(500, "mix1")]
        report = lockstep_multicore(traces, ["berti", "none"])
        assert report.ok, report.describe()


class TestDivergenceLocalisation:
    def test_seeded_divergence_found_at_exact_access(self):
        report = lockstep_run(
            quick_trace(900), l1d="berti", seed_divergence=417
        )
        assert not report.ok
        assert report.diverged_at == 417
        assert report.field == "latency"
        assert report.optimized != report.reference
        assert "417" in report.describe()

    def test_divergence_at_first_access(self):
        report = lockstep_run(quick_trace(300), seed_divergence=0)
        assert not report.ok and report.diverged_at == 0


class TestReferenceEngine:
    def _hierarchy(self, l1d="none"):
        from repro.simulator.config import default_config

        return build_hierarchy(
            default_config(), l1d_prefetcher=make_prefetcher(l1d)
        )

    def test_to_reference_rewrites_components(self):
        h = to_reference(self._hierarchy())
        assert is_reference(h)
        assert type(h.l1d) is ReferenceCache
        assert type(h.l1d_mshr) is ReferenceMSHR
        assert type(h.l1d_prefetcher) is ReferenceNoPrefetcher
        # Memoised fast paths are nulled → virtual dispatch everywhere.
        assert h.l1d._lru is None and h.l1d._srrip_hit is None

    def test_to_reference_idempotent(self):
        h = to_reference(self._hierarchy())
        before = {n: type(getattr(h, n)) for n in
                  ("l1d", "l2", "llc", "l1d_mshr", "l2_mshr", "llc_mshr",
                   "pq", "l1d_prefetcher")}
        h2 = to_reference(h)  # second application must be a no-op
        assert h2 is h
        after = {n: type(getattr(h, n)) for n in before}
        assert after == before

    def test_real_prefetcher_kept(self):
        h = to_reference(self._hierarchy("berti"))
        # Only the *stock* NoPrefetcher is substituted; a real prefetcher
        # keeps its class (it has no fast-path twin to disable).
        assert not isinstance(h.l1d_prefetcher, NoPrefetcher)

    def test_reference_simulate_matches_optimized(self):
        trace = quick_trace(900)
        opt = simulate(trace, l1d_prefetcher=make_prefetcher("berti"))
        ref = simulate(trace, l1d_prefetcher=make_prefetcher("berti"),
                       post_build=to_reference)
        assert opt.to_dict() == ref.to_dict()


class TestQuickTrace:
    def test_deterministic(self):
        a, b = quick_trace(600), quick_trace(600)
        assert list(a) == list(b)
        assert len(a) == 600

    def test_mixes_reads_and_writes(self):
        t = quick_trace(600)
        writes = sum(1 for rec in t if rec[2])
        assert 0 < writes < len(t)
