"""Cache replacement policies.

The paper's baseline system (Table II) uses SRRIP at the L2 and DRRIP at
the LLC; the L1D uses LRU, and the Berti hardware tables use FIFO.  All
policies share a small per-set interface so :class:`repro.memory.cache.Cache`
can be configured with any of them.

A policy instance manages *one* cache (all sets).  The cache calls:

* :meth:`ReplacementPolicy.on_fill` when a line is installed,
* :meth:`ReplacementPolicy.on_hit` on a demand/prefetch hit,
* :meth:`ReplacementPolicy.victim` to pick the way to evict among the valid
  ways of a full set.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List


class ReplacementPolicy(ABC):
    """Interface for per-set replacement state."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        self.num_sets = num_sets
        self.num_ways = num_ways

    @abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """Record that ``way`` of ``set_index`` was just filled."""

    @abstractmethod
    def on_hit(self, set_index: int, way: int) -> None:
        """Record a hit on ``way`` of ``set_index``."""

    @abstractmethod
    def victim(self, set_index: int) -> int:
        """Return the way to evict in a full set."""


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used, tracked with a per-set stack position."""

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        # _age[s][w]: higher means more recently used.
        self._age: List[List[int]] = [[0] * num_ways for _ in range(num_sets)]
        self._clock: List[int] = [0] * num_sets

    def on_fill(self, set_index: int, way: int) -> None:
        clock = self._clock[set_index] + 1
        self._clock[set_index] = clock
        self._age[set_index][way] = clock

    def on_hit(self, set_index: int, way: int) -> None:
        clock = self._clock[set_index] + 1
        self._clock[set_index] = clock
        self._age[set_index][way] = clock

    def victim(self, set_index: int) -> int:
        # index(min(...)) runs both steps at C speed and picks the same
        # (first) minimal way as a keyed min over way indices.
        ages = self._age[set_index]
        return ages.index(min(ages))


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the oldest *fill*, ignore hits.

    This is the policy the Berti hardware tables use.
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._order: List[List[int]] = [[0] * num_ways for _ in range(num_sets)]
        self._clock: List[int] = [0] * num_sets

    def on_fill(self, set_index: int, way: int) -> None:
        self._clock[set_index] += 1
        self._order[set_index][way] = self._clock[set_index]

    def on_hit(self, set_index: int, way: int) -> None:
        # FIFO ignores reuse.
        pass

    def victim(self, set_index: int) -> int:
        order = self._order[set_index]
        return order.index(min(order))


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for reproducibility)."""

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, num_ways)
        self._rng = random.Random(seed)

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def on_hit(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.num_ways)


class SRRIPPolicy(ReplacementPolicy):
    """Static re-reference interval prediction (Jaleel et al., ISCA 2010).

    2-bit re-reference prediction values (RRPV).  Fills insert with RRPV
    ``max-1`` (long re-reference), hits promote to 0, victims are lines with
    RRPV == max (aging the set until one exists).
    """

    MAX_RRPV = 3

    def __init__(self, num_sets: int, num_ways: int) -> None:
        super().__init__(num_sets, num_ways)
        self._rrpv: List[List[int]] = [
            [self.MAX_RRPV] * num_ways for _ in range(num_sets)
        ]

    def insertion_rrpv(self, set_index: int) -> int:
        return self.MAX_RRPV - 1

    def on_fill(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.insertion_rrpv(set_index)

    def on_hit(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = 0

    def victim(self, set_index: int) -> int:
        rrpvs = self._rrpv[set_index]
        max_rrpv = self.MAX_RRPV
        while True:
            # list.index finds the same first way at RRPV max as the
            # way-order scan, at C speed; misses dominate eviction, so
            # the aging pass (no candidate yet) is the rare branch.
            try:
                return rrpvs.index(max_rrpv)
            except ValueError:
                for way in range(self.num_ways):
                    rrpvs[way] += 1


class DRRIPPolicy(SRRIPPolicy):
    """Dynamic RRIP: set-duelling between SRRIP and bimodal insertion.

    A few leader sets always use SRRIP insertion, a few always use BRRIP
    (insert at distant re-reference with high probability); a saturating
    PSEL counter selects the winner for follower sets.
    """

    def __init__(self, num_sets: int, num_ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, num_ways)
        self._psel = 512          # 10-bit saturating counter, midpoint
        self._psel_max = 1023
        self._rng = random.Random(seed)
        # Leader sets: every 32nd set alternates between the two teams.
        self._srrip_leaders = {s for s in range(0, num_sets, 32)}
        self._brrip_leaders = {s for s in range(16, num_sets, 32)}

    def _use_brrip(self, set_index: int) -> bool:
        if set_index in self._srrip_leaders:
            return False
        if set_index in self._brrip_leaders:
            return True
        return self._psel > self._psel_max // 2

    def insertion_rrpv(self, set_index: int) -> int:
        if self._use_brrip(set_index):
            # BRRIP: mostly distant (MAX), occasionally long (MAX-1).
            if self._rng.random() < 1.0 / 32.0:
                return self.MAX_RRPV - 1
            return self.MAX_RRPV
        return self.MAX_RRPV - 1

    def on_fill(self, set_index: int, way: int) -> None:
        self._rrpv[set_index][way] = self.insertion_rrpv(set_index)

    def record_miss(self, set_index: int) -> None:
        """Update the duelling counter on a miss to a leader set."""
        if set_index in self._srrip_leaders and self._psel < self._psel_max:
            self._psel += 1
        elif set_index in self._brrip_leaders and self._psel > 0:
            self._psel -= 1


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "drrip": DRRIPPolicy,
}


def make_policy(name: str, num_sets: int, num_ways: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (lru/fifo/random/srrip/drrip)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, num_ways)
