"""Corruption injector: every persisted format vs hostile bytes.

Builds one small, pristine artifact per persisted format — a ``.trc``
trace store, a simulator snapshot, a service WAL, and a result-cache
entry — then applies a deterministic battery of mutations (single-bit
flips spread over the file, truncations at structural and arbitrary
offsets, block splices, and a grown tail) and asserts the reader's
contract on every mutant:

* ``.trc``      → :class:`TraceStoreError` from open or ``verify()``;
* snapshot      → :class:`SnapshotError` from ``load_snapshot``;
* WAL           → :class:`ServiceError`, **or** a healed replay whose
  records are a strict prefix of the original history (torn-tail
  healing is the WAL's documented contract — anything that "heals" to
  a non-prefix is corruption being laundered into history);
* result cache  → :class:`CacheCorruption` from ``get``.

Any other exception type is a **non-typed-error finding** (a raw
``struct.error``/``KeyError`` reaching a client is a bug even when the
bytes are rejected), and a read that returns data is a
**silent-acceptance finding**.  The battery is seeded: the same seed
replays the same mutations, so a finding here is replayable by seed.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import (
    CacheCorruption,
    ServiceError,
    SnapshotError,
)
from repro.memory.tracestore import (
    TraceStoreError,
    load_trace_store,
    write_trace_store,
)

__all__ = ["CorruptionReport", "corruption_matrix"]

FORMATS = ("tracestore", "snapshot", "wal", "resultcache")


@dataclass
class CorruptionReport:
    """Outcome of one full matrix run."""

    checked: int = 0
    rejected: int = 0
    healed: int = 0   # WAL only: torn tail cut back to a clean prefix
    findings: List[Dict[str, Any]] = field(default_factory=list)
    per_format: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "checked": self.checked,
            "rejected": self.rejected,
            "healed": self.healed,
            "findings": self.findings,
            "per_format": self.per_format,
        }


def _sample_trace():
    from repro.workloads.synthetic import pattern_stream
    from repro.workloads.trace import Trace

    t = Trace("fuzz_corruption_probe")
    t.suite = "fuzz"
    t.extend(pattern_stream(0x900000, 0x40000, [1, 3, 1, 3], 96, gap=2))
    return t


def _mutations(data: bytes, rng: Random,
               flips: int) -> List[Tuple[str, bytes]]:
    """The deterministic mutant battery for one pristine blob."""
    out: List[Tuple[str, bytes]] = []
    size = len(data)
    for _ in range(flips):
        pos = rng.randrange(size)
        bit = rng.randrange(8)
        mutant = bytearray(data)
        mutant[pos] ^= 1 << bit
        out.append((f"bitflip@{pos}.{bit}", bytes(mutant)))
    cuts = sorted({1, size // 3, size // 2, size - 1,
                   rng.randrange(1, size)})
    for cut in cuts:
        out.append((f"truncate@{cut}", data[:cut]))
    # Splice: overwrite a block with bytes copied from elsewhere.
    for _ in range(3):
        length = rng.randrange(4, max(5, size // 4))
        src = rng.randrange(max(1, size - length))
        dst = rng.randrange(max(1, size - length))
        if src == dst:
            dst = (dst + length) % max(1, size - length)
        mutant = bytearray(data)
        mutant[dst:dst + length] = data[src:src + length]
        out.append((f"splice{length}@{src}->{dst}", bytes(mutant)))
    # Grown tail: trailing garbage after a structurally complete file.
    out.append(("grow-tail", data + bytes(rng.randrange(256)
                                          for _ in range(16))))
    return [(kind, blob) for kind, blob in out if blob != data]


def _check_format(
    fmt: str,
    path: Path,
    pristine: bytes,
    reader: Callable[[], str],
    rng: Random,
    flips: int,
    report: CorruptionReport,
) -> None:
    """Run the battery for one format; ``reader`` returns a verdict.

    ``reader`` raises the format's typed error on rejection, raises
    anything else on a hygiene bug, returns ``"healed"`` when the
    format legally recovered a prefix, and ``"accepted"`` otherwise.
    """
    count = 0
    for kind, blob in _mutations(pristine, rng, flips):
        path.write_bytes(blob)
        count += 1
        report.checked += 1
        try:
            verdict = reader()
        except (TraceStoreError, SnapshotError, CacheCorruption) as exc:
            # ServiceError is CacheCorruption's parent; isinstance order
            # does not matter — all three are the typed families the
            # formats document.
            del exc
            report.rejected += 1
            continue
        except ServiceError:
            report.rejected += 1
            continue
        except Exception as exc:  # noqa: BLE001 — that *is* the check
            report.findings.append({
                "format": fmt, "mutation": kind,
                "signature": f"corruption:{fmt}:raw:{type(exc).__name__}",
                "detail": f"{kind} escaped as {type(exc).__name__}: {exc}",
            })
            continue
        if verdict == "healed":
            report.healed += 1
            continue
        report.findings.append({
            "format": fmt, "mutation": kind,
            "signature": f"corruption:{fmt}:silent-accept",
            "detail": f"{kind} was accepted without error",
        })
    report.per_format[fmt] = count
    path.write_bytes(pristine)  # leave the artifact clean for reuse


def corruption_matrix(workdir, seed: int = 0,
                      flips_per_format: int = 24) -> CorruptionReport:
    """Build all four artifacts and run the mutant battery on each."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report = CorruptionReport()
    trace = _sample_trace()

    # -- trace store ---------------------------------------------------
    trc = workdir / "probe.trc"
    write_trace_store(trace, trc)

    def read_trc() -> str:
        t = load_trace_store(trc)
        try:
            # verify() CRCs the identity metadata plus the entire data
            # region, so any surviving mutation below the header is a
            # genuine silent acceptance.
            t.verify()
        finally:
            t.close()
        return "accepted"

    _check_format("tracestore", trc, trc.read_bytes(), read_trc,
                  Random(seed ^ zlib.crc32(b"tracestore")),
                  flips_per_format, report)

    # -- snapshot ------------------------------------------------------
    from repro.sanitizer.snapshot import (
        latest_snapshot,
        load_snapshot,
        simulate_with_snapshots,
    )

    snapdir = workdir / "snaps"
    simulate_with_snapshots(trace, snapshot_every=len(trace) // 2,
                            snapshot_dir=str(snapdir))
    snap = Path(latest_snapshot(str(snapdir)))

    def read_snap() -> str:
        load_snapshot(str(snap), trace=trace)
        return "accepted"

    _check_format("snapshot", snap, snap.read_bytes(), read_snap,
                  Random(seed ^ zlib.crc32(b"snapshot")),
                  flips_per_format, report)

    # -- service WAL ---------------------------------------------------
    from repro.service.wal import ServiceWAL

    wal_path = workdir / "probe.wal"
    wal = ServiceWAL(wal_path)
    original = [{"type": "submit", "i": i, "payload": "x" * 20}
                for i in range(8)]
    for rec in original:
        wal.append(rec)
    wal.close()

    def read_wal() -> str:
        got = ServiceWAL(wal_path).replay()
        if got == original[:len(got)]:
            # Every replayed record is CRC-verified and sequence-checked,
            # so a prefix (possibly the full history — e.g. a stripped
            # final newline or a healed garbage tail) means no corrupted
            # content was accepted: the documented torn-tail contract.
            return "healed"
        return "accepted"

    _check_format("wal", wal_path, wal_path.read_bytes(), read_wal,
                  Random(seed ^ zlib.crc32(b"wal")),
                  flips_per_format, report)

    # -- result cache --------------------------------------------------
    from repro.service.resultcache import ResultCache

    cache_root = workdir / "cache"
    cache = ResultCache(cache_root)
    key = "f" * 64
    cache.put(key, {"ipc": 1.25, "trace": trace.name, "records": len(trace)})
    entry = cache_root / f"{key}.json"

    def read_cache() -> str:
        got = ResultCache(cache_root).get(key)
        if got is None:
            # The entry file exists (we just wrote the mutant), so a
            # None here can only mean get() misclassified it as absent.
            return "accepted"
        return "accepted"

    _check_format("resultcache", entry, entry.read_bytes(), read_cache,
                  Random(seed ^ zlib.crc32(b"resultcache")),
                  flips_per_format, report)
    return report
