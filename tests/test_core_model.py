"""Unit tests for the out-of-order core timing model."""

import pytest

from repro.cpu.core_model import CoreConfig, CoreModel


class TestBandwidthBounds:
    def test_ipc_capped_by_retire_width(self):
        core = CoreModel(CoreConfig(issue_width=6, retire_width=4))
        for _ in range(500):
            core.advance_nonmem(9)
            core.issue_memory(lambda ip, va, now, w: 1)
        assert core.ipc <= 4.0 + 1e-9

    def test_nonmem_only_frontend_bound(self):
        core = CoreModel(CoreConfig(issue_width=6, retire_width=8))
        core.advance_nonmem(600)
        assert core.cycles == pytest.approx(100.0)

    def test_instruction_count(self):
        core = CoreModel()
        core.advance_nonmem(10)
        core.issue_memory(lambda ip, va, now, w: 5)
        assert core.instructions == 11


class TestLatencyHiding:
    def test_independent_loads_overlap(self):
        """Independent loads within the ROB overlap: total time is far
        below the serial sum of latencies."""
        core = CoreModel()
        n, lat = 200, 100
        for _ in range(n):
            core.advance_nonmem(3)
            core.issue_memory(lambda ip, va, now, w: lat)
        assert core.cycles < n * lat / 4

    def test_dependent_loads_serialise(self):
        core = CoreModel()
        n, lat = 50, 100
        for _ in range(n):
            core.issue_memory(lambda ip, va, now, w: lat, dep=1)
        assert core.cycles >= n * lat * 0.9

    def test_dependency_distance(self):
        """dep=2 chains through every other load: two parallel chains
        finish in about half the time of one serial chain."""
        serial = CoreModel()
        for _ in range(40):
            serial.issue_memory(lambda ip, va, now, w: 100, dep=1)
        paired = CoreModel()
        for _ in range(40):
            paired.issue_memory(lambda ip, va, now, w: 100, dep=2)
        assert paired.cycles < serial.cycles * 0.7

    def test_rob_limits_overlap(self):
        """With a tiny ROB, long-latency loads cannot all overlap."""
        big = CoreModel(CoreConfig(rob_size=352))
        small = CoreModel(CoreConfig(rob_size=8))
        for core in (big, small):
            for _ in range(100):
                core.advance_nonmem(1)
                core.issue_memory(lambda ip, va, now, w: 200)
        assert small.cycles > big.cycles

    def test_lower_latency_higher_ipc(self):
        fast = CoreModel()
        slow = CoreModel()
        for core, lat in ((fast, 10), (slow, 400)):
            for _ in range(150):
                core.advance_nonmem(2)
                core.issue_memory(lambda ip, va, now, w, lat=lat: lat, dep=1)
        assert fast.ipc > slow.ipc


class TestStores:
    def test_stores_do_not_stall_retirement(self):
        loads = CoreModel()
        stores = CoreModel()
        for _ in range(100):
            loads.issue_memory(lambda ip, va, now, w: 300, is_write=False)
            stores.issue_memory(lambda ip, va, now, w: 300, is_write=True)
        assert stores.cycles < loads.cycles

    def test_stores_not_in_dependency_window(self):
        core = CoreModel()
        core.issue_memory(lambda ip, va, now, w: 500, is_write=True)
        # dep=1 should look past the store... there is no prior load, so
        # the next load issues immediately.
        t = core.issue_memory(lambda ip, va, now, w: 10, dep=1)
        assert t < 100


class TestClock:
    def test_now_monotonic_with_frontend(self):
        core = CoreModel()
        t0 = core.now()
        core.advance_nonmem(60)
        assert core.now() >= t0

    def test_latency_fn_receives_issue_cycle(self):
        core = CoreModel()
        seen = []
        core.advance_nonmem(60)
        core.issue_memory(lambda ip, va, now, w: seen.append(now) or 1)
        assert seen[0] >= 10  # 60 instr / 6-issue = 10 cycles

    def test_snapshot_monotone(self):
        core = CoreModel()
        core.issue_memory(lambda ip, va, now, w: 100)
        i1, c1 = core.snapshot()
        core.issue_memory(lambda ip, va, now, w: 100)
        i2, c2 = core.snapshot()
        assert i2 > i1 and c2 >= c1
