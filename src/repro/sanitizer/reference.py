"""Pure-reference simulation engine for differential checking.

PR 2 rebuilt the demand path around *exact-type* fast paths: the engine
and hierarchy inline cache lookups, replacement updates, and MSHR/PQ
occupancy sampling only when the component is the stock class
(``type(x) is Cache`` and friends), falling back to virtual dispatch for
any subclass.  That contract is what makes the optimisation safe — and
also what makes it checkable: substituting *empty subclasses* for every
component forces the entire simulation through the original virtual
methods, yielding a slower engine whose observable behaviour must be
bit-identical to the optimised one.

:func:`to_reference` performs that substitution in place via
``__class__`` reassignment (all components are plain-``__dict__``
classes, so this is layout-safe), plus:

* nulling the cache's memoised policy fast paths (``_lru``,
  ``_srrip_hit``, ``_srrip_fill``) so replacement updates go through
  ``ReplacementPolicy`` virtual calls (``_drrip`` is kept — DRRIP miss
  notification is functional behaviour, not a fast path);
* :class:`ReferenceMSHR` re-deriving expiry from first principles on
  every query — no per-cycle memo, no ``_min_ready`` early-out — so a
  memoisation bug in the optimised MSHR shows up as an entry-set
  divergence;
* :class:`ReferenceNoPrefetcher` defeating the ``pf_active`` hook-skip,
  so the hook plumbing runs even for no-op prefetchers (it is
  statistics-neutral by construction, which the differential test
  verifies rather than assumes).

The conversion is idempotent (every rewrite is guarded by an exact-type
check), so it is safe as a multicore ``post_build`` hook where the
shared LLC appears in every core's hierarchy.
"""

from __future__ import annotations

from repro.core.berti import BertiPrefetcher
from repro.core.berti_page import BertiPagePrefetcher
from repro.core.reference_tables import (
    ReferenceDeltaTable,
    ReferenceHistoryTable,
)
from repro.memory.cache import Cache
from repro.memory.hierarchy import Hierarchy, _FIFOQueue
from repro.memory.mshr import MSHR
from repro.memory.replacement import LRUPolicy, SRRIPPolicy
from repro.prefetchers.base import NoPrefetcher


class ReferenceCache(Cache):
    """A Cache whose lookups/fills take the virtual-dispatch path."""


class ReferenceLRU(LRUPolicy):
    """An LRUPolicy that defeats the cache's inline age update."""


class ReferenceSRRIP(SRRIPPolicy):
    """An SRRIPPolicy that defeats the cache's inline RRPV update."""


class ReferencePQ(_FIFOQueue):
    """A PQ whose occupancy sampling takes the virtual-dispatch path."""


class ReferenceNoPrefetcher(NoPrefetcher):
    """A NoPrefetcher that still runs the full hook plumbing."""


class ReferenceBertiPrefetcher(BertiPrefetcher):
    """A Berti that takes the virtual-hook path with reference tables.

    ``kernel_hooks`` is deliberately *not* re-declared here: the
    hierarchy reads the flag from the prefetcher's own class body, so
    this subclass is dispatched through ``on_access``/``on_fill``/
    ``on_prefetch_hit`` with per-call AccessInfo/FillInfo/Request
    objects — the original protocol the kernels must mirror exactly.
    :func:`to_reference` additionally swaps ``history``/``deltas`` for
    the object-per-entry reference tables, so the entire training and
    prediction path runs through an independently-written twin.
    """


class ReferenceBertiPagePrefetcher(BertiPagePrefetcher):
    """Per-page Berti on the virtual-hook path (see above)."""


class ReferenceMSHR(MSHR):
    """An MSHR with memo-free, guard-free expiry.

    Every query re-scans the entry set against the caller's clock, so
    the outstanding set is always exact — the ground truth the optimised
    MSHR's ``_last_expire``/``_min_ready`` short-circuits must match.
    ``_last_expire`` is still maintained (it equals the most recent
    query cycle in both engines); ``_min_ready`` is kept tight rather
    than conservative, which is the one internal field allowed to
    differ between engines.
    """

    def _expire(self, now: int) -> None:
        self._last_expire = now
        entries = self._entries
        done = []
        min_ready = None
        for line, e in entries.items():
            ready = e.ready_cycle
            if ready <= now:
                done.append(line)
            elif min_ready is None or ready < min_ready:
                min_ready = ready
        for line in done:
            del entries[line]
        self._min_ready = min_ready if min_ready is not None else 0

    def occupancy(self, now: int) -> int:
        self._expire(now)
        return len(self._entries)

    def lookup(self, line: int, now: int):
        self._expire(now)
        return self._entries.get(line)

    def allocate(self, line, now, ready_cycle, is_prefetch, ip=0, vline=0):
        self._expire(now)
        return super().allocate(
            line, now, ready_cycle, is_prefetch, ip=ip, vline=vline
        )


def to_reference(hierarchy: Hierarchy) -> Hierarchy:
    """Convert ``hierarchy`` to the reference engine, in place.

    Usable directly as a ``post_build`` hook for both
    :func:`~repro.simulator.engine.simulate` and
    :func:`~repro.simulator.multicore.simulate_multicore`.  Returns the
    hierarchy for convenience.
    """
    for cache in (hierarchy.l1d, hierarchy.l2, hierarchy.llc):
        if type(cache) is Cache:
            cache.__class__ = ReferenceCache
            cache._lru = None
            cache._srrip_hit = None
            cache._srrip_fill = None
        policy = cache.policy
        if type(policy) is LRUPolicy:
            policy.__class__ = ReferenceLRU
        elif type(policy) is SRRIPPolicy:
            policy.__class__ = ReferenceSRRIP
        # DRRIP subclasses SRRIP, so the cache's constructor already left
        # it on the virtual fill path; no class change needed.
    for attr in ("l1d_mshr", "l2_mshr", "llc_mshr"):
        mshr = getattr(hierarchy, attr)
        if type(mshr) is MSHR:
            mshr.__class__ = ReferenceMSHR
    if type(hierarchy.pq) is _FIFOQueue:
        hierarchy.pq.__class__ = ReferencePQ
    for attr in ("l1d_prefetcher", "l2_prefetcher"):
        pf = getattr(hierarchy, attr)
        if type(pf) is NoPrefetcher:
            pf.__class__ = ReferenceNoPrefetcher
        elif type(pf) is BertiPrefetcher:
            pf.__class__ = ReferenceBertiPrefetcher
            _swap_berti_tables(pf)
        elif type(pf) is BertiPagePrefetcher:
            pf.__class__ = ReferenceBertiPagePrefetcher
            _swap_berti_tables(pf)
    # The demotion must be visible to the hierarchy's cached kernel
    # entry points — without this, _l1d_kernel would keep dispatching
    # into the (now reference-classed) prefetcher's kernel methods.
    hierarchy._refresh_kernel_hooks()
    return hierarchy


def _swap_berti_tables(pf: BertiPrefetcher) -> None:
    """Replace the kernelized tables with their reference twins.

    Only valid on a freshly built hierarchy (both ``to_reference`` call
    sites run at ``post_build`` time): the tables are empty, so swapping
    the implementation cannot lose training state.
    """
    if pf.history.inserts or pf.deltas._fifo_clock:
        raise RuntimeError(
            "to_reference must run before any simulation: Berti tables "
            "already hold training state"
        )
    pf.history = ReferenceHistoryTable(pf.config)
    pf.deltas = ReferenceDeltaTable(pf.config)


def is_reference(hierarchy: Hierarchy) -> bool:
    """True when ``hierarchy`` has been through :func:`to_reference`."""
    return isinstance(hierarchy.l1d, ReferenceCache)
