"""Unit tests for the TLBs and MMU."""

import pytest

from repro.cpu.mmu import MMU
from repro.cpu.tlb import TLB

LINES_PER_PAGE = 64


class TestTLB:
    def test_miss_then_hit(self):
        t = TLB("t", entries=8, ways=2, latency=1)
        assert t.lookup(5) is None
        t.insert(5, 99)
        assert t.lookup(5) == 99
        assert t.stats.hits == 1
        assert t.stats.misses == 1

    def test_lru_eviction_within_set(self):
        t = TLB("t", entries=4, ways=2, latency=1)
        # vpages 0, 2, 4 all map to set 0 (2 sets).
        t.insert(0, 10)
        t.insert(2, 12)
        t.lookup(0)          # 0 becomes MRU
        t.insert(4, 14)      # evicts 2
        assert t.lookup(2) is None
        assert t.lookup(0) == 10
        assert t.lookup(4) == 14

    def test_probe_does_not_count_demand_stats(self):
        t = TLB("t", entries=8, ways=2, latency=1)
        t.insert(1, 11)
        t.probe(1)
        t.probe(2)
        assert t.stats.accesses == 0
        assert t.stats.prefetch_probes == 2
        assert t.stats.prefetch_probe_hits == 1

    def test_reinsert_updates_mapping(self):
        t = TLB("t", entries=8, ways=2, latency=1)
        t.insert(1, 11)
        t.insert(1, 22)
        assert t.lookup(1) == 22

    def test_map_consistency_after_evictions(self):
        t = TLB("t", entries=4, ways=2, latency=1)
        for vp in range(20):
            t.insert(vp, vp + 100)
        total = sum(len(s) for s in t._sets)
        assert total == len(t._map) <= t.entries

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TLB("t", entries=5, ways=2, latency=1)

    def test_reset(self):
        t = TLB("t", entries=8, ways=2, latency=1)
        t.insert(1, 11)
        t.reset()
        assert t.lookup(1) is None


class TestMMU:
    def test_translation_deterministic(self):
        a = MMU().translate_demand(0x1234)[0]
        b = MMU().translate_demand(0x1234)[0]
        assert a == b

    def test_same_page_same_frame(self):
        m = MMU()
        pa0, _ = m.translate_demand(0)
        pa1, _ = m.translate_demand(1)
        assert pa0 // LINES_PER_PAGE == pa1 // LINES_PER_PAGE
        assert pa1 - pa0 == 1

    def test_pages_scrambled(self):
        """Virtually adjacent pages must not be physically adjacent."""
        m = MMU()
        frames = [
            m.translate_demand(i * LINES_PER_PAGE)[0] // LINES_PER_PAGE
            for i in range(8)
        ]
        diffs = {b - a for a, b in zip(frames, frames[1:])}
        assert diffs != {1}

    def test_first_access_walks(self):
        m = MMU()
        __, lat = m.translate_demand(0)
        assert lat >= m.page_walk_latency
        assert m.stats.walks == 1

    def test_dtlb_hit_is_fast(self):
        m = MMU()
        m.translate_demand(0)
        __, lat = m.translate_demand(1)
        assert lat == m.dtlb.latency

    def test_stlb_hit_medium_latency(self):
        m = MMU()
        m.translate_demand(0)
        # Evict from the dTLB by filling its sets with conflicting pages.
        for i in range(1, 200):
            m.translate_demand(i * LINES_PER_PAGE)
        __, lat = m.translate_demand(0)
        assert lat in (
            m.dtlb.latency,
            m.dtlb.latency + m.stlb.latency,
        )

    def test_prefetch_translation_drops_cold_page(self):
        m = MMU()
        assert m.translate_prefetch(0) is None
        assert m.stats.dropped_prefetch_translations == 1

    def test_prefetch_translation_hits_warm_page(self):
        m = MMU()
        pa, __ = m.translate_demand(5)
        assert m.translate_prefetch(5) == pa

    def test_asid_separates_address_spaces(self):
        a = MMU(asid=1).translate_demand(0)[0]
        b = MMU(asid=2).translate_demand(0)[0]
        assert a != b

    def test_prewarm_installs_stlb(self):
        m = MMU()
        m.prewarm([0, 1, LINES_PER_PAGE])  # pages 0 and 1
        assert m.translate_prefetch(0) is not None
        assert m.translate_prefetch(LINES_PER_PAGE) is not None
        assert m.translate_prefetch(2 * LINES_PER_PAGE) is None

    def test_prewarm_matches_demand_mapping(self):
        m = MMU()
        m.prewarm([7])
        pf = m.translate_prefetch(7)
        demand, __ = m.translate_demand(7)
        assert pf == demand
