#!/usr/bin/env python3
"""Domain example: prefetching for graph analytics (GAP-like kernels).

Executes real BFS/PageRank/BC kernels over a synthetic Kronecker-style
graph, records their memory behaviour, and shows why graph codes are the
hard case for prefetching (paper §IV-C): one regular frontier IP that
everything covers, plus dependent irregular gathers nobody can — so the
difference between prefetchers is how much useless traffic they add.

Run:  python examples/graph_analytics.py
"""

from repro.analysis.report import format_table
from repro.prefetchers.registry import make_prefetcher
from repro.simulator.engine import simulate
from repro.workloads.gap import GRAPHS, KERNELS

PREFETCHERS = ["ip_stride", "mlop", "ipcp", "berti"]


def main() -> None:
    graph = GRAPHS["kron"](0.4)
    offsets, edges = graph
    print(f"graph: {len(offsets) - 1} vertices, {len(edges)} edges "
          f"(Kronecker-style power law, scrambled labels)\n")

    rows = []
    for kernel in ("bfs", "pr", "bc"):
        trace = KERNELS[kernel](graph, f"{kernel}-kron", 5000)
        base = simulate(trace, l1d_prefetcher=make_prefetcher("ip_stride"))
        for name in PREFETCHERS:
            r = simulate(trace, l1d_prefetcher=make_prefetcher(name))
            rows.append([
                kernel,
                name,
                r.speedup_over(base),
                r.pf_l1d.accuracy,
                r.traffic_llc_dram / max(1, base.traffic_llc_dram),
            ])

    print(format_table(
        ["kernel", "prefetcher", "speedup", "accuracy", "DRAM traffic"],
        rows,
        title=(
            "Graph kernels under L1D prefetching (vs IP-stride)\n"
            "(high accuracy <=> low useless DRAM traffic)"
        ),
    ))
    print(
        "\nNote how Berti keeps DRAM traffic near 1.0x: it only issues\n"
        "deltas whose per-IP coverage crossed the watermarks, so the\n"
        "unpredictable value gathers generate no junk prefetches."
    )


if __name__ == "__main__":
    main()
