"""HTTP/JSON API for the campaign scheduler daemon.

Pure-stdlib (``http.server``) local API — no framework, no new
dependencies.  Routes::

    POST /v1/campaigns                 submit (idempotent; 429 on full)
    GET  /v1/campaigns/<cid>           status + leases + lineage
    GET  /v1/campaigns/<cid>/results   verified results (409 until done)
    POST /v1/campaigns/<cid>/cancel    cancel pending work
    GET  /v1/healthz                   liveness + queue/cache counters
    POST /v1/agents                    register a remote worker agent
    POST /v1/agents/<aid>/lease        pull up to N leased jobs
    POST /v1/agents/<aid>/renew        bulk lease renewal (HTTP heartbeat)
    POST /v1/agents/<aid>/result       deliver one attempt outcome
    POST /v1/agents/<aid>/drain        stop leasing to this agent
    GET  /v1/fleet                     agent registry + degradation state

Unknown agent ids answer 410 (the registry died with a daemon restart):
the agent's cue to re-register and continue.

Every typed :class:`~repro.errors.ServiceError` maps onto its HTTP
status, with ``Retry-After`` emitted for 429/503 so well-behaved
clients back off instead of hammering a draining daemon.  A client that
disconnects mid-request (or sends a truncated body) costs the daemon
one 400/broken-pipe, never the process: handler errors are contained
per-connection by the threading server.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError, ServiceError

__all__ = ["make_server"]

#: Submission bodies larger than this are refused outright — campaign
#: specs are small; a huge body is a bug or abuse, not a campaign.
MAX_BODY_BYTES = 4 * 1024 * 1024


def make_server(service) -> ThreadingHTTPServer:
    """A bound (not yet serving) threaded HTTP server for ``service``."""

    class Handler(_ServiceHandler):
        pass

    Handler.service = service
    server = _QuietThreadingServer(
        (service.config.host, service.config.port), Handler
    )
    return server


class _QuietThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def handle_error(self, request, client_address):
        # A client that vanished mid-response is routine (the chaos
        # harness does it on purpose); anything else still surfaces.
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, BrokenPipeError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class _ServiceHandler(BaseHTTPRequestHandler):
    service = None  # injected by make_server
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            route = self._route(method)
            if route is None:
                raise ServiceError(
                    f"no route for {method} {self.path}", status=404
                )
            self._reply(200, route)
        except ServiceError as exc:
            self._reply_error(exc)
        except ReproError as exc:
            self._reply_error(ServiceError(str(exc), status=500))
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing left to tell it
        except Exception as exc:  # noqa: BLE001 — keep the daemon alive
            self._reply_error(ServiceError(
                f"internal error: {type(exc).__name__}: {exc}", status=500
            ))

    def _route(self, method: str) -> Optional[Dict[str, Any]]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        svc = self.service
        if method == "GET" and parts == ["v1", "healthz"]:
            return svc.healthz()
        if method == "GET" and parts == ["v1", "fleet"]:
            return svc.fleet_status()
        if parts[:2] == ["v1", "agents"] and method == "POST":
            if len(parts) == 2:
                return svc.agent_register(self._body())
            if len(parts) == 4:
                aid, action = parts[2], parts[3]
                if action == "lease":
                    return svc.agent_lease(aid, self._body())
                if action == "renew":
                    return svc.agent_renew(aid, self._body())
                if action == "result":
                    return svc.agent_result(aid, self._body())
                if action == "drain":
                    return svc.agent_drain(aid)
            return None
        if parts[:1] != ["v1"] or len(parts) < 2 or parts[1] != "campaigns":
            return None
        if method == "POST" and len(parts) == 2:
            return svc.submit(self._body())
        if len(parts) == 3 and method == "GET":
            return svc.status(parts[2])
        if len(parts) == 4 and parts[3] == "results" and method == "GET":
            return svc.results(parts[2])
        if len(parts) == 4 and parts[3] == "cancel" and method == "POST":
            return svc.cancel(parts[2])
        return None

    # ------------------------------------------------------------------
    # Request/response plumbing
    # ------------------------------------------------------------------

    def _body(self) -> Dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ServiceError("bad Content-Length header", status=400)
        if length <= 0:
            raise ServiceError("request body required", status=400)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body too large ({length} bytes)", status=413
            )
        raw = self.rfile.read(length)
        if len(raw) < length:
            # Truncated body: the client disconnected mid-upload.  The
            # partial submission must not be acted on.
            raise ServiceError(
                f"truncated request body ({len(raw)}/{length} bytes)",
                status=400,
            )
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not JSON: {exc}",
                               status=400)
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object",
                               status=400)
        return body

    def _reply(self, status: int, payload: Dict[str, Any],
               extra_headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        blob = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            for name, value in extra_headers:
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(blob)
        except (ConnectionError, BrokenPipeError):
            pass  # mid-stream disconnect; state is already durable

    def _reply_error(self, exc: ServiceError) -> None:
        headers: Tuple[Tuple[str, str], ...] = ()
        if exc.retry_after is not None:
            headers = (("Retry-After", f"{exc.retry_after:g}"),)
        self._reply(exc.status, {
            "error": type(exc).__name__,
            "message": str(exc),
            "retry_after": exc.retry_after,
        }, headers)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the WAL is the log; per-request stderr noise helps no one
